"""Message-fabric benchmark — the unified typed-message transport.

Since PR 5 every inter-AS control-plane interaction is one typed
:class:`~repro.core.messages.ControlMessage` routed through a single
transport path with per-AS inboxes drained in batches per scheduler tick.
This benchmark runs the canonical mixed workload
(``run_benchmarks.run_message_fabric``) at the conftest scale: after one
warm-up beaconing period, every AS offers registered paths to its
neighbours as path-registration traffic and a batch of link failures
triggers revocation floods; the headline number is fabric messages
processed per wall-clock second, reported for both the default batched
drain and the per-message (``batch_size=1``) reference mode.

Like the other paper-scale simulations this is excluded from tier-1; run
it with ``-m slow`` (``IREC_BENCH_SCALE`` selects the topology size).
"""

from __future__ import annotations

import pytest

from repro.topology.generator import generate_topology

from conftest import bench_topology_config
from run_benchmarks import run_message_fabric

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow


def test_message_fabric_report(capsys):
    """Run the mixed fabric workload in both drain modes and report."""
    batched = run_message_fabric(
        generate_topology(bench_topology_config()), inbox_batch_size=None
    )
    per_message = run_message_fabric(
        generate_topology(bench_topology_config()), inbox_batch_size=1
    )
    with capsys.disabled():
        print(
            f"\nMessage fabric — {batched['ases']} ASes, "
            f"{batched['registrations']} registrations + "
            f"{batched['revocations']} revocations:"
            f" batched {batched['messages_per_s']:,.0f} msg/s,"
            f" per-message {per_message['messages_per_s']:,.0f} msg/s"
        )
    # Both modes processed the same workload...
    assert batched["messages"] == per_message["messages"]
    assert batched["messages"] > 0
    assert batched["registrations"] > 0
    assert batched["revocations"] > batched["failures"]
    # ...and the fabric sustains a meaningful rate even at small scale.
    assert batched["messages_per_s"] > 10_000
