"""Dynamic-scenario benchmark — convergence under failures and churn.

The static Figure-8 benchmarks measure the control plane at rest; this one
measures it while the topology misbehaves.  A seeded random schedule of
link failures (with recoveries) and one AS churn cycle runs inside a
multi-period beaconing simulation; the report prints, per disruption of
the watched AS pairs, the paths lost, the time-to-recovery in periods and
the control-message overhead spent re-converging — plus the engine-wide
drop/revocation counters that the dynamic transport produces.

Like the other paper-scale simulations this is excluded from tier-1; run
it with ``-m slow`` (``IREC_BENCH_SCALE`` selects the topology size).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.reporting import format_table
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import random_churn, random_link_failures
from repro.simulation.scenario import don_scenario
from repro.topology.generator import generate_topology
from repro.units import minutes

from conftest import bench_topology_config, simulation_periods

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow

PERIOD_MS = minutes(10)
FAILURE_COUNT = 3
WATCHED_PAIRS = 3


def build_dynamic_simulation(periods: int):
    """Build the pinned dynamic workload at the configured scale."""
    topology = generate_topology(bench_topology_config())
    scenario = don_scenario(periods=periods, verify_signatures=False)
    rng = random.Random(97)
    as_ids = topology.as_ids()
    origin_as = as_ids[0]
    # Aim the failures at the first watched stub's own (provider) links:
    # every path of that pair crosses one of them, so the disruption
    # machinery (withdrawal, outage, re-convergence) is really exercised.
    victim_links = [link.key for link in topology.links_of(as_ids[-1])]
    scenario.timeline.extend(
        random_link_failures(
            topology,
            count=FAILURE_COUNT,
            rng=rng,
            start_ms=2.5 * PERIOD_MS,
            spacing_ms=PERIOD_MS,
            recovery_after_ms=1.5 * PERIOD_MS,
            candidates=victim_links,
        )
    )
    scenario.timeline.extend(
        random_churn(
            topology,
            count=1,
            rng=rng,
            start_ms=3.5 * PERIOD_MS,
            spacing_ms=PERIOD_MS,
            downtime_ms=PERIOD_MS,
            candidates=as_ids[-6:],  # stubs only: the core stays connected
        )
    )
    simulation = BeaconingSimulation(topology, scenario)
    for offset in range(1, WATCHED_PAIRS + 1):
        simulation.watch_pair(as_ids[-offset], origin_as)
    return simulation


def test_dynamic_convergence_report(capsys):
    """Run the dynamic workload and print the convergence report."""
    periods = simulation_periods() + 4  # room for failures and recoveries
    simulation = build_dynamic_simulation(periods)
    result = simulation.run()

    records = result.convergence.records
    rows = [
        [
            f"{record.source_as}->{record.destination_as}",
            record.event_label,
            f"{record.event_time_ms / PERIOD_MS:.1f}",
            record.paths_lost,
            f"{record.time_to_recovery_ms / PERIOD_MS:.1f}"
            if record.recovered
            else "open",
            record.control_message_overhead
            if record.control_message_overhead is not None
            else "-",
        ]
        for record in records
    ]
    with capsys.disabled():
        print("\nDynamic convergence — disruptions of the watched pairs")
        print(
            format_table(
                ["pair", "event", "at (periods)", "lost",
                 "recovery (periods)", "msg overhead"],
                rows,
            )
            if rows
            else "(no watched pair was disrupted by the sampled failures)"
        )
        print(
            f"engine: {result.collector.total_sent} PCBs sent, "
            f"{result.collector.total_dropped} dropped, "
            f"{result.collector.total_revocations} revocations, "
            f"{result.periods_run} periods"
        )

    # Shape checks: the failure schedule really perturbed the control plane
    # and every bookkeeping invariant held.
    assert result.collector.total_revocations > 0
    assert result.periods_run == periods
    for record in records:
        if record.recovered:
            assert record.time_to_recovery_ms > 0
            assert record.paths_regained >= 0


def test_dynamic_simulation_benchmark(benchmark):
    """Benchmark one dynamic simulation at the configured scale."""
    periods = simulation_periods() + 2

    def run():
        return build_dynamic_simulation(periods).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.collector.total_sent > 0
