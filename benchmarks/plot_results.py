#!/usr/bin/env python3
"""Fig8-style comparison plots from an experiment-sweep JSONL log.

Reads the log written by ``run_experiments.py`` and renders one grouped
bar chart per metric: scenarios on the x-axis, one bar per policy —
the layout of the paper's Figure 8 comparisons (policy families side by
side across conditions).

Rendering backends:

* **matplotlib** when importable (PNG by default).
* A dependency-free **SVG fallback** otherwise — hand-rolled grouped
  bars, enough for CI artifacts and quick eyeballing.  The container
  this repo targets does not ship matplotlib, so the fallback is the
  path that normally runs; pass ``--format svg`` to force it.

Usage::

    PYTHONPATH=src python benchmarks/plot_results.py \\
        --results results/adversarial-small.jsonl --out-dir results/plots
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

if __package__ is None or __package__ == "":
    _here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, os.path.join(os.path.dirname(_here), "src"))
    sys.path.insert(0, _here)

from result_logger import load_results

#: Metrics plotted by default — the sweep's headline comparisons.
DEFAULT_METRICS = (
    "revocation_messages",
    "revocations_rejected_invalid",
    "gray_dropped",
    "traffic_mean_carried_mbps",
    "traffic_backoffs",
    "convergence_mean_recovery_ms",
)

_PALETTE = ("#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c")


def group_metric(
    records: Sequence[Dict], metric: str
) -> Tuple[List[str], List[str], Dict[Tuple[str, str], float]]:
    """Aggregate one metric by (scenario, policy), averaging over scales/seeds."""
    sums: Dict[Tuple[str, str], float] = {}
    counts: Dict[Tuple[str, str], int] = {}
    scenarios: List[str] = []
    policies: List[str] = []
    for record in records:
        value = record["metrics"].get(metric)
        if not isinstance(value, (int, float)):
            continue
        key = (record["scenario"], record["policy"])
        sums[key] = sums.get(key, 0.0) + float(value)
        counts[key] = counts.get(key, 0) + 1
        if record["scenario"] not in scenarios:
            scenarios.append(record["scenario"])
        if record["policy"] not in policies:
            policies.append(record["policy"])
    values = {key: sums[key] / counts[key] for key in sums}
    return scenarios, policies, values


# ----------------------------------------------------------------------
# SVG fallback backend
# ----------------------------------------------------------------------

def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def render_svg(
    metric: str,
    scenarios: Sequence[str],
    policies: Sequence[str],
    values: Dict[Tuple[str, str], float],
    path: str,
) -> None:
    """Write one grouped bar chart as a standalone SVG file."""
    width, height = 760, 420
    margin_left, margin_right, margin_top, margin_bottom = 70, 20, 50, 60
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    peak = max(values.values(), default=0.0)
    scale = plot_h / peak if peak > 0 else 0.0

    group_w = plot_w / max(1, len(scenarios))
    bar_w = group_w * 0.8 / max(1, len(policies))

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}"'
        f' viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="24" text-anchor="middle"'
        f' font-family="sans-serif" font-size="16">{metric}</text>',
        # axes
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}"'
        f' y2="{margin_top + plot_h}" stroke="black"/>',
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}"'
        f' x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="black"/>',
        f'<text x="14" y="{margin_top - 8}" font-family="sans-serif"'
        f' font-size="11">{_format_value(peak)}</text>',
    ]
    for s_index, scenario in enumerate(scenarios):
        group_x = margin_left + s_index * group_w + group_w * 0.1
        for p_index, policy in enumerate(policies):
            value = values.get((scenario, policy), 0.0)
            bar_h = value * scale
            x = group_x + p_index * bar_w
            y = margin_top + plot_h - bar_h
            color = _PALETTE[p_index % len(_PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w * 0.9:.1f}"'
                f' height="{bar_h:.1f}" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + bar_w * 0.45:.1f}" y="{y - 4:.1f}" text-anchor="middle"'
                f' font-family="sans-serif" font-size="9">{_format_value(value)}</text>'
            )
        parts.append(
            f'<text x="{group_x + group_w * 0.4:.1f}" y="{margin_top + plot_h + 18}"'
            f' text-anchor="middle" font-family="sans-serif"'
            f' font-size="12">{scenario}</text>'
        )
    legend_x = margin_left
    legend_y = height - 22
    for p_index, policy in enumerate(policies):
        color = _PALETTE[p_index % len(_PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 10}" width="12" height="12"'
            f' fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 16}" y="{legend_y}" font-family="sans-serif"'
            f' font-size="12">{policy}</text>'
        )
        legend_x += 16 + 8 * len(policy) + 24
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts) + "\n")


def render_timeline_svg(
    series: Dict[str, Sequence[Tuple[float, float]]],
    path: str,
    title: str = "telemetry timeline",
    x_label: str = "time (ms)",
) -> None:
    """Write a multi-metric time-series line chart as a standalone SVG.

    ``series`` maps metric name → ``(x, y)`` points (e.g. one per
    beaconing period from the observatory sampler).  Metrics with wildly
    different units share the plot by per-metric normalization: each line
    is scaled to its own peak, annotated in the legend — the shape
    comparison (when does backlog spike relative to PCB rate?) is the
    point of the timeline, not absolute cross-metric values.
    """
    width, height = 760, 420
    margin_left, margin_right, margin_top, margin_bottom = 60, 20, 50, 70
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    xs = [x for points in series.values() for x, _y in points]
    x_min, x_max = (min(xs), max(xs)) if xs else (0.0, 1.0)
    x_span = (x_max - x_min) or 1.0

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}"'
        f' viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="24" text-anchor="middle"'
        f' font-family="sans-serif" font-size="16">{title}</text>',
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}"'
        f' y2="{margin_top + plot_h}" stroke="black"/>',
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}"'
        f' x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="black"/>',
        f'<text x="{margin_left + plot_w / 2:.1f}" y="{margin_top + plot_h + 30}"'
        f' text-anchor="middle" font-family="sans-serif" font-size="12">{x_label}</text>',
        f'<text x="{margin_left:.1f}" y="{margin_top + plot_h + 14}"'
        f' text-anchor="middle" font-family="sans-serif" font-size="10">'
        f"{_format_value(x_min)}</text>",
        f'<text x="{margin_left + plot_w:.1f}" y="{margin_top + plot_h + 14}"'
        f' text-anchor="middle" font-family="sans-serif" font-size="10">'
        f"{_format_value(x_max)}</text>",
    ]
    legend_x = margin_left
    legend_y = height - 14
    for index, (metric, points) in enumerate(series.items()):
        color = _PALETTE[index % len(_PALETTE)]
        peak = max((y for _x, y in points), default=0.0)
        scale = plot_h / peak if peak > 0 else 0.0
        coords = " ".join(
            f"{margin_left + (x - x_min) / x_span * plot_w:.1f},"
            f"{margin_top + plot_h - y * scale:.1f}"
            for x, y in points
        )
        if coords:
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}"'
                ' stroke-width="1.5"/>'
            )
        label = f"{metric} (peak {_format_value(peak)})"
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 10}" width="12" height="12"'
            f' fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 16}" y="{legend_y}" font-family="sans-serif"'
            f' font-size="11">{label}</text>'
        )
        legend_x += 16 + 7 * len(label) + 20
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts) + "\n")


def render_timeline_matplotlib(
    series: Dict[str, Sequence[Tuple[float, float]]],
    path: str,
    title: str = "telemetry timeline",
    x_label: str = "time (ms)",
) -> None:
    """Write the same multi-metric timeline with matplotlib (normalized)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, axes = plt.subplots(figsize=(7.6, 4.2))
    for index, (metric, points) in enumerate(series.items()):
        peak = max((y for _x, y in points), default=0.0) or 1.0
        axes.plot(
            [x for x, _y in points],
            [y / peak for _x, y in points],
            label=f"{metric} (peak {_format_value(peak)})",
            color=_PALETTE[index % len(_PALETTE)],
        )
    axes.set_xlabel(x_label)
    axes.set_ylabel("normalized to per-metric peak")
    axes.set_title(title)
    axes.legend(fontsize=8)
    figure.tight_layout()
    figure.savefig(path)
    plt.close(figure)


def render_timeline(
    series: Dict[str, Sequence[Tuple[float, float]]],
    path: str,
    title: str = "telemetry timeline",
    x_label: str = "time (ms)",
) -> None:
    """Render a timeline with matplotlib when available, else the SVG fallback.

    The output format follows ``path``'s extension; a non-SVG extension
    without matplotlib installed is rewritten to ``.svg`` (mirroring
    :func:`_pick_backend`'s degradation for the bar charts).
    """
    if not path.endswith(".svg"):
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            path = os.path.splitext(path)[0] + ".svg"
        else:
            render_timeline_matplotlib(series, path, title, x_label)
            return
    render_timeline_svg(series, path, title, x_label)


# ----------------------------------------------------------------------
# matplotlib backend
# ----------------------------------------------------------------------

def render_matplotlib(
    metric: str,
    scenarios: Sequence[str],
    policies: Sequence[str],
    values: Dict[Tuple[str, str], float],
    path: str,
) -> None:
    """Write one grouped bar chart with matplotlib (headless backend)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, axes = plt.subplots(figsize=(7.6, 4.2))
    group_positions = range(len(scenarios))
    bar_w = 0.8 / max(1, len(policies))
    for p_index, policy in enumerate(policies):
        heights = [values.get((scenario, policy), 0.0) for scenario in scenarios]
        positions = [g + p_index * bar_w for g in group_positions]
        axes.bar(
            positions,
            heights,
            width=bar_w * 0.9,
            label=policy,
            color=_PALETTE[p_index % len(_PALETTE)],
        )
    axes.set_xticks([g + 0.4 - bar_w / 2 for g in group_positions])
    axes.set_xticklabels(scenarios)
    axes.set_title(metric)
    axes.legend()
    figure.tight_layout()
    figure.savefig(path)
    plt.close(figure)


def _pick_backend(fmt: Optional[str]):
    """Return (render function, extension) for the requested format."""
    if fmt != "svg":
        try:
            import matplotlib  # noqa: F401

            return render_matplotlib, fmt or "png"
        except ImportError:
            if fmt is not None:
                raise SystemExit(
                    f"format {fmt!r} needs matplotlib, which is not installed;"
                    " use --format svg"
                )
    return render_svg, "svg"


def plot_all(
    results_path: str,
    out_dir: str,
    metrics: Sequence[str] = DEFAULT_METRICS,
    fmt: Optional[str] = None,
) -> List[str]:
    """Render one plot per metric; return the written file paths."""
    records = load_results(results_path)
    if not records:
        raise SystemExit(f"{results_path}: no records to plot")
    render, extension = _pick_backend(fmt)
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for metric in metrics:
        scenarios, policies, values = group_metric(records, metric)
        if not values:
            print(f"skipping {metric}: not present in any record")
            continue
        path = os.path.join(out_dir, f"{metric}.{extension}")
        render(metric, scenarios, policies, values, path)
        written.append(path)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", required=True, help="JSONL result log to plot")
    parser.add_argument("--out-dir", default="results/plots", help="plot output directory")
    parser.add_argument(
        "--metrics",
        default=None,
        help=f"comma-separated metric names (default: {','.join(DEFAULT_METRICS)})",
    )
    parser.add_argument(
        "--format",
        default=None,
        choices=("png", "pdf", "svg"),
        help="output format (default: png via matplotlib, else svg fallback)",
    )
    args = parser.parse_args(argv)
    metrics = args.metrics.split(",") if args.metrics else DEFAULT_METRICS
    written = plot_all(args.results, args.out_dir, metrics, args.format)
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
