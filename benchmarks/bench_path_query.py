"""Path-query serving benchmark — the tiered per-AS lookup tier.

Since PR 9 path lookups go through each AS's
:class:`~repro.core.query.PathQueryFrontend`: typed
:class:`~repro.core.query.PathQuery` objects resolved against a bounded,
expiry-aware response cache that revocation-driven withdrawal invalidates
precisely (never by scan).  This benchmark runs the canonical serving
workload (``run_benchmarks.run_path_query``) at the conftest scale: a
two-period beaconing warm-up, a timed cache-hit throughput loop over a
pinned per-AS query mix (headline ``lookups_per_s``; target >= 1M/s at
medium scale), then a seeded revocation-churn phase that samples
per-lookup latencies against the partially invalidated caches.

Like the other paper-scale simulations this is excluded from tier-1; run
it with ``-m slow`` (``IREC_BENCH_SCALE`` selects the topology size).
"""

from __future__ import annotations

import pytest

from repro.topology.generator import generate_topology

from conftest import bench_topology_config
from run_benchmarks import run_path_query

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow


def test_path_query_report(capsys):
    """Run the serving workload and print the throughput/latency report."""
    report = run_path_query(generate_topology(bench_topology_config()))
    churn = report["churn"]
    cache = report["cache"]
    with capsys.disabled():
        print(
            f"\nPath-query serving — {report['queries']} distinct queries over "
            f"{report['ases']} ASes: {report['lookups']:,} lookups at "
            f"{report['lookups_per_s']:,.0f}/s; churn of {churn['failures']} "
            f"withdrawals: p99 {churn['p99_us']:.1f}us over "
            f"{churn['latency_samples']} samples "
            f"({cache['invalidations']} invalidations, "
            f"hit ratio {cache['hit_ratio']:.3f})"
        )
    # The steady-state loop is all cache hits, churn really invalidated
    # cached responses, and the tier sustains a meaningful lookup rate
    # even at small scale.
    assert report["lookups"] > 0
    assert cache["invalidations"] > 0
    assert cache["hit_ratio"] > 0.9
    assert report["lookups_per_s"] > 100_000
