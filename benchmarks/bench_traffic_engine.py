"""Traffic-engine benchmark — flow-rounds/s and goodput recovery.

Measures the data-plane half of the stack at the configured scale: a
beaconing warm-up populates the path services, then a gravity+hotspot
workload of hundreds of thousands of aggregated end-host flows runs
standalone rounds over the registered paths through the capacity-aware
link model.  Reported numbers:

* **flow-rounds/s** — end-host flows advanced per wall-clock second (the
  PR 3 acceptance target is ≥100k at medium scale), and
* **goodput recovery** — in a second, scenario-coupled run, how long
  aggregate goodput stays depressed after a stub AS is cut off.

Like the other simulation-scale benchmarks this is excluded from tier-1;
run it with ``-m slow`` (``IREC_BENCH_SCALE`` selects the topology size).
"""

from __future__ import annotations

import time

import pytest

from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import don_scenario
from repro.topology.generator import generate_topology
from repro.traffic import (
    CapacityLinkModel,
    EcmpPolicy,
    TrafficEngine,
    hotspot_matrix,
)
from repro.units import minutes

from conftest import bench_topology_config, simulation_periods

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow

PERIOD_MS = minutes(10)
TOTAL_FLOWS = 500_000
MATRIX_PAIRS = 2_000
ROUNDS = 30


def warmed_up_simulation(periods: int = 2):
    """Run a short beaconing simulation to populate the path services."""
    topology = generate_topology(bench_topology_config())
    simulation = BeaconingSimulation(
        topology, don_scenario(periods=periods, verify_signatures=False)
    )
    simulation.run()
    return topology, simulation


def build_standalone_engine(topology, simulation):
    matrix = hotspot_matrix(
        topology,
        total_demand_mbps=1_000_000.0,
        total_flows=TOTAL_FLOWS,
        hotspot_as=topology.as_ids()[0],
        hotspot_fraction=0.3,
        max_pairs=min(MATRIX_PAIRS, topology.num_ases * (topology.num_ases - 1)),
        seed=3,
    )
    return TrafficEngine(
        topology=topology,
        path_services={
            as_id: service.path_service
            for as_id, service in simulation.services.items()
        },
        matrix=matrix,
        link_state=simulation.link_state,
        policy=EcmpPolicy(max_paths=2),
        link_model=CapacityLinkModel(topology, capacity_scale=0.5),
    )


def test_traffic_throughput_report(capsys):
    """Measure sustained flow-rounds/s over the registered paths."""
    topology, simulation = warmed_up_simulation()
    engine = build_standalone_engine(topology, simulation)
    start = time.perf_counter()
    collector = engine.run_rounds(ROUNDS)
    wall_s = time.perf_counter() - start
    flow_rounds = collector.total_flow_rounds
    rate = flow_rounds / wall_s if wall_s > 0 else 0.0
    last = collector.samples[-1]
    with capsys.disabled():
        print(
            f"\nTraffic throughput — {len(engine.matrix)} groups, "
            f"{engine.matrix.total_flows} flows, {topology.num_ases} ASes"
        )
        print(
            f"  {flow_rounds} flow-rounds in {wall_s:.2f}s = {rate:,.0f} flow-rounds/s"
        )
        print(
            f"  offered {last.offered_mbps:,.0f} Mbit/s, carried "
            f"{last.carried_mbps:,.0f}, max link util {last.max_link_utilization:.2f}"
        )
    assert rate >= 100_000, f"flow-round rate regressed: {rate:,.0f}/s"
    assert last.carried_mbps > 0


def test_goodput_recovery_report(capsys):
    """Measure goodput dip and recovery after cutting off a stub AS."""
    topology = generate_topology(bench_topology_config())
    periods = simulation_periods() + 3
    victim_as = topology.as_ids()[-1]
    fail_ms = 2.5 * PERIOD_MS
    scenario = don_scenario(periods=periods, verify_signatures=False)
    for link in topology.links_of(victim_as):
        scenario.at(fail_ms).fail_link(link.key)
        scenario.at(fail_ms + 1.5 * PERIOD_MS).recover_link(link.key)
    simulation = BeaconingSimulation(topology, scenario)
    matrix = hotspot_matrix(
        topology,
        total_demand_mbps=200_000.0,
        total_flows=100_000,
        hotspot_as=victim_as,
        hotspot_fraction=0.4,
        max_pairs=min(500, topology.num_ases * (topology.num_ases - 1)),
        seed=3,
    )
    engine = TrafficEngine.for_simulation(
        simulation, matrix, policy=EcmpPolicy(max_paths=2),
        round_interval_ms=minutes(1),
    )
    engine.schedule_rounds(
        start_ms=PERIOD_MS + minutes(1), count=(periods - 1) * 10 - 2
    )
    simulation.run()
    collector = engine.collector
    recovery_ms = collector.goodput_recovery_ms(fail_ms)
    mean_ttr = collector.mean_time_to_reroute_ms()
    ttr_text = f"{mean_ttr / 1000.0:.1f}s" if mean_ttr is not None else "n/a"
    recovery_text = (
        f"{recovery_ms / minutes(1):.1f} min" if recovery_ms else "none observed"
    )
    with capsys.disabled():
        print(
            f"\nGoodput recovery — {len(collector.reroutes)} groups broken, "
            f"mean time-to-reroute {ttr_text}"
        )
        print(f"  goodput recovery: {recovery_text}")
    assert collector.reroutes, "the cutoff must break flow groups"
    assert collector.samples
