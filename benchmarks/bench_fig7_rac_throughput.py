"""Figure 7 — PCB processing throughput for a growing number of RACs.

The paper measures the aggregate PCB/s throughput of 1 to 32 RACs for
candidate sets Φ of 16 to 4096 PCBs and observes (i) near-linear scaling
with the number of RACs (they are independent processes) and (ii)
sub-linear growth with |Φ| — larger batches amortize the per-execution
setup and IPC overhead, so the per-beacon cost drops.

This module regenerates the (RAC count, |Φ|) grid and checks both shapes.
"""

from __future__ import annotations

import pytest

from repro.analysis.microbench import measure_throughput, throughput_series
from repro.analysis.reporting import format_table

RAC_COUNTS = (1, 2, 4, 8, 16)
CANDIDATE_SET_SIZES = (16, 64, 256)


@pytest.mark.parametrize("rac_count", (1, 4, 16))
def test_throughput_measurement(benchmark, rac_count):
    """Benchmark aggregate throughput measurement for ``rac_count`` RACs."""
    point = benchmark(measure_throughput, rac_count, 64)
    assert point.pcbs_per_second > 0.0


def test_figure7_series_report(capsys):
    """Regenerate and print the full Figure-7 grid."""
    series = throughput_series(RAC_COUNTS, CANDIDATE_SET_SIZES)
    rows = [
        [point.candidate_set_size, point.rac_count, point.pcbs_per_second]
        for point in series
    ]
    table = format_table(["|Phi|", "RACs", "PCB/s"], rows)
    with capsys.disabled():
        print("\nFigure 7 — PCB processing throughput vs. number of RACs")
        print(table)

    by_key = {(p.candidate_set_size, p.rac_count): p.pcbs_per_second for p in series}
    # (i) Throughput scales close to linearly with the RAC count.
    for size in CANDIDATE_SET_SIZES:
        assert by_key[(size, 16)] > 8.0 * by_key[(size, 1)]
    # (ii) Larger candidate sets achieve higher per-RAC throughput
    #      (per-beacon overhead decreases), at least from 16 to 256.
    assert by_key[(256, 1)] > by_key[(16, 1)]
