"""Ablation — Sobrinho-style dominant paths vs. IREC's parallel single-criterion RACs.

Related work (§X) achieves multi-criteria optimality by keeping *all*
Pareto-dominant paths under the intersection of the criteria, at the cost
of a beacon set that grows with the number of criteria.  IREC instead runs
one algorithm per criteria set and bounds each one's output.  This ablation
measures, on the same candidate sets, how many beacons each approach
selects for propagation and how long the selection takes.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import ExecutionContext
from repro.algorithms.bandwidth import WidestPathAlgorithm
from repro.algorithms.delay import DelayOptimizationAlgorithm
from repro.algorithms.pareto import ParetoDominantAlgorithm
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.analysis.reporting import format_table
from repro.analysis.workloads import BENCHMARK_LOCAL_AS, synthetic_candidate_set

CANDIDATE_SIZES = (64, 256, 1024)


def _context(candidates, limit=1024):
    return ExecutionContext(
        local_as=BENCHMARK_LOCAL_AS,
        candidates=tuple(candidates),
        egress_interfaces=(1,),
        max_paths_per_interface=limit,
        intra_latency_ms=lambda a, b: 0.0,
    )


def _parallel_selected(candidates):
    """Total beacons selected by IREC's three single-criterion algorithms."""
    algorithms = (
        KShortestPathAlgorithm(k=1),
        DelayOptimizationAlgorithm(paths_per_interface=1),
        WidestPathAlgorithm(paths_per_interface=1),
    )
    digests = set()
    for algorithm in algorithms:
        result = algorithm.execute(_context(candidates))
        digests.update(beacon.digest() for beacon in result.beacons_for(1))
    return len(digests)


def _pareto_selected(candidates):
    result = ParetoDominantAlgorithm().execute(_context(candidates))
    return len(result.beacons_for(1))


def test_ablation_pareto_report(capsys):
    """Compare the propagation load of the two approaches across |Φ|."""
    rows = []
    for size in CANDIDATE_SIZES:
        candidates = synthetic_candidate_set(size)
        parallel = _parallel_selected(candidates)
        pareto = _pareto_selected(candidates)
        rows.append([size, parallel, pareto, pareto / max(1, parallel)])
    with capsys.disabled():
        print("\nAblation — beacons selected: parallel single-criterion RACs vs. dominant paths")
        print(format_table(["|Phi|", "IREC (3 RACs)", "Pareto dominant", "ratio"], rows))

    # IREC's output is bounded by the number of criteria (3 here); the
    # dominant set grows with the candidate set, as the paper argues.
    for size, parallel, pareto, _ratio in rows:
        assert parallel <= 3
        assert pareto >= parallel
    assert rows[-1][2] > rows[0][2]


@pytest.mark.parametrize("size", (64, 256))
def test_pareto_selection_benchmark(benchmark, size):
    """Benchmark dominant-path selection over |Φ| candidates."""
    candidates = synthetic_candidate_set(size)
    count = benchmark(_pareto_selected, candidates)
    assert count >= 1


@pytest.mark.parametrize("size", (64, 256))
def test_parallel_selection_benchmark(benchmark, size):
    """Benchmark IREC's three parallel single-criterion selections."""
    candidates = synthetic_candidate_set(size)
    count = benchmark(_parallel_selected, candidates)
    assert count >= 1
