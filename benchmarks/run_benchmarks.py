#!/usr/bin/env python
"""Benchmark-regression harness for the beacon fast path.

Runs the paper-derived workloads at a pinned scale and writes one JSON
report (wall-clock per stage, beacons/sec, digest/verify operation counts)
so that successive PRs have a perf trajectory to regress against:

    PYTHONPATH=src python benchmarks/run_benchmarks.py --out BENCH_PR1.json

Stages
------

* ``fig6_rac_latency``      — on-demand RAC processing latency over growing
                              candidate sets (modelled sandbox/IPC costs
                              zeroed so raw Python cost is visible),
* ``fig7_rac_throughput``   — aggregate PCB/s of several RACs over the
                              Figure-7 (rac count, |Φ|) grid,
* ``pareto_frontier``       — the Sobrinho-style dominant-set baseline over
                              synthetic candidate sets (stresses the
                              frontier computation and metric extraction),
* ``beaconing_e2e``         — a full multi-period beaconing simulation with
                              signature verification enabled, at the scale
                              selected by ``--scale`` / ``IREC_BENCH_SCALE``
                              (default ``medium``),
* ``dynamic_convergence``   — a beaconing simulation under a seeded schedule
                              of link failures/recoveries with convergence
                              tracking (added in PR 2; absent from older
                              baselines, which the comparison tolerates),
* ``revocation``            — the hop-by-hop revocation flood: after one
                              warm-up beaconing period, a batch of link
                              failures is injected and the resulting
                              signed revocation messages (dedup, indexed
                              withdrawal, re-forwarding) are drained;
                              reports messages/s (added in PR 4),
* ``traffic``               — the flow-level traffic engine: a gravity+
                              hotspot workload of aggregated end-host flows
                              over the registered paths through the
                              capacity-aware link model, reporting
                              flow-rounds/s and — in a scenario-coupled
                              second run — goodput recovery after a stub AS
                              is cut off (added in PR 3),
* ``control_overload``      — a simultaneous revocation storm against
                              bounded, rate-limited per-AS inboxes
                              (finite service budget, bounded capacity,
                              priority scheduling): reports storm
                              throughput (messages/s, regression-gated)
                              plus the queueing-delay distribution,
                              drop/mark/deferral counters and the
                              deepest queue reached (added in PR 6),
* ``message_fabric``        — the unified message fabric: a mixed workload
                              of path-registration messages and revocation
                              floods driven through the typed transport,
                              drained once with batched per-AS inboxes
                              (the default) and once in per-message mode
                              (``batch_size=1``); reports messages/s for
                              both plus the batch speedup (added in PR 5),
* ``parallel_e2e``          — the same end-to-end beaconing workload as
                              ``beaconing_e2e``, run through the sharded
                              coordinator (``--workers`` shard processes
                              over the message fabric).  The stage asserts
                              that the sharded run transmitted *exactly*
                              as many PCBs as the single-process stage —
                              the equality the golden-digest tests pin —
                              and reports the interleaved same-machine
                              speedup against it (added in PR 10),
* ``path_query``            — the path-query serving tier: after a warmed
                              beaconing run, every AS's
                              ``PathQueryFrontend`` serves a pinned mix of
                              plain and policy-filtered queries from its
                              response cache (reports ``lookups_per_s``),
                              then a seeded revocation-churn phase
                              alternates link withdrawals with sampled
                              per-lookup latencies (reports the p99 and
                              the cache hit/invalidation counters)
                              (added in PR 9).

``--fail-on-regression PCT`` (used by CI together with ``--baseline``)
exits non-zero when any stage's throughput drops by more than PCT percent
or its wall time grows by more than PCT percent versus the baseline.

Every stage resets the library's crypto perf counters first, so the
reported ``digest``/``verify`` numbers are the operations that stage
actually performed (memo/cache hits do not count — that is the point).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

if __package__ is None or __package__ == "":  # direct script invocation
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.algorithms.pareto import ParetoDominantAlgorithm
from repro.analysis.microbench import latency_series, measure_throughput
from repro.analysis.workloads import synthetic_candidate_set

try:
    from repro.crypto.hashing import perf_counters, reset_perf_counters
except ImportError:  # pre-PR1 trees have no crypto perf counters
    def perf_counters():
        return {}

    def reset_perf_counters():
        return None
from repro.obs import spans
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import random_link_failures
from repro.simulation.scenario import don_scenario
from repro.topology.generator import TopologyConfig, generate_topology, paper_scale_config

try:
    import resource
except ImportError:  # non-Unix platform: RSS sampling degrades to None
    resource = None


def peak_rss_mb():
    """Return the process's peak RSS in MiB (None where unsupported).

    ``ru_maxrss`` is a high-water mark, so per-stage values are
    monotonically non-decreasing across the run: a stage's entry shows the
    peak *up to and including* that stage, and a jump pinpoints the stage
    that grew the footprint.  (Linux reports KiB, macOS bytes.)
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(peak / divisor, 2)

# Pinned workload shapes — change them only together with a note in the
# report's ``meta`` section, otherwise cross-PR comparisons are meaningless.
FIG6_SIZES = (16, 64, 256)
FIG7_RAC_COUNTS = (1, 4)
FIG7_SIZES = (64, 256, 1024)
PARETO_SIZES = (256, 1024)
PARETO_ROUNDS = 3


def scale_topology_config(scale: str, seed: int = 7) -> TopologyConfig:
    """Return the pinned topology configuration for ``scale``.

    Mirrors ``benchmarks/conftest.py`` (kept in sync by hand; the harness
    must stay importable without pytest).
    """
    if scale == "paper":
        return paper_scale_config(seed=seed)
    if scale == "large":
        return TopologyConfig(
            num_ases=260,
            num_core=8,
            num_transit=64,
            core_parallel_links=2,
            transit_provider_count=3,
            stub_provider_count=2,
            peering_probability=0.08,
            max_pops_core=6,
            max_pops_transit=3,
            max_pops_stub=2,
            seed=seed,
        )
    if scale == "medium":
        return TopologyConfig(
            num_ases=120,
            num_core=6,
            num_transit=30,
            core_parallel_links=2,
            transit_provider_count=3,
            stub_provider_count=2,
            peering_probability=0.1,
            max_pops_core=6,
            max_pops_transit=3,
            max_pops_stub=2,
            seed=seed,
        )
    return TopologyConfig(
        num_ases=30,
        num_core=4,
        num_transit=9,
        core_parallel_links=2,
        transit_provider_count=2,
        stub_provider_count=2,
        peering_probability=0.15,
        max_pops_core=5,
        max_pops_transit=3,
        max_pops_stub=2,
        seed=seed,
    )


def _staged(run):
    """Run ``run`` with fresh perf counters; return (result, wall_s, counters)."""
    reset_perf_counters()
    start = time.perf_counter()
    result = run()
    wall_s = time.perf_counter() - start
    return result, wall_s, perf_counters()


def stage_fig6_rac_latency() -> dict:
    """Figure-6 latency decomposition with modelled costs zeroed."""
    series, wall_s, counters = _staged(
        lambda: latency_series(FIG6_SIZES, modelled_setup_ms=0.0, modelled_ipc_call_ms=0.0)
    )
    return {
        "wall_s": wall_s,
        "points": [
            {
                "candidate_set_size": point.candidate_set_size,
                "irec_total_ms": point.irec_total_ms,
                "legacy_ms": point.legacy_ms,
            }
            for point in series
        ],
        "crypto_ops": counters,
    }


def stage_fig7_rac_throughput() -> dict:
    """Figure-7 throughput grid; the headline beacons/sec number."""

    def run():
        points = []
        for size in FIG7_SIZES:
            for rac_count in FIG7_RAC_COUNTS:
                points.append(measure_throughput(rac_count=rac_count, candidate_set_size=size))
        return points

    points, wall_s, counters = _staged(run)
    throughputs = [p.pcbs_per_second for p in points if p.pcbs_per_second > 0]
    return {
        "wall_s": wall_s,
        # Mean of the per-point measured throughputs: the wall clock also
        # covers (identical) workload construction, the measured PCB/s is
        # the regression-relevant number.
        "beacons_per_s": sum(throughputs) / len(throughputs) if throughputs else 0.0,
        "points": [
            {
                "rac_count": p.rac_count,
                "candidate_set_size": p.candidate_set_size,
                "pcbs_per_second": p.pcbs_per_second,
            }
            for p in points
        ],
        "crypto_ops": counters,
    }


def stage_pareto_frontier() -> dict:
    """Dominant-set selection over synthetic candidates (related-work baseline)."""
    algorithm = ParetoDominantAlgorithm()
    candidate_sets = {size: synthetic_candidate_set(size) for size in PARETO_SIZES}

    def run():
        processed = 0
        for size, candidates in candidate_sets.items():
            beacons = [candidate.beacon for candidate in candidates]
            for _round in range(PARETO_ROUNDS):
                dominant = algorithm.dominant_set(beacons)
                processed += len(beacons)
                assert dominant, f"empty dominant set for size {size}"
        return processed

    processed, wall_s, counters = _staged(run)
    return {
        "wall_s": wall_s,
        "beacons_per_s": processed / wall_s if wall_s > 0 else 0.0,
        "crypto_ops": counters,
    }


def stage_beaconing_e2e(scale: str, periods: int) -> dict:
    """Full beaconing simulation with signature verification enabled."""
    topology = generate_topology(scale_topology_config(scale))

    def run():
        simulation = BeaconingSimulation(
            topology, don_scenario(periods=periods, verify_signatures=True)
        )
        return simulation.run()

    result, wall_s, counters = _staged(run)
    stats_totals = {"received": 0, "accepted": 0, "full_verifications": 0,
                    "incremental_verifications": 0, "signatures_checked": 0}
    for service in result.services.values():
        ingress = getattr(service, "ingress", None)
        stats = getattr(ingress, "stats", None)
        if stats is None:
            continue
        for key in stats_totals:
            stats_totals[key] += getattr(stats, key, 0)
    return {
        "wall_s": wall_s,
        "periods": result.periods_run,
        "pcbs_sent": result.collector.total_sent,
        "beacons_per_s": result.collector.total_sent / wall_s if wall_s > 0 else 0.0,
        "ingress": stats_totals,
        "crypto_ops": counters,
    }


def stage_parallel_e2e(scale: str, periods: int, workers: int, report: dict) -> dict:
    """Sharded end-to-end beaconing: the ``beaconing_e2e`` workload over
    ``workers`` shard processes, A/B'd against the single-process stage.

    The single-process ``beaconing_e2e`` stage of the *same harness run*
    is the baseline — interleaved on the same machine, same topology
    seed, same periods — so the reported ``speedup_vs_single`` is a real
    like-for-like number, not a cross-run comparison.  The PCB count must
    match the single-process stage exactly (the sharded protocol is
    bit-deterministic); a mismatch fails the whole harness.
    """
    from repro.parallel import ShardedBeaconingSimulation

    topology = generate_topology(scale_topology_config(scale))

    def run():
        # Construction (partitioning + worker forking) is inside the timed
        # window: spawn cost is part of what a user of --workers pays.
        simulation = ShardedBeaconingSimulation(
            topology,
            don_scenario(periods=periods, verify_signatures=True),
            workers=workers,
        )
        return simulation, simulation.run()

    (simulation, result), wall_s, counters = _staged(run)
    entry = {
        "wall_s": wall_s,
        "workers": workers,
        "shard_count": sum(1 for shard in simulation.partition.shards if shard),
        "periods": result.periods_run,
        "pcbs_sent": result.collector.total_sent,
        "beacons_per_s": result.collector.total_sent / wall_s if wall_s > 0 else 0.0,
        "coordinator": simulation.counters(),
        "worker_utilization": simulation.utilization(),
        "crypto_ops": counters,
    }
    single = report["stages"].get("beaconing_e2e")
    if single is not None:
        if single["pcbs_sent"] != entry["pcbs_sent"]:
            raise AssertionError(
                "sharded run diverged from single-process: "
                f"pcbs_sent {entry['pcbs_sent']} != {single['pcbs_sent']}"
            )
        entry["single_wall_s"] = single["wall_s"]
        entry["speedup_vs_single"] = (
            single["wall_s"] / wall_s if wall_s > 0 else 0.0
        )
    return entry


def stage_dynamic_convergence(scale: str, periods: int) -> dict:
    """Beaconing under seeded failures/recoveries with convergence tracking."""
    import random

    topology = generate_topology(scale_topology_config(scale))
    interval_ms = 600_000.0
    scenario = don_scenario(periods=periods + 2, verify_signatures=False)
    as_ids = topology.as_ids()
    victim_links = [link.key for link in topology.links_of(as_ids[-1])]
    scenario.timeline.extend(
        random_link_failures(
            topology,
            count=2,
            rng=random.Random(97),
            start_ms=1.5 * interval_ms,
            spacing_ms=interval_ms,
            recovery_after_ms=1.5 * interval_ms,
            candidates=victim_links,
        )
    )

    def run():
        simulation = BeaconingSimulation(topology, scenario)
        simulation.watch_pair(as_ids[-1], as_ids[0])
        return simulation.run()

    result, wall_s, counters = _staged(run)
    records = result.convergence.records
    recovered = [r for r in records if r.recovered]
    return {
        "wall_s": wall_s,
        "pcbs_sent": result.collector.total_sent,
        "beacons_per_s": result.collector.total_sent / wall_s if wall_s > 0 else 0.0,
        "pcbs_dropped": result.collector.total_dropped,
        "revocations": result.collector.total_revocations,
        "disruptions": len(records),
        "recovered": len(recovered),
        "mean_recovery_ms": (
            sum(r.time_to_recovery_ms for r in recovered) / len(recovered)
            if recovered
            else 0.0
        ),
        "crypto_ops": counters,
    }


def run_revocation_flood(
    topology,
    failure_count: int = 60,
    drain_ms: float = 60_000.0,
    inbox_batch_size=None,
) -> dict:
    """Warm up one beaconing period, then flood revocations for sampled links.

    The canonical revocation workload, shared by the ``revocation`` stage
    and ``benchmarks/bench_revocation.py`` (which passes a conftest-scaled
    topology).  Only the flood phase is timed — the measured quantity is
    the revocation subsystem (origination, hop-by-hop forwarding, dedup,
    indexed withdrawal), not the warm-up beaconing.  ``inbox_batch_size``
    selects the fabric's drain mode (``None``: batched, ``1``:
    per-message).
    """
    import gc
    import random

    from repro.simulation.beaconing import BeaconingSimulation

    scenario = don_scenario(periods=1, verify_signatures=False)
    scenario.inbox_batch_size = inbox_batch_size
    simulation = BeaconingSimulation(topology, scenario)
    simulation.run()  # warm-up: populate the per-AS databases

    rng = random.Random(5)
    pool = list(topology.link_ids())
    # Cap at a quarter of the links: failing most of a small topology
    # just partitions it and measures drops, not flood throughput.
    chosen = rng.sample(pool, k=min(failure_count, max(1, len(pool) // 4)))
    collector = simulation.collector
    messages_before = collector.total_revocations
    scheduler = simulation.scheduler

    # A process that already holds large simulations (earlier harness
    # stages) pays full GC passes over gigabytes of live beacons during
    # the flood; freeze parks the existing objects in the permanent
    # generation so the timed section only pays for its own garbage.
    gc.collect()
    gc.freeze()
    try:
        start = time.perf_counter()
        for link_id in chosen:
            simulation.link_state.fail_link(link_id)
            (as_a, _), (as_b, _) = link_id
            for as_id in sorted({as_a, as_b}):
                if simulation.link_state.is_as_up(as_id):
                    simulation.services[as_id].originate_revocation(
                        now_ms=scheduler.now_ms, failed_link=link_id
                    )
        # Drain every in-flight revocation; per-hop delays are
        # milliseconds, so the default one-minute horizon is comfortable.
        scheduler.run_until(scheduler.now_ms + drain_ms)
        wall_s = time.perf_counter() - start
    finally:
        gc.unfreeze()

    messages = collector.total_revocations - messages_before
    withdrawals = sum(
        len(service.revocations.applied_at) for service in simulation.services.values()
    )
    duplicates = sum(
        service.revocations.duplicates for service in simulation.services.values()
    )
    return {
        "wall_s": wall_s,
        "failures": len(chosen),
        "messages": messages,
        "messages_per_s": messages / wall_s if wall_s > 0 else 0.0,
        "messages_dropped": collector.revocations_dropped,
        "withdrawals_applied": withdrawals,
        "duplicates": duplicates,
        "ases": topology.num_ases,
    }


def stage_revocation(scale: str) -> dict:
    """Hop-by-hop revocation flood throughput (messages/s)."""
    topology = generate_topology(scale_topology_config(scale))
    reset_perf_counters()
    report = run_revocation_flood(topology)
    report["crypto_ops"] = perf_counters()
    return report


def run_message_fabric(
    topology,
    inbox_batch_size=None,
    failure_count: int = 40,
    registrations_per_as: int = 20,
    drain_ms: float = 60_000.0,
) -> dict:
    """Drive a mixed typed-message workload through the unified fabric.

    After one warm-up beaconing period populates the per-AS databases,
    every AS offers a slice of its registered paths to each neighbour as
    :class:`~repro.core.messages.PathRegistrationMessage` traffic, and a
    batch of link failures triggers hop-by-hop revocation floods — all
    through the one ``send_message`` path, landing in per-AS inboxes
    drained per scheduler tick.  Only the injection + drain phase is
    timed; the headline number is fabric messages (registrations +
    revocations) processed per wall-clock second.
    """
    import gc
    import random

    from repro.simulation.beaconing import BeaconingSimulation

    scenario = don_scenario(periods=1, verify_signatures=False)
    scenario.inbox_batch_size = inbox_batch_size
    simulation = BeaconingSimulation(topology, scenario)
    simulation.run()  # warm-up: populate the per-AS databases

    rng = random.Random(11)
    pool = list(topology.link_ids())
    chosen = rng.sample(pool, k=min(failure_count, max(1, len(pool) // 4)))
    collector = simulation.collector
    scheduler = simulation.scheduler
    revocations_before = collector.total_revocations
    registrations_before = collector.total_registrations

    gc.collect()
    gc.freeze()
    try:
        start = time.perf_counter()
        # Path-registration traffic: each AS offers its best known paths
        # to every neighbour (the gossip a distributed path layer pays).
        for as_id in sorted(simulation.services):
            service = simulation.services[as_id]
            sender = getattr(service, "send_path_registration", None)
            if sender is None:
                continue
            paths = service.path_service.all_paths()[:registrations_per_as]
            for interface_id in service.view.interface_ids():
                for path in paths:
                    sender(interface_id, path, now_ms=scheduler.now_ms)
        # Revocation floods for a batch of simultaneous link failures.
        for link_id in chosen:
            simulation.link_state.fail_link(link_id)
            (as_a, _), (as_b, _) = link_id
            for as_id in sorted({as_a, as_b}):
                if simulation.link_state.is_as_up(as_id):
                    simulation.services[as_id].originate_revocation(
                        now_ms=scheduler.now_ms, failed_link=link_id
                    )
        scheduler.run_until(scheduler.now_ms + drain_ms)
        wall_s = time.perf_counter() - start
    finally:
        gc.unfreeze()

    revocations = collector.total_revocations - revocations_before
    registrations = collector.total_registrations - registrations_before
    messages = revocations + registrations
    return {
        "wall_s": wall_s,
        "messages": messages,
        "revocations": revocations,
        "registrations": registrations,
        "messages_per_s": messages / wall_s if wall_s > 0 else 0.0,
        "messages_dropped": collector.revocations_dropped + collector.registrations_dropped,
        "failures": len(chosen),
        "ases": topology.num_ases,
        "inbox_batch_size": inbox_batch_size,
    }


def stage_message_fabric(scale: str) -> dict:
    """Unified-fabric throughput: batched drains vs per-message delivery."""
    reset_perf_counters()
    batched = run_message_fabric(
        generate_topology(scale_topology_config(scale)), inbox_batch_size=None
    )
    per_message = run_message_fabric(
        generate_topology(scale_topology_config(scale)), inbox_batch_size=1
    )
    speedup = (
        batched["messages_per_s"] / per_message["messages_per_s"]
        if per_message["messages_per_s"] > 0
        else 0.0
    )
    return {
        # The headline (regression-gated) numbers are the batched mode's —
        # batching is the fabric's default.
        "wall_s": batched["wall_s"],
        "messages_per_s": batched["messages_per_s"],
        "messages": batched["messages"],
        "batched": batched,
        "per_message": per_message,
        "batch_speedup": speedup,
        "crypto_ops": perf_counters(),
    }


def run_path_query(
    topology,
    target_lookups: int = 2_000_000,
    queries_per_as: int = 8,
    churn_links: int = 12,
    samples_per_wave: int = 400,
    drain_ms: float = 60_000.0,
) -> dict:
    """Serve a pinned query mix from every AS's path-query frontend.

    Two phases, shared by the ``path_query`` stage and
    ``benchmarks/bench_path_query.py``:

    1. **Throughput** — after a two-period beaconing warm-up populates the
       per-AS path services, each AS gets a pinned mix of plain and
       policy-filtered :class:`~repro.core.query.PathQuery` objects over
       the origins it knows.  One pass warms the response caches, then a
       timed tight loop replays the whole mix until ``target_lookups``
       lookups have been served — the steady state the serving tier is
       built for, so the headline ``lookups_per_s`` is effectively the
       cache-hit rate.
    2. **Revocation churn** — a seeded batch of link failures is applied
       one wave at a time; each wave originates real revocation floods,
       drains them, then samples per-lookup wall latencies across the
       (now partially invalidated) frontends.  The reported ``p99_us``
       covers re-materialization misses, and the frontend counters show
       how much of the cache the churn actually invalidated.
    """
    import gc
    import random

    from repro.core.query import PathQuery
    from repro.simulation.beaconing import BeaconingSimulation

    scenario = don_scenario(periods=2, verify_signatures=False)
    simulation = BeaconingSimulation(topology, scenario)
    simulation.run()  # warm-up: populate the per-AS path services
    scheduler = simulation.scheduler
    now_ms = scheduler.now_ms

    # Pinned per-AS query mix: plain queries over the first origins each
    # AS knows, plus policy-filtered variants (tag + latency ceiling) that
    # exercise the admission predicate and distinct cache keys.
    bound = []  # (frontend.query, query) pairs — pre-bound for the hot loop
    for as_id in sorted(simulation.services):
        service = simulation.services[as_id]
        frontend = service.query_frontend
        origins = sorted({
            path.segment.origin_as for path in service.path_service.all_paths()
        })
        for origin in origins[:queries_per_as]:
            bound.append((frontend.query, PathQuery(origin_as=origin)))
        for origin in origins[: max(1, queries_per_as // 4)]:
            bound.append(
                (frontend.query, PathQuery(origin_as=origin, max_latency_ms=500.0))
            )
    for lookup, query in bound:  # warm the response caches
        lookup(query, now_ms=now_ms)

    rounds = max(1, target_lookups // max(1, len(bound)))
    gc.collect()
    gc.freeze()
    try:
        start = time.perf_counter()
        for _round in range(rounds):
            for lookup, query in bound:
                lookup(query, now_ms)
        wall_s = time.perf_counter() - start
    finally:
        gc.unfreeze()
    lookups = rounds * len(bound)

    # Churn phase: withdraw links wave by wave, sampling lookup latencies
    # against the partially invalidated caches after each flood drains.
    rng = random.Random(17)
    pool = list(topology.link_ids())
    chosen = rng.sample(pool, k=min(churn_links, max(1, len(pool) // 4)))
    latencies_us = []
    for link_id in chosen:
        simulation.link_state.fail_link(link_id)
        (as_a, _), (as_b, _) = link_id
        for as_id in sorted({as_a, as_b}):
            if simulation.link_state.is_as_up(as_id):
                simulation.services[as_id].originate_revocation(
                    now_ms=scheduler.now_ms, failed_link=link_id
                )
        scheduler.run_until(scheduler.now_ms + drain_ms)
        now_ms = scheduler.now_ms
        for lookup, query in bound[:samples_per_wave]:
            sample_start = time.perf_counter()
            lookup(query, now_ms)
            latencies_us.append((time.perf_counter() - sample_start) * 1e6)

    latencies_us.sort()
    p99_us = (
        latencies_us[min(len(latencies_us) - 1, int(0.99 * len(latencies_us)))]
        if latencies_us
        else 0.0
    )
    frontends = [service.query_frontend for service in simulation.services.values()]
    hits = sum(f.hits for f in frontends)
    total = sum(f.lookups for f in frontends)
    return {
        "wall_s": wall_s,
        "lookups": lookups,
        "lookups_per_s": lookups / wall_s if wall_s > 0 else 0.0,
        "queries": len(bound),
        "churn": {
            "failures": len(chosen),
            "latency_samples": len(latencies_us),
            "p99_us": p99_us,
            "mean_us": (
                sum(latencies_us) / len(latencies_us) if latencies_us else 0.0
            ),
        },
        "cache": {
            "hits": hits,
            "misses": sum(f.misses for f in frontends),
            "invalidations": sum(f.invalidations for f in frontends),
            "evictions": sum(f.evictions for f in frontends),
            "hit_ratio": hits / total if total else 0.0,
        },
        "ases": topology.num_ases,
    }


def stage_path_query(scale: str) -> dict:
    """Path-query serving throughput plus the churn-phase latency tail."""
    topology = generate_topology(scale_topology_config(scale))
    reset_perf_counters()
    report = run_path_query(topology)
    report["crypto_ops"] = perf_counters()
    return report


def stage_control_overload(scale: str) -> dict:
    """Bounded-inbox revocation storm: throughput plus the queueing tail.

    Every AS runs a finite service budget (8 messages per 5 ms round,
    capacity 256, tail-drop), and a 30-link simultaneous storm hits
    mid-run — the workload the queue model exists for.  The headline
    ``messages_per_s`` is the storm's end-to-end control-message
    throughput (the run converges despite the backpressure); the
    queue-delay distribution and the drop/mark/deferral counters describe
    *how* the control plane degraded.
    """
    import random

    from repro.simulation.events import revocation_storm
    from repro.simulation.network import InboxProfile

    topology = generate_topology(scale_topology_config(scale))
    interval_ms = 600_000.0
    scenario = don_scenario(periods=3, verify_signatures=False)
    scenario.inbox_profile = InboxProfile(
        budget_per_tick=8, capacity=256, service_interval_ms=5.0
    )
    scenario.timeline.extend(
        revocation_storm(
            topology, count=30, rng=random.Random(23), at_ms=1.5 * interval_ms
        )
    )

    def run():
        return BeaconingSimulation(topology, scenario).run()

    result, wall_s, counters = _staged(run)
    collector = result.collector
    delay = collector.queue_delay_stats()
    high_water = collector.queue_high_water_marks()
    messages = collector.control_messages_total()
    return {
        "wall_s": wall_s,
        "messages": messages,
        "messages_per_s": messages / wall_s if wall_s > 0 else 0.0,
        "revocations": collector.total_revocations,
        "inbox_dropped": collector.inbox_dropped_total(),
        "inbox_marked": collector.inbox_marked_total(),
        "inbox_deferred": collector.inbox_deferred_total(),
        "queue_delay_ms": {
            "mean": delay["mean"],
            "p99": delay["p99"],
            "count": delay["count"],
        },
        "max_queue_depth": max(high_water.values()) if high_water else 0,
        "ases": topology.num_ases,
        "crypto_ops": counters,
    }


def stage_traffic(scale: str) -> dict:
    """Flow-level traffic engine: flow-rounds/s plus goodput recovery."""
    from repro.simulation.beaconing import BeaconingSimulation
    from repro.traffic import CapacityLinkModel, EcmpPolicy, TrafficEngine, hotspot_matrix
    from repro.units import minutes

    topology = generate_topology(scale_topology_config(scale))
    as_ids = topology.as_ids()
    warmup = BeaconingSimulation(
        topology, don_scenario(periods=2, verify_signatures=False)
    )
    warmup.run()

    total_flows = {"paper": 1_000_000, "large": 750_000, "medium": 500_000}.get(
        scale, 100_000
    )
    matrix = hotspot_matrix(
        topology,
        total_demand_mbps=1_000_000.0,
        total_flows=total_flows,
        hotspot_as=as_ids[0],
        hotspot_fraction=0.3,
        max_pairs=min(2_000, topology.num_ases * (topology.num_ases - 1)),
        seed=3,
    )
    engine = TrafficEngine(
        topology=topology,
        path_services={a: s.path_service for a, s in warmup.services.items()},
        matrix=matrix,
        link_state=warmup.link_state,
        policy=EcmpPolicy(max_paths=2),
        link_model=CapacityLinkModel(topology, capacity_scale=0.5),
    )

    def run():
        return engine.run_rounds(30)

    collector, wall_s, counters = _staged(run)
    last = collector.samples[-1]
    flow_rounds = collector.total_flow_rounds

    # Scenario-coupled failover: cut off a stub, measure goodput recovery.
    period_ms = minutes(10)
    fail_ms = 2.5 * period_ms
    scenario = don_scenario(periods=6, verify_signatures=False)
    victim_as = as_ids[-1]
    for link in topology.links_of(victim_as):
        scenario.at(fail_ms).fail_link(link.key)
        scenario.at(fail_ms + 1.5 * period_ms).recover_link(link.key)
    failover_sim = BeaconingSimulation(topology, scenario)
    # Modest demand: the failover measurement wants the dip to come from
    # the cutoff, not from background congestion.
    failover_matrix = hotspot_matrix(
        topology,
        total_demand_mbps=50_000.0,
        total_flows=min(total_flows, 100_000),
        hotspot_as=victim_as,
        hotspot_fraction=0.4,
        max_pairs=min(500, topology.num_ases * (topology.num_ases - 1)),
        seed=3,
    )
    failover_engine = TrafficEngine.for_simulation(
        failover_sim, failover_matrix, policy=EcmpPolicy(max_paths=2),
        round_interval_ms=minutes(1),
    )
    failover_engine.schedule_rounds(start_ms=period_ms + minutes(1), count=48)
    failover_sim.run()
    failover = failover_engine.collector
    mean_ttr = failover.mean_time_to_reroute_ms()
    recovery = failover.goodput_recovery_ms(fail_ms, tolerance=0.05)

    return {
        "wall_s": wall_s,
        "flow_rounds": flow_rounds,
        "flow_rounds_per_s": flow_rounds / wall_s if wall_s > 0 else 0.0,
        "flows": matrix.total_flows,
        "flow_groups": len(matrix),
        "offered_mbps": last.offered_mbps,
        "carried_mbps": last.carried_mbps,
        "max_link_utilization": last.max_link_utilization,
        "failover": {
            "groups_broken": len(failover.reroutes),
            "mean_time_to_reroute_ms": mean_ttr,
            "goodput_recovery_ms": recovery,
        },
        "crypto_ops": counters,
    }


def _stage_throughput(stage: dict) -> float:
    """Return a stage's measured throughput, derived from points if needed."""
    points = stage.get("points")
    if points and "pcbs_per_second" in points[0]:
        throughputs = [p["pcbs_per_second"] for p in points if p["pcbs_per_second"] > 0]
        if throughputs:
            return sum(throughputs) / len(throughputs)
    if "flow_rounds_per_s" in stage:
        return stage["flow_rounds_per_s"]
    if "lookups_per_s" in stage:
        return stage["lookups_per_s"]
    if "messages_per_s" in stage:
        return stage["messages_per_s"]
    return stage.get("beacons_per_s", 0.0)


def compare_to_baseline(report: dict, baseline: dict) -> dict:
    """Return per-stage speedups of ``report`` over ``baseline``."""
    comparison = {}
    for name, stage in report["stages"].items():
        base = baseline.get("stages", {}).get(name)
        if not base:
            continue
        entry = {"baseline_wall_s": base["wall_s"]}
        if stage.get("wall_s"):
            entry["wall_speedup"] = base["wall_s"] / stage["wall_s"]
        base_throughput = _stage_throughput(base)
        throughput = _stage_throughput(stage)
        if base_throughput > 0:
            # Emit the ratio even when the current throughput is zero — a
            # total collapse must register as a 0.00x regression, not
            # silently fall back to the (probably improved) wall time.
            entry["baseline_beacons_per_s"] = base_throughput
            entry["beacons_per_s"] = throughput
            entry["throughput_speedup"] = throughput / base_throughput
        comparison[name] = entry
    return comparison


def find_regressions(comparison: dict, tolerance: float) -> list:
    """Return stages slower than the baseline beyond ``tolerance``.

    A stage regresses when its throughput dropped below ``1 - tolerance``
    of the baseline, or — for stages without a throughput metric — its
    wall time grew beyond ``1 + tolerance`` of the baseline.  Throughput
    is preferred because wall time also covers workload construction and
    is noisier on shared CI runners.
    """
    floor = 1.0 - tolerance
    ceiling = 1.0 + tolerance
    regressions = []
    for name, entry in sorted(comparison.items()):
        throughput_speedup = entry.get("throughput_speedup")
        if throughput_speedup is not None:
            if throughput_speedup < floor:
                regressions.append(
                    f"{name}: throughput at {throughput_speedup:.2f}x of baseline "
                    f"(floor {floor:.2f}x)"
                )
            continue
        wall_speedup = entry.get("wall_speedup")
        if wall_speedup is not None and wall_speedup > 0 and 1.0 / wall_speedup > ceiling:
            regressions.append(
                f"{name}: wall time at {1.0 / wall_speedup:.2f}x of baseline "
                f"(ceiling {ceiling:.2f}x)"
            )
    return regressions


def git_revision() -> dict:
    """Return the repo's current git SHA (and dirtiness), best-effort.

    Stamped into the report's ``meta`` so cross-PR comparisons can tell
    exactly which tree produced a baseline; any git failure (no repo, no
    binary) degrades to ``None`` rather than failing the run.
    """
    import subprocess

    repo_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return {"git_sha": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"git_sha": sha.stdout.strip(), "git_dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"git_sha": None}


def run_all(scale: str, periods: int, profile: bool = False, workers: int = 1) -> dict:
    report = {
        "meta": {
            "harness": "run_benchmarks.py v5 (PR 10)",
            "scale": scale,
            "periods": periods,
            "profile": profile,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "unix_time": time.time(),
            **git_revision(),
        },
        "stages": {},
    }
    stages = (
        ("fig6_rac_latency", stage_fig6_rac_latency),
        ("fig7_rac_throughput", stage_fig7_rac_throughput),
        ("pareto_frontier", stage_pareto_frontier),
        ("beaconing_e2e", lambda: stage_beaconing_e2e(scale, periods)),
        ("parallel_e2e", lambda: stage_parallel_e2e(scale, periods, workers, report)),
        ("dynamic_convergence", lambda: stage_dynamic_convergence(scale, periods)),
        ("revocation", lambda: stage_revocation(scale)),
        ("message_fabric", lambda: stage_message_fabric(scale)),
        ("path_query", lambda: stage_path_query(scale)),
        ("control_overload", lambda: stage_control_overload(scale)),
        ("traffic", lambda: stage_traffic(scale)),
    )
    if profile:
        spans.enable()
    for name, stage in stages:
        print(f"[bench] running {name} ...", flush=True)
        if profile:
            spans.reset()
        stage_start = time.perf_counter()
        entry = stage()
        stage_wall_s = time.perf_counter() - stage_start
        entry["peak_rss_mb"] = peak_rss_mb()
        if profile:
            # Phase-attributed time per stage: where the stage's *full*
            # wall clock went (exclusive times; see docs/observability.md).
            # Attribution runs against the whole stage — several stages do
            # instrumented warmup/setup outside their measured `wall_s`
            # window, so `wall_s` would over-count coverage.
            entry["phases"] = spans.snapshot()
            entry["profile_wall_s"] = stage_wall_s
            print(spans.attribution_table(stage_wall_s), flush=True)
        report["stages"][name] = entry
        print(
            f"[bench]   {name}: wall={entry['wall_s']:.2f}s"
            f" peak_rss={entry['peak_rss_mb']}MiB",
            flush=True,
        )
    if profile:
        spans.disable()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_PR1.json", help="output JSON path")
    parser.add_argument(
        "--scale",
        default=os.environ.get("IREC_BENCH_SCALE", "medium"),
        choices=("small", "medium", "large", "paper"),
        help="end-to-end simulation scale (default: IREC_BENCH_SCALE or medium)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("IREC_BENCH_WORKERS", "2")),
        help="shard worker processes for the parallel_e2e stage "
        "(default: IREC_BENCH_WORKERS or 2)",
    )
    parser.add_argument(
        "--periods", type=int, default=3, help="beaconing periods for the e2e stage"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous report (e.g. from the seed tree) to compute speedups against",
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="with --baseline: exit non-zero when a stage regresses by more "
        "than PCT percent (throughput drop, or wall-time growth for stages "
        "without a throughput metric)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable phase-attributed profiling spans: print a per-stage "
        "time-attribution table and record the phases in each stage's JSON "
        "entry (adds a few percent of overhead — do not compare profiled "
        "walls against unprofiled baselines)",
    )
    args = parser.parse_args(argv)
    if args.fail_on_regression is not None and args.baseline is None:
        parser.error("--fail-on-regression requires --baseline")

    baseline = None
    if args.baseline:
        # Load up front: a bad path must fail before the expensive run.
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        baseline_scale = baseline.get("meta", {}).get("scale")
        if baseline_scale is not None and baseline_scale != args.scale:
            print(
                f"[bench] WARNING: baseline was measured at scale={baseline_scale!r}, "
                f"this run uses scale={args.scale!r}; speedups are not comparable",
                flush=True,
            )

    report = run_all(args.scale, args.periods, profile=args.profile, workers=args.workers)
    if baseline is not None:
        report["baseline_meta"] = baseline.get("meta", {})
        report["speedup_vs_baseline"] = compare_to_baseline(report, baseline)
        for name, entry in report["speedup_vs_baseline"].items():
            wall = entry.get("wall_speedup")
            throughput = entry.get("throughput_speedup")
            print(
                f"[bench] {name}: wall {wall:.2f}x" if wall else f"[bench] {name}:",
                f"throughput {throughput:.2f}x" if throughput else "",
                flush=True,
            )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")
    if args.fail_on_regression is not None:
        regressions = find_regressions(
            report.get("speedup_vs_baseline", {}), args.fail_on_regression / 100.0
        )
        if regressions:
            for line in regressions:
                print(f"[bench] REGRESSION {line}", flush=True)
            return 1
        print(
            f"[bench] no stage regressed beyond {args.fail_on_regression:.0f}%",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
