#!/usr/bin/env python3
"""One-command experiment sweep over scenario × policy × scale grids.

Reads a declarative TOML grid (see ``examples/grids/``), runs one full
beaconing + traffic simulation per cell and appends one JSON line per
cell to a result log (see :mod:`result_logger`).  ``plot_results.py``
turns the log into fig8-style comparison plots.

Usage::

    PYTHONPATH=src python benchmarks/run_experiments.py \\
        --grid examples/grids/adversarial_small.toml

Grid schema
-----------

``[grid]``
    ``name`` (str), ``seed`` (int, base seed), ``periods`` (int),
    ``scenarios`` / ``policies`` / ``scales`` (lists of registry names),
    ``verify_signatures`` (bool, default true — required for the
    Byzantine scenarios to mean anything).
``[scenarios.<name>]``
    Per-scenario parameters (see the ``SCENARIOS`` registry).
``[traffic]``
    ``demand_mbps``, ``flows``, ``max_pairs``, ``rounds_per_period``.

Determinism: every cell derives its seed as ``base seed + cell index``
over the sorted cell list, so re-running the grid — or one cell
standalone with the logged seed — reproduces the logged metrics
bit-for-bit.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import random
import sys
import time
import tomllib
from typing import Callable, Dict, List, Optional, Tuple

if __package__ is None or __package__ == "":
    _here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, os.path.join(os.path.dirname(_here), "src"))
    sys.path.insert(0, _here)

from result_logger import SCHEMA_VERSION, ResultLogger
from run_benchmarks import scale_topology_config

from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import (
    byzantine_attack,
    flapping_links,
    gray_failures,
    growth_churn,
)
from repro.simulation.scenario import ScenarioConfig, dob_scenario, don_scenario
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.graph import Topology
from repro.traffic.demand import gravity_matrix
from repro.traffic.engine import ClosedLoopDemand, TrafficEngine

# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------

#: A scenario builder installs timeline events into ``scenario`` and
#: returns run options (currently only ``closed_loop``).
ScenarioBuilder = Callable[[ScenarioConfig, Topology, random.Random, Dict], Dict]


def _build_clean(
    scenario: ScenarioConfig, topology: Topology, rng: random.Random, params: Dict
) -> Dict:
    """Baseline: no adversarial events at all."""
    return {}


def _build_flap(
    scenario: ScenarioConfig, topology: Topology, rng: random.Random, params: Dict
) -> Dict:
    """Flapping links with directional loss; traffic runs closed-loop."""
    interval = scenario.propagation_interval_ms
    scenario.timeline.extend(
        flapping_links(
            topology,
            count=int(params.get("links", 1)),
            rng=rng,
            start_ms=1.5 * interval,
            cycles=int(params.get("cycles", 2)),
            mean_down_ms=float(params.get("mean_down_ms", interval / 4.0)),
            mean_up_ms=float(params.get("mean_up_ms", interval / 2.0)),
            loss_rate=float(params.get("loss_rate", 0.3)),
        )
    )
    return {"closed_loop": True}


def _build_gray(
    scenario: ScenarioConfig, topology: Topology, rng: random.Random, params: Dict
) -> Dict:
    """Silent gray failures — only closed-loop traffic can route around them."""
    interval = scenario.propagation_interval_ms
    duration = params.get("duration_periods", 1.0)
    scenario.timeline.extend(
        gray_failures(
            topology,
            count=int(params.get("links", 1)),
            rng=rng,
            at_ms=1.5 * interval,
            drop_rate=float(params.get("drop_rate", 1.0)),
            duration_ms=None if duration is None else float(duration) * interval,
        )
    )
    return {"closed_loop": True}


def _build_byzantine(
    scenario: ScenarioConfig, topology: Topology, rng: random.Random, params: Dict
) -> Dict:
    """Forged + replayed revocations from one attacker AS.

    ``enabled = false`` turns the attacker off while keeping the rest of
    the cell identical — the digest-equality control used to prove that
    a defeated attack leaves the run bit-for-bit unchanged.
    """
    if not params.get("enabled", True):
        return {}
    interval = scenario.propagation_interval_ms
    links = sorted(topology.link_ids())
    link_id = links[rng.randrange(len(links))]
    (origin_as, _if_a), (other_as, _if_b) = link_id
    attackers = [as_id for as_id in sorted(topology.as_ids()) if as_id not in (origin_as, other_as)]
    attacker_as = attackers[rng.randrange(len(attackers))] if attackers else other_as
    scenario.timeline.extend(
        byzantine_attack(
            attacker_as=attacker_as,
            claimed_origin=origin_as,
            link_id=link_id,
            at_ms=1.5 * interval,
            forgeries=int(params.get("forgeries", 3)),
            replays=int(params.get("replays", 0)),
            suppress=bool(params.get("suppress", False)),
        )
    )
    return {}


def _build_churn(
    scenario: ScenarioConfig, topology: Topology, rng: random.Random, params: Dict
) -> Dict:
    """Join churn: brand-new ASes attach to the running topology."""
    interval = scenario.propagation_interval_ms
    scenario.timeline.extend(
        growth_churn(
            topology,
            count=int(params.get("joins", 1)),
            rng=rng,
            start_ms=1.5 * interval,
            spacing_ms=float(params.get("spacing_ms", interval / 2.0)),
            attach_degree=int(params.get("attach_degree", 2)),
        )
    )
    return {}


SCENARIOS: Dict[str, ScenarioBuilder] = {
    "clean": _build_clean,
    "flap": _build_flap,
    "gray": _build_gray,
    "byzantine": _build_byzantine,
    "churn": _build_churn,
}

POLICIES: Dict[str, Callable[[int, bool], ScenarioConfig]] = {
    "don": lambda periods, verify: don_scenario(periods, verify_signatures=verify),
    "dob300": lambda periods, verify: dob_scenario(300.0, periods, verify_signatures=verify),
    "dob2000": lambda periods, verify: dob_scenario(2000.0, periods, verify_signatures=verify),
}


def scale_config(scale: str, seed: int) -> TopologyConfig:
    """Resolve a scale name to a topology config.

    ``tiny`` is sweep-local (fast enough for 5 × 2 grids and CI smoke
    runs); everything else defers to the benchmark harness.
    """
    if scale == "tiny":
        return TopologyConfig(
            num_ases=12,
            num_core=2,
            num_transit=4,
            core_parallel_links=1,
            transit_provider_count=2,
            stub_provider_count=2,
            peering_probability=0.1,
            max_pops_core=3,
            max_pops_transit=2,
            max_pops_stub=1,
            seed=seed,
        )
    return scale_topology_config(scale, seed)


# ----------------------------------------------------------------------
# per-cell execution
# ----------------------------------------------------------------------

def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_cell(
    grid: Dict,
    scenario_name: str,
    policy_name: str,
    scale_name: str,
    seed: int,
) -> Dict:
    """Run one grid cell; return its metrics dict."""
    grid_table = grid.get("grid", {})
    traffic = grid.get("traffic", {})
    periods = int(grid_table.get("periods", 3))
    verify = bool(grid_table.get("verify_signatures", True))
    params = grid.get("scenarios", {}).get(scenario_name, {})

    started = time.perf_counter()
    topology = generate_topology(scale_config(scale_name, seed))
    scenario = POLICIES[policy_name](periods, verify)
    scenario.loss_seed = seed
    options = SCENARIOS[scenario_name](scenario, topology, random.Random(seed + 1), params)
    scenario.timeline.validate(topology)

    simulation = BeaconingSimulation(topology, scenario)
    as_ids = sorted(topology.as_ids())
    simulation.watch_pair(as_ids[-1], as_ids[0])
    simulation.watch_pair(as_ids[len(as_ids) // 2], as_ids[0])

    matrix = gravity_matrix(
        topology,
        total_demand_mbps=float(traffic.get("demand_mbps", 2_000.0)),
        total_flows=int(traffic.get("flows", 200)),
        max_pairs=int(traffic.get("max_pairs", 12)),
        seed=seed,
    )
    rounds_per_period = int(traffic.get("rounds_per_period", 4))
    round_interval = scenario.propagation_interval_ms / rounds_per_period
    closed_loop = ClosedLoopDemand() if options.get("closed_loop") else None
    engine = TrafficEngine.for_simulation(
        simulation,
        matrix,
        round_interval_ms=round_interval,
        closed_loop=closed_loop,
    )
    # First round one interval in (paths exist after the first beaconing
    # wave); last round strictly before the final period boundary.
    engine.schedule_rounds(round_interval, periods * rounds_per_period - 1)

    result = simulation.run()
    wall_time_s = time.perf_counter() - started

    collector = result.collector
    records = result.convergence.records
    recoveries = [
        record.recovered_at_ms - record.event_time_ms
        for record in records
        if record.recovered_at_ms is not None
    ]
    revocation_counters = {
        "received": 0,
        "duplicates": 0,
        "originated": 0,
        "forwarded": 0,
        "rejected_invalid": 0,
        "rejected_stale": 0,
        "reoriginated": 0,
    }
    for service in result.services.values():
        state = service.revocations
        for counter in revocation_counters:
            revocation_counters[counter] += getattr(state, counter)

    convergence_trace = "\n".join(
        [result.convergence.trace_text(), *(record.trace_label() for record in records)]
    )
    samples = engine.collector.samples
    metrics: Dict = {
        "periods_run": result.periods_run,
        "final_time_ms": result.final_time_ms,
        "ases_final": len(result.services),
        "messages_sent": collector.total_sent,
        "messages_dropped": collector.total_dropped,
        "revocation_messages": collector.total_revocations,
        "control_messages": collector.control_messages_total(),
        "inbox_dropped": collector.inbox_dropped_total(),
        "gray_dropped": collector.gray_dropped_total(),
        "convergence_records": len(records),
        "convergence_unrecovered": sum(
            1 for record in records if record.recovered_at_ms is None
        ),
        "convergence_mean_recovery_ms": _mean(recoveries),
        "convergence_digest": hashlib.sha256(
            convergence_trace.encode("utf-8")
        ).hexdigest(),
        "traffic_rounds": len(samples),
        "traffic_mean_offered_mbps": _mean([s.offered_mbps for s in samples]),
        "traffic_mean_carried_mbps": _mean([s.carried_mbps for s in samples]),
        "traffic_blackholed_rounds": sum(1 for s in samples if s.blackholed_groups),
        "traffic_reroutes": len(engine.collector.reroutes),
        "traffic_backoffs": sum(
            1 for line in engine.collector.trace if " backoff " in line
        ),
        "traffic_trace_digest": engine.collector.trace_digest(),
        "wall_time_s": round(wall_time_s, 3),
    }
    mean_ttr = engine.collector.mean_time_to_reroute_ms()
    if mean_ttr is not None:
        metrics["traffic_mean_time_to_reroute_ms"] = mean_ttr
    for counter, value in revocation_counters.items():
        metrics[f"revocations_{counter}"] = value
    return metrics


# ----------------------------------------------------------------------
# sweep driver
# ----------------------------------------------------------------------

def load_grid(path: str) -> Dict:
    """Parse and sanity-check one TOML grid file."""
    with open(path, "rb") as handle:
        grid = tomllib.load(handle)
    table = grid.get("grid")
    if not isinstance(table, dict):
        raise SystemExit(f"{path}: missing [grid] table")
    for key in ("name", "scenarios", "policies", "scales"):
        if key not in table:
            raise SystemExit(f"{path}: [grid] is missing {key!r}")
    for scenario in table["scenarios"]:
        if scenario not in SCENARIOS:
            raise SystemExit(
                f"{path}: unknown scenario {scenario!r}"
                f" (have: {', '.join(sorted(SCENARIOS))})"
            )
    for policy in table["policies"]:
        if policy not in POLICIES:
            raise SystemExit(
                f"{path}: unknown policy {policy!r}"
                f" (have: {', '.join(sorted(POLICIES))})"
            )
    return grid


def grid_cells(grid: Dict) -> List[Tuple[str, str, str]]:
    """Return the sorted (scenario, policy, scale) cell list of one grid."""
    table = grid["grid"]
    return sorted(
        (scenario, policy, scale)
        for scenario in table["scenarios"]
        for policy in table["policies"]
        for scale in table["scales"]
    )


def run_sweep(grid: Dict, out_path: str, quiet: bool = False) -> int:
    """Run every cell of ``grid``; return the number of records written."""
    table = grid["grid"]
    base_seed = int(table.get("seed", 7))
    cells = grid_cells(grid)
    logger = ResultLogger(out_path)
    for index, (scenario_name, policy_name, scale_name) in enumerate(cells):
        seed = base_seed + index
        if not quiet:
            print(
                f"[{index + 1}/{len(cells)}] {scenario_name} × {policy_name}"
                f" × {scale_name} (seed {seed}) ...",
                flush=True,
            )
        metrics = run_cell(grid, scenario_name, policy_name, scale_name, seed)
        logger.append(
            {
                "schema": SCHEMA_VERSION,
                "grid": table["name"],
                "scenario": scenario_name,
                "policy": policy_name,
                "scale": scale_name,
                "seed": seed,
                "metrics": metrics,
            }
        )
    if not quiet:
        print(f"wrote {logger.records_written} records to {out_path}")
    return logger.records_written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", required=True, help="TOML grid file to sweep")
    parser.add_argument(
        "--out",
        default=None,
        help="JSONL output path (default: results/<grid name>.jsonl)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    grid = load_grid(args.grid)
    out_path = args.out
    if out_path is None:
        out_path = os.path.join("results", f"{grid['grid']['name']}.jsonl")
    run_sweep(grid, out_path, quiet=args.quiet)
    return 0


if __name__ == "__main__":
    sys.exit(main())
