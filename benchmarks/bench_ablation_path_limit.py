"""Ablation — registration limit (paths per RAC, origin AS and interface group).

The paper fixes the per-RAC registration limit at 20 paths (§VIII-B), which
bounds both the path service's memory and the theoretical maximum TLF.
This ablation sweeps the limit and reports how the number of registered
paths and the achievable disjointness react, confirming that the limit is
the binding constraint for disjointness-oriented algorithms but not for
1SP.
"""

from __future__ import annotations

import pytest

from repro.analysis.disjointness_eval import evaluate_disjointness
from repro.analysis.reporting import format_table
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import (
    ScenarioConfig,
    five_shortest_paths_spec,
    heuristic_disjointness_spec,
    one_shortest_path_spec,
)
from repro.topology.generator import generate_topology

from conftest import bench_topology_config, simulation_periods

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow

LIMITS = (1, 5, 20)


def _scenario(limit: int, periods: int) -> ScenarioConfig:
    return ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(registration_limit=limit),
            five_shortest_paths_spec(registration_limit=limit),
            heuristic_disjointness_spec(registration_limit=limit),
        ),
        periods=periods,
        verify_signatures=False,
    )


@pytest.fixture(scope="module")
def sweep_results():
    periods = simulation_periods()
    config = bench_topology_config()
    results = {}
    for limit in LIMITS:
        results[limit] = BeaconingSimulation(
            generate_topology(config), _scenario(limit, periods)
        ).run()
    return results


def test_ablation_registration_limit_report(sweep_results, capsys):
    """Print registered-path counts and TLF as the limit grows."""
    rows = []
    tlf_by_limit = {}
    for limit, result in sweep_results.items():
        as_ids = result.topology.as_ids()
        probe = as_ids[-1]
        registered = len(result.service(probe).path_service.all_paths())
        pairs = [(as_ids[-1], as_ids[0]), (as_ids[-2], as_ids[1])]
        evaluation = evaluate_disjointness(result, tags=["hd"], as_pairs=pairs)
        tlf = sum(evaluation.tlf["hd"])
        tlf_by_limit[limit] = tlf
        rows.append([limit, registered, tlf])
    with capsys.disabled():
        print("\nAblation — registration limit vs. registered paths and HD disjointness")
        print(format_table(["limit", "registered paths @ probe AS", "sum TLF (HD)"], rows))

    # A larger limit can only help: registered paths and TLF are monotone.
    registered_counts = [row[1] for row in rows]
    assert registered_counts == sorted(registered_counts)
    assert tlf_by_limit[20] >= tlf_by_limit[1]


def test_ablation_limit_benchmark(benchmark):
    """Benchmark the limit-20 configuration (the paper's setting)."""
    config = bench_topology_config()

    def run():
        return BeaconingSimulation(
            generate_topology(config), _scenario(20, periods=2)
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.collector.total_sent > 0
