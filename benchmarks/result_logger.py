"""JSONL result logging for the experiment sweep harness.

One sweep (``run_experiments.py``) appends one JSON object per completed
grid cell to a ``.jsonl`` log — a line-oriented format that survives
partial sweeps (every finished cell is already on disk), diffs cleanly
and needs no library to parse.

Record schema (version 1)
-------------------------

Every line is a JSON object with at least the :data:`REQUIRED_FIELDS`:

``schema``
    Integer schema version (:data:`SCHEMA_VERSION`).
``grid``
    Name of the sweep grid the cell belongs to.
``scenario`` / ``policy`` / ``scale``
    The cell's coordinates in the sweep.
``seed``
    The cell's derived seed (base seed + cell index) — rerunning one
    cell standalone with this seed reproduces its metrics bit-for-bit.
``metrics``
    Flat string→number mapping of the cell's measurements (convergence,
    control-plane counters, traffic summaries, wall time).

Optional fields: ``meta`` (harness/environment stamp, first record
only), anything a future schema version adds.  Consumers must ignore
unknown fields — that is what lets the schema grow without breaking
``plot_results.py`` against old logs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List

SCHEMA_VERSION = 1

#: Keys every result record must carry (see module docstring).
REQUIRED_FIELDS = ("schema", "grid", "scenario", "policy", "scale", "seed", "metrics")


class ResultLoggerError(ValueError):
    """A record failed validation or a log line failed to parse."""


def validate_record(record: Dict) -> None:
    """Raise :class:`ResultLoggerError` unless ``record`` matches the schema."""
    if not isinstance(record, dict):
        raise ResultLoggerError(f"result record must be a dict, got {type(record).__name__}")
    for key in REQUIRED_FIELDS:
        if key not in record:
            raise ResultLoggerError(f"result record is missing required field {key!r}")
    if not isinstance(record["metrics"], dict):
        raise ResultLoggerError("result record field 'metrics' must be a dict")


class ResultLogger:
    """Appends validated result records to a JSONL file, one per line.

    Args:
        path: Log file to write.  Parent directories are created; an
            existing file is truncated unless ``append=True`` (resuming a
            partial sweep).
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.records_written = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if not append:
            with open(path, "w", encoding="utf-8"):
                pass  # truncate

    def append(self, record: Dict) -> None:
        """Validate and append one record (flushed immediately)."""
        validate_record(record)
        # sort_keys keeps logs diffable; compact separators keep them small.
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self.records_written += 1


def iter_results(path: str) -> Iterator[Dict]:
    """Yield the validated records of one JSONL result log.

    Blank lines are skipped; a malformed line raises
    :class:`ResultLoggerError` naming its line number.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ResultLoggerError(
                    f"{path}:{line_number}: malformed JSON ({error})"
                ) from None
            validate_record(record)
            yield record


def load_results(path: str) -> List[Dict]:
    """Return every record of one JSONL result log as a list."""
    return list(iter_results(path))
