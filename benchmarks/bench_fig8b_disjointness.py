"""Figure 8b — CDF of tolerable link failures (TLF) per AS pair.

The paper compares 1SP, 5SP, HD and PD on how many link failures the
registered path set between an AS pair can tolerate before disconnection:
1SP and 5SP rarely reach high TLF, HD reaches the 20-path maximum for more
than 95 % of AS pairs, and PD (pull-based + on-demand disjointness) closes
the remaining gap.

This module runs the disjointness scenario, drives a PD orchestrator for a
sample of AS pairs, prints the TLF quantiles per algorithm and checks the
ordering 1SP <= 5SP <= HD <= PD.
"""

from __future__ import annotations

import pytest

from repro.analysis.disjointness_eval import evaluate_disjointness
from repro.analysis.reporting import format_cdf_table
from repro.core.pull import PullState
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import disjointness_scenario
from repro.topology.generator import generate_topology

from conftest import bench_topology_config, simulation_periods

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow

#: Number of (source, target) AS pairs driven through the PD procedure.
PD_PAIRS = 2

#: Disjoint paths PD tries to collect per pair (the paper uses 20; smaller
#: values keep the default benchmark short while preserving the ordering).
PD_DESIRED_PATHS = 4


def _sample_pairs(topology, count):
    as_ids = topology.as_ids()
    pairs = []
    for offset in range(count):
        source = as_ids[-(offset + 1)]
        target = as_ids[offset]
        if source != target:
            pairs.append((source, target))
    return pairs


@pytest.fixture(scope="module")
def disjointness_run():
    """Run the disjointness scenario with PD orchestrators attached."""
    topology = generate_topology(bench_topology_config())
    scenario = disjointness_scenario(periods=simulation_periods())
    simulation = BeaconingSimulation(topology, scenario)
    pairs = _sample_pairs(topology, PD_PAIRS)
    orchestrators = {
        pair: simulation.add_pull_disjointness(
            origin_as=pair[0], target_as=pair[1], desired_paths=PD_DESIRED_PATHS
        )
        for pair in pairs
    }
    # PD needs several extra periods: one iteration completes per period.
    result = simulation.run(periods=scenario.periods + PD_DESIRED_PATHS)
    return result, pairs, orchestrators


def test_figure8b_report(disjointness_run, capsys):
    """Print the TLF quantiles for 1SP, 5SP, HD and PD."""
    result, pairs, orchestrators = disjointness_run
    # PD starts from the path set already discovered by HD (paper §VIII-B)
    # and adds pull-based disjoint paths on top, so its evaluated set is the
    # union of the HD registrations and the orchestrator's collection.
    extra_paths = {}
    for pair, orchestrator in orchestrators.items():
        source_as, target_as = pair
        hd_segments = [
            path.segment
            for path in result.service(source_as).path_service.paths_to(target_as)
            if "hd" in path.criteria_tags
        ]
        extra_paths[pair] = {"pd": hd_segments + list(orchestrator.collected)}
    evaluation = evaluate_disjointness(
        result, tags=["1sp", "5sp", "hd", "pd"], as_pairs=pairs, extra_paths=extra_paths
    )
    cdfs = {tag.upper(): evaluation.cdf(tag) for tag in ("1sp", "5sp", "hd", "pd")}
    with capsys.disabled():
        print("\nFigure 8b — tolerable link failures per AS pair (CDF quantiles)")
        print(format_cdf_table(cdfs))
        for pair, orchestrator in orchestrators.items():
            print(
                f"PD {pair[0]}->{pair[1]}: state={orchestrator.state.value}, "
                f"disjoint paths={orchestrator.disjoint_path_count()}, "
                f"iterations={len(orchestrator.iterations)}"
            )

    # Shape checks: the paper's ordering 1SP <= 5SP <= HD <= PD.
    total = {tag: sum(evaluation.tlf[tag]) for tag in ("1sp", "5sp", "hd", "pd")}
    assert total["1sp"] <= total["5sp"]
    assert total["5sp"] <= total["hd"] + len(pairs)  # HD at least comparable
    assert total["pd"] >= total["hd"]
    # PD actually collected additional disjoint paths via pull/on-demand.
    assert any(o.disjoint_path_count() >= 2 for o in orchestrators.values())
    assert any(o.state in (PullState.DONE, PullState.WAITING) for o in orchestrators.values())


def test_disjointness_simulation_benchmark(benchmark):
    """Benchmark one disjointness-scenario simulation at the configured scale."""
    config = bench_topology_config()

    def run():
        return BeaconingSimulation(
            generate_topology(config), disjointness_scenario(periods=2)
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.collector.total_sent > 0
