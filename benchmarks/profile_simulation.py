#!/usr/bin/env python
"""Phase-attributed profile of one end-to-end beaconing simulation.

Runs the ``beaconing_e2e`` workload (signature verification on) with the
full observatory enabled — profiling spans, the metrics registry bound to
the live simulation, and the per-period time-series sampler — then:

* prints the **time-attribution table**: exclusive wall seconds per phase
  (crypto.sign/verify, fabric.send/drain, scheduler.dispatch,
  db.invalidate, sim.originate/rac_round, ...), which by construction
  partition the measured wall clock;
* writes ``telemetry.jsonl`` (``result_logger`` schema, one record per
  beaconing period), ``metrics.prom`` (Prometheus exposition text of the
  final registry snapshot), ``timeline.svg`` (per-period PCB/s, backlog
  and queue-delay lines through ``plot_results.render_timeline``) and
  ``profile.json`` (phases + coverage + meta) into ``--out-dir``;
* with ``--min-coverage PCT`` exits non-zero unless the attributed
  exclusive times cover at least PCT percent of the measured wall —
  the CI gate proving the span set still explains where time goes.

Usage::

    PYTHONPATH=src python benchmarks/profile_simulation.py \\
        --scale medium --out-dir results/profile --min-coverage 90
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

if __package__ is None or __package__ == "":  # direct script invocation
    _HERE = os.path.dirname(os.path.abspath(__file__))
    _SRC = os.path.join(os.path.dirname(_HERE), "src")
    for _path in (_SRC, _HERE):
        if _path not in sys.path:
            sys.path.insert(0, _path)

from plot_results import render_timeline
from result_logger import ResultLogger
from run_benchmarks import git_revision, peak_rss_mb, scale_topology_config

from repro.crypto.hashing import reset_perf_counters
from repro.obs import REGISTRY, TelemetrySampler, bind_simulation, prometheus_text, spans
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import don_scenario
from repro.topology.generator import generate_topology

#: Sampled metrics drawn in the timeline plot (all per-period).
TIMELINE_METRICS = (
    "pcbs_per_s",
    "crypto_ops_per_s",
    "inbox_backlog_total",
    "queue_delay_p99_ms",
)


def profile(scale: str, periods: int, seed: int) -> dict:
    """Run one instrumented e2e simulation; return the profile summary."""
    topology = generate_topology(scale_topology_config(scale, seed=seed))
    scenario = don_scenario(periods=periods, verify_signatures=True)
    simulation = BeaconingSimulation(topology, scenario)

    REGISTRY.clear()
    bind_simulation(simulation)
    sampler = TelemetrySampler(simulation).attach()
    reset_perf_counters()
    spans.reset()
    spans.enable()
    start = time.perf_counter()
    try:
        result = simulation.run()
    finally:
        spans.disable()
    wall_s = time.perf_counter() - start

    return {
        "wall_s": wall_s,
        "coverage": spans.coverage(wall_s),
        "phases": spans.snapshot(),
        "pcbs_sent": result.collector.total_sent,
        "beacons_per_s": result.collector.total_sent / wall_s if wall_s > 0 else 0.0,
        "periods": result.periods_run,
        "ases": len(result.services),
        "sampler": sampler,
    }


def write_artifacts(summary: dict, out_dir: str, scale: str, seed: int) -> list:
    """Write telemetry.jsonl / metrics.prom / timeline.svg / profile.json."""
    os.makedirs(out_dir, exist_ok=True)
    written = []
    sampler: TelemetrySampler = summary["sampler"]

    jsonl_path = os.path.join(out_dir, "telemetry.jsonl")
    logger = ResultLogger(jsonl_path)
    for record in sampler.to_records(
        grid="profile", scenario="beaconing_e2e", policy="telemetry",
        scale=scale, seed=seed,
    ):
        logger.append(record)
    written.append(jsonl_path)

    prom_path = os.path.join(out_dir, "metrics.prom")
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(REGISTRY))
    written.append(prom_path)

    svg_path = os.path.join(out_dir, "timeline.svg")
    series = {
        metric: sampler.timeline(metric)
        for metric in TIMELINE_METRICS
        if any(value for _t, value in sampler.timeline(metric))
        or metric == "pcbs_per_s"
    }
    render_timeline(
        series, svg_path,
        title=f"beaconing_e2e telemetry ({scale}, {summary['periods']} periods)",
    )
    written.append(svg_path)

    profile_path = os.path.join(out_dir, "profile.json")
    payload = {
        "meta": {
            "harness": "profile_simulation.py v1 (PR 8)",
            "scale": scale,
            "seed": seed,
            "python": platform.python_version(),
            "unix_time": time.time(),
            "peak_rss_mb": peak_rss_mb(),
            **git_revision(),
        },
        "wall_s": summary["wall_s"],
        "coverage": summary["coverage"],
        "phases": summary["phases"],
        "pcbs_sent": summary["pcbs_sent"],
        "beacons_per_s": summary["beacons_per_s"],
        "periods": summary["periods"],
        "ases": summary["ases"],
    }
    with open(profile_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    written.append(profile_path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="medium",
        choices=("small", "medium", "paper"),
        help="simulation scale (default: medium)",
    )
    parser.add_argument(
        "--periods", type=int, default=3, help="beaconing periods to run (default: 3)"
    )
    parser.add_argument("--seed", type=int, default=7, help="topology seed (default: 7)")
    parser.add_argument(
        "--out-dir",
        default="results/profile",
        help="artifact directory (default: results/profile)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero unless the attribution table covers at least "
        "PCT percent of the measured wall time",
    )
    args = parser.parse_args(argv)

    print(
        f"[profile] beaconing_e2e scale={args.scale} periods={args.periods} "
        f"seed={args.seed}",
        flush=True,
    )
    summary = profile(args.scale, args.periods, args.seed)
    print(spans.attribution_table(summary["wall_s"], stats=summary["phases"]), flush=True)
    written = write_artifacts(summary, args.out_dir, args.scale, args.seed)
    for path in written:
        print(f"[profile] wrote {path}")

    if args.min_coverage is not None:
        coverage_pct = 100.0 * summary["coverage"]
        if coverage_pct < args.min_coverage:
            print(
                f"[profile] FAIL: attribution covers {coverage_pct:.1f}% of wall "
                f"time, below the required {args.min_coverage:.1f}%",
                flush=True,
            )
            return 1
        print(
            f"[profile] coverage {coverage_pct:.1f}% >= {args.min_coverage:.1f}% ok",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
