"""Figure 8c — CDF of PCBs sent per interface per beaconing period.

The paper reports the message-complexity distribution of every algorithm
configuration: the uniform-propagation algorithms (1SP, 5SP, DON, DOB2000,
DOB300) share a similar pattern with 5SP highest and 1SP lowest, the DOB
variants grow with the number of interface groups, and HD/PD show markedly
lower overhead in most periods because previously-propagated beacons are
not resent.

This module runs all configurations, prints the per-configuration CDF
quantiles and totals, and checks those orderings.
"""

from __future__ import annotations

import pytest

from repro.analysis.overhead_eval import evaluate_overhead
from repro.analysis.reporting import format_cdf_table, format_table
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    disjointness_scenario,
    dob_scenario,
    don_scenario,
    five_shortest_paths_spec,
    heuristic_disjointness_spec,
    one_shortest_path_spec,
)
from repro.topology.generator import generate_topology

from conftest import bench_topology_config, simulation_periods

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow


def _single_algorithm_scenario(spec: AlgorithmSpec, periods: int) -> ScenarioConfig:
    return ScenarioConfig(algorithms=(spec,), periods=periods, verify_signatures=False)


@pytest.fixture(scope="module")
def overhead_evaluation():
    """Run one simulation per configuration and collect overhead samples."""
    periods = simulation_periods()
    config = bench_topology_config()

    def run(scenario):
        return BeaconingSimulation(generate_topology(config), scenario).run()

    results = [
        ("1sp", run(_single_algorithm_scenario(one_shortest_path_spec(), periods))),
        ("5sp", run(_single_algorithm_scenario(five_shortest_paths_spec(), periods))),
        ("hd", run(_single_algorithm_scenario(heuristic_disjointness_spec(), periods))),
        ("don", run(don_scenario(periods=periods))),
        ("dob2000", run(dob_scenario(radius_km=2000.0, periods=periods))),
        ("dob300", run(dob_scenario(radius_km=300.0, periods=periods))),
        ("full-suite", run(disjointness_scenario(periods=periods))),
    ]
    return evaluate_overhead(results)


def test_figure8c_report(overhead_evaluation, capsys):
    """Print the PCBs-per-interface-per-period CDFs and totals."""
    labels = overhead_evaluation.labels()
    cdfs = {label: overhead_evaluation.cdf(label) for label in labels}
    totals = [
        [label, overhead_evaluation.total(label), overhead_evaluation.mean_per_interface_period(label)]
        for label in labels
    ]
    with capsys.disabled():
        print("\nFigure 8c — PCBs per interface per period (CDF quantiles)")
        print(format_cdf_table(cdfs))
        print()
        print(format_table(["configuration", "total PCBs", "mean per interface-period"], totals))

    # Shape checks mirroring §VIII-C.
    # (i) 5SP sends more than 1SP (it propagates five paths per origin).
    assert overhead_evaluation.total("5sp") > overhead_evaluation.total("1sp")
    # (ii) HD's total overhead stays below 5SP's uniform propagation.
    assert overhead_evaluation.total("hd") < overhead_evaluation.total("5sp")
    # (iii) finer interface groups increase overhead: DOB300 >= DOB2000 >= DON-scenario.
    assert overhead_evaluation.total("dob300") >= overhead_evaluation.total("dob2000")
    # (iv) the DON bundle (1SP+5SP+DON) naturally exceeds single-algorithm 1SP.
    assert overhead_evaluation.total("don") > overhead_evaluation.total("1sp")


def test_overhead_simulation_benchmark(benchmark):
    """Benchmark the single-RAC 1SP simulation (the lightest configuration)."""
    config = bench_topology_config()

    def run():
        return BeaconingSimulation(
            generate_topology(config),
            _single_algorithm_scenario(one_shortest_path_spec(), periods=2),
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.collector.total_sent > 0
