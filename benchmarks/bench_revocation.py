"""Revocation-flood benchmark — control-plane withdrawal as message traffic.

Since PR 4 the post-failure revocation flood is real hop-by-hop traffic
(:mod:`repro.core.revocation`): every failed link makes its endpoint ASes
originate signed revocation messages that every other AS deduplicates,
applies (withdrawing crossing beacons/paths through the link-indexed
databases) and re-forwards.  This benchmark runs the canonical flood
workload (``run_benchmarks.run_revocation_flood``) at the conftest scale:
after one warm-up beaconing period populates the per-AS databases, a
batch of link failures is injected back-to-back and the scheduler drains
the resulting floods; the headline number is revocation messages
processed per wall-clock second (target: >= 100k/s at medium scale).

Like the other paper-scale simulations this is excluded from tier-1; run
it with ``-m slow`` (``IREC_BENCH_SCALE`` selects the topology size).
"""

from __future__ import annotations

import pytest

from repro.topology.generator import generate_topology

from conftest import bench_topology_config
from run_benchmarks import run_revocation_flood

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow


def test_revocation_flood_report(capsys):
    """Run the flood workload and print the throughput report."""
    report = run_revocation_flood(generate_topology(bench_topology_config()))
    with capsys.disabled():
        print(
            f"\nRevocation flood — {report['failures']} link failures over "
            f"{report['ases']} ASes: {report['messages']} messages "
            f"({report['messages_dropped']} lost in flight, "
            f"{report['duplicates']} deduplicated), "
            f"{report['withdrawals_applied']} withdrawals applied, "
            f"{report['messages_per_s']:,.0f} messages/s"
        )
    # Every failure produced a flood, dedup kept it finite, and the
    # subsystem sustained a meaningful message rate even at small scale.
    assert report["messages"] > report["failures"]
    assert report["withdrawals_applied"] > 0
    assert report["messages_per_s"] > 10_000
