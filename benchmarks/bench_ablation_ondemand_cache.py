"""Ablation — on-demand algorithm caching.

Paper §V-C: "by caching the executable, the RAC only needs to do this once
for all PCBs with the same origin AS and algorithm ID."  This ablation
compares on-demand RAC processing with the payload/algorithm cache enabled
and disabled, measuring the number of remote fetches and the processing
latency over repeated rounds, and additionally quantifies the benefit of
the egress database's hash-based deduplication.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import encode_builtin_payload
from repro.analysis.reporting import format_table
from repro.analysis.workloads import BENCHMARK_LOCAL_AS, synthetic_stored_beacons
from repro.core.algorithm_registry import AlgorithmFetcher
from repro.core.databases import EgressDatabase, IngressDatabase
from repro.core.extensions import ExtensionSet
from repro.core.ondemand import OnDemandAlgorithmManager
from repro.core.rac import RACConfig, RoutingAlgorithmContainer
from repro.crypto.hashing import algorithm_hash

ROUNDS = 5
CANDIDATES = 128


def _build_rac(cache_enabled: bool):
    payload = encode_builtin_payload("20sp")
    fetch_counter = {"count": 0}

    def transport(_origin_as, _algorithm_id):
        fetch_counter["count"] += 1
        return payload

    manager = OnDemandAlgorithmManager(
        fetcher=AlgorithmFetcher(transport=transport, cache_enabled=cache_enabled),
        cache_enabled=cache_enabled,
    )
    rac = RoutingAlgorithmContainer(
        config=RACConfig(rac_id="ablation", on_demand=True),
        on_demand_manager=manager,
    )
    return rac, payload, fetch_counter


def _database(payload):
    extensions = ExtensionSet().with_algorithm("legacy-20sp", algorithm_hash(payload))
    database = IngressDatabase()
    for stored in synthetic_stored_beacons(CANDIDATES, extensions=extensions):
        database.insert(stored)
    return database


def _run_rounds(rac, database, rounds=ROUNDS):
    total_ms = 0.0
    for _ in range(rounds):
        _selections, report = rac.process(
            database=database,
            egress_interfaces=(2,),
            intra_latency_ms=lambda a, b: 0.0,
            local_as=BENCHMARK_LOCAL_AS,
        )
        total_ms += report.total_ms
    return total_ms


def test_ablation_cache_report(capsys):
    """Compare fetch counts and latency with and without the cache."""
    rows = []
    fetches = {}
    for cache_enabled in (True, False):
        rac, payload, counter = _build_rac(cache_enabled)
        database = _database(payload)
        total_ms = _run_rounds(rac, database)
        fetches[cache_enabled] = counter["count"]
        rows.append(["enabled" if cache_enabled else "disabled", counter["count"], total_ms])
    with capsys.disabled():
        print("\nAblation — on-demand algorithm cache")
        print(format_table(["cache", "remote fetches", f"total latency over {ROUNDS} rounds (ms)"], rows))

    assert fetches[True] == 1
    assert fetches[False] == ROUNDS


@pytest.mark.parametrize("cache_enabled", (True, False))
def test_ablation_cache_benchmark(benchmark, cache_enabled):
    """Benchmark repeated on-demand rounds with the cache on and off."""
    rac, payload, _counter = _build_rac(cache_enabled)
    database = _database(payload)
    total_ms = benchmark(_run_rounds, rac, database, 2)
    assert total_ms > 0.0


def test_egress_dedup_suppresses_repeat_sends():
    """Quantify hash-based egress deduplication across overlapping RAC outputs."""
    database = EgressDatabase()
    interfaces = list(range(1, 9))
    first = database.filter_new_interfaces("beacon", interfaces, expires_at_ms=1.0)
    # A second RAC selects the same beacon for an overlapping interface set.
    second = database.filter_new_interfaces("beacon", interfaces[:4] + [9], expires_at_ms=1.0)
    assert len(first) == 8
    assert second == [9]
