"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
paper's simulations run on a 500-AS topology with >100k links — hours of
work for a pure-Python simulator — the benchmarks default to a scaled-down
topology that preserves the structural properties (tiered, geo-embedded,
multi-PoP) and therefore the *shape* of the results.  Set the environment
variable ``IREC_BENCH_SCALE=paper`` to run the full 500-AS configuration,
or ``IREC_BENCH_SCALE=medium`` for an intermediate size.
"""

from __future__ import annotations

import os

import pytest

from repro.topology.generator import TopologyConfig, generate_topology, paper_scale_config


def bench_scale() -> str:
    """Return the configured benchmark scale (small / medium / paper)."""
    return os.environ.get("IREC_BENCH_SCALE", "small").lower()


def bench_topology_config(seed: int = 7) -> TopologyConfig:
    """Return the topology configuration for the configured scale."""
    scale = bench_scale()
    if scale == "paper":
        return paper_scale_config(seed=seed)
    if scale == "medium":
        return TopologyConfig(
            num_ases=120,
            num_core=6,
            num_transit=30,
            core_parallel_links=2,
            transit_provider_count=3,
            stub_provider_count=2,
            peering_probability=0.1,
            max_pops_core=6,
            max_pops_transit=3,
            max_pops_stub=2,
            seed=seed,
        )
    return TopologyConfig(
        num_ases=30,
        num_core=4,
        num_transit=9,
        core_parallel_links=2,
        transit_provider_count=2,
        stub_provider_count=2,
        peering_probability=0.15,
        max_pops_core=5,
        max_pops_transit=3,
        max_pops_stub=1,
        seed=seed,
    )


def simulation_periods() -> int:
    """Return the number of beaconing periods simulated per configuration."""
    return {"paper": 6, "medium": 4}.get(bench_scale(), 3)


@pytest.fixture(scope="session")
def bench_topology():
    """The benchmark topology (shared across benchmark modules)."""
    return generate_topology(bench_topology_config())
