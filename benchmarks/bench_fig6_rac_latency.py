"""Figure 6 — PCB processing latency: IREC on-demand RAC vs. legacy control service.

The paper reports, for candidate sets Φ from 1 to 4096 PCBs, the latency of
(1) sandbox (Wasmtime) setup, (2) gRPC calls and (3) algorithm execution in
an on-demand RAC, compared with (4) the legacy SCION control service running
the same 20-shortest-paths selection.  The headline observation: for
|Φ| = 64 IREC is two to three orders of magnitude slower than the legacy
service, but both are negligible compared to the beaconing interval; at
large |Φ| execution dominates and the two converge.

This module reproduces the series and prints the same rows (one per |Φ|)
with the per-stage decomposition and the IREC/legacy ratio.
"""

from __future__ import annotations

import pytest

from repro.analysis.microbench import (
    latency_series,
    measure_legacy_latency,
    measure_rac_latency,
)
from repro.analysis.reporting import format_table

#: Candidate-set sizes of the figure; trimmed relative to the paper's 4096
#: maximum to keep the default benchmark run short (raise freely).
CANDIDATE_SET_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Sizes exercised through pytest-benchmark for statistically robust timing.
BENCHMARKED_SIZES = (16, 64, 256)


@pytest.mark.parametrize("size", BENCHMARKED_SIZES)
def test_rac_processing_latency(benchmark, size):
    """Benchmark one on-demand-RAC round over |Φ| = ``size`` candidates."""
    result = benchmark(measure_rac_latency, size)
    assert result.execution_ms > 0.0


@pytest.mark.parametrize("size", BENCHMARKED_SIZES)
def test_legacy_processing_latency(benchmark, size):
    """Benchmark the legacy control service over |Φ| = ``size`` candidates."""
    elapsed_ms = benchmark(measure_legacy_latency, size)
    assert elapsed_ms > 0.0


def test_figure6_series_report(capsys):
    """Regenerate and print the full Figure-6 series."""
    series = latency_series(CANDIDATE_SET_SIZES)
    rows = []
    for point in series:
        rows.append(
            [
                point.candidate_set_size,
                point.setup_ms,
                point.ipc_ms,
                point.execution_ms,
                point.irec_total_ms,
                point.legacy_ms,
                point.slowdown_vs_legacy,
            ]
        )
    table = format_table(
        ["|Phi|", "setup_ms", "ipc_ms", "exec_ms", "irec_total_ms", "legacy_ms", "irec/legacy"],
        rows,
    )
    with capsys.disabled():
        print("\nFigure 6 — RAC processing latency vs. legacy control service")
        print(table)

    # Shape checks mirroring the paper's observations.
    by_size = {point.candidate_set_size: point for point in series}
    # (i) IREC is markedly slower than legacy at |Φ| = 64 ...
    assert by_size[64].slowdown_vs_legacy > 5.0
    # (ii) ... but still negligible versus the 10-minute propagation interval.
    assert by_size[64].irec_total_ms < 10_000.0
    # (iii) execution time grows with |Φ| and eventually dominates setup.
    assert by_size[512].execution_ms > by_size[16].execution_ms
    assert by_size[512].execution_ms > by_size[512].setup_ms
    # (iv) the gap narrows as |Φ| grows.
    assert by_size[512].slowdown_vs_legacy < by_size[16].slowdown_vs_legacy
