"""Figure 8a — CDF of minimum PoP-pair propagation delay relative to 1SP.

The paper simulates 1SP, 5SP, DON, DOB2000 and DOB300 on the 500-AS CAIDA
topology and reports the distribution of the minimum achievable propagation
delay between PoP pairs, normalised by 1SP.  The qualitative result: every
multi-path / delay-aware algorithm beats 1SP for most PoP pairs, the DO
variants beat 5SP, and DOB (interface groups + extended paths) beats DON,
with the finer 300 km grouping best of all.

This module runs the same algorithm configurations on the benchmark
topology, prints the per-algorithm quantiles of the relative-delay CDF and
checks the ordering of the medians.
"""

from __future__ import annotations

import pytest

from repro.analysis.delay_eval import evaluate_delay
from repro.analysis.reporting import format_cdf_table
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import dob_scenario, don_scenario
from repro.topology.generator import generate_topology

from conftest import bench_topology_config, simulation_periods

#: Full multi-period simulations; excluded from the default tier-1 run.
pytestmark = pytest.mark.slow


def _evaluation_pairs(topology, limit=40):
    """A deterministic sample of (source, destination) AS pairs."""
    as_ids = topology.as_ids()
    pairs = []
    for offset, source in enumerate(as_ids):
        destination = as_ids[(offset * 7 + 3) % len(as_ids)]
        if source != destination:
            pairs.append((source, destination))
        if len(pairs) >= limit:
            break
    return pairs


def _run_delay_experiment():
    periods = simulation_periods()
    config = bench_topology_config()

    don_result = BeaconingSimulation(
        generate_topology(config), don_scenario(periods=periods)
    ).run()
    dob300_result = BeaconingSimulation(
        generate_topology(config), dob_scenario(radius_km=300.0, periods=periods)
    ).run()
    dob2000_result = BeaconingSimulation(
        generate_topology(config), dob_scenario(radius_km=2000.0, periods=periods)
    ).run()

    pairs = _evaluation_pairs(don_result.topology)
    don_eval = evaluate_delay(don_result, tags=["5sp", "don"], baseline_tag="1sp", as_pairs=pairs)
    dob300_eval = evaluate_delay(dob300_result, tags=["dob300"], baseline_tag="1sp", as_pairs=pairs)
    dob2000_eval = evaluate_delay(
        dob2000_result, tags=["dob2000"], baseline_tag="1sp", as_pairs=pairs
    )
    return don_eval, dob300_eval, dob2000_eval


@pytest.fixture(scope="module")
def delay_evaluations():
    return _run_delay_experiment()


def test_figure8a_report(delay_evaluations, capsys):
    """Print the relative-delay CDF quantiles for every algorithm."""
    don_eval, dob300_eval, dob2000_eval = delay_evaluations
    cdfs = {
        "5SP / 1SP": don_eval.cdf_relative_to_baseline("5sp"),
        "DON / 1SP": don_eval.cdf_relative_to_baseline("don"),
        "DOB300 / 1SP": dob300_eval.cdf_relative_to_baseline("dob300"),
        "DOB2000 / 1SP": dob2000_eval.cdf_relative_to_baseline("dob2000"),
    }
    with capsys.disabled():
        print("\nFigure 8a — PoP-pair delay relative to 1SP (CDF quantiles)")
        print(format_cdf_table(cdfs))

    # Shape checks: every algorithm is at least as good as 1SP at the median,
    # and the delay-aware algorithms beat the hop-count-based 5SP.
    median_5sp = don_eval.median_ratio("5sp")
    median_don = don_eval.median_ratio("don")
    median_dob300 = dob300_eval.median_ratio("dob300")
    median_dob2000 = dob2000_eval.median_ratio("dob2000")
    assert median_5sp is not None and median_5sp <= 1.0 + 1e-9
    assert median_don is not None and median_don <= median_5sp + 1e-9
    assert median_dob300 is not None and median_dob300 <= median_don + 0.05
    assert median_dob2000 is not None and median_dob2000 <= 1.0 + 1e-9


def test_delay_simulation_benchmark(benchmark):
    """Benchmark one DON simulation run at the configured scale."""
    config = bench_topology_config()

    def run():
        return BeaconingSimulation(
            generate_topology(config), don_scenario(periods=2)
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.collector.total_sent > 0
