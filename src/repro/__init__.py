"""IREC — Inter-Domain Routing with Extensible Criteria, reproduced in Python.

This package is a full reproduction of the IREC architecture
(Tabaeiaghdaei et al.): a control plane for path-aware networks in which
every AS runs multiple routing algorithms in parallel, origin ASes can ship
new algorithms inside routing messages (on-demand routing), traffic sources
can request paths towards a target (pull-based routing), and optimization
granularity is tuned with interface groups and extended-path optimization.

The most important entry points:

* :mod:`repro.topology` — topology substrate (generator, geo, PoPs),
* :mod:`repro.core` — PCBs, criteria, gateways, RACs, control service,
* :mod:`repro.algorithms` — the routing algorithms executed inside RACs,
* :mod:`repro.scion` — the legacy SCION control-service baseline,
* :mod:`repro.simulation` — the discrete-event beaconing simulator,
* :mod:`repro.dataplane` — the stateless data plane and end-host selection,
* :mod:`repro.analysis` — figure/table reproduction helpers.

See README.md for a quickstart and DESIGN.md for the complete system map.
"""

from repro.core.beacon import Beacon, BeaconBuilder
from repro.core.control_service import ControlServiceConfig, IrecControlService
from repro.core.criteria import CriteriaSet, Criterion
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import ScenarioConfig
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.graph import Topology

__version__ = "1.0.0"

__all__ = [
    "Beacon",
    "BeaconBuilder",
    "BeaconingSimulation",
    "ControlServiceConfig",
    "CriteriaSet",
    "Criterion",
    "IrecControlService",
    "ScenarioConfig",
    "Topology",
    "TopologyConfig",
    "generate_topology",
    "__version__",
]
