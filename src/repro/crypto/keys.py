"""Per-AS key material.

Every AS owns a symmetric signing key derived deterministically from the AS
identifier and an optional deployment secret.  A :class:`KeyStore` plays the
role of the control-plane PKI: it hands out the *verification* material for
any AS, which in this simulation equals the signing key (see the package
docstring for why an HMAC-based simulation is sufficient for the
reproduction).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator

from repro.crypto.hashing import count_crypto_op
from repro.obs import spans as _spans


@dataclass(frozen=True)
class ASKeyPair:
    """Signing material owned by one AS.

    Attributes:
        as_id: Identifier of the owning AS.
        secret: Symmetric key bytes used both to sign and to verify.
    """

    as_id: int
    secret: bytes

    def sign(self, message: bytes) -> bytes:
        """Return the signature over ``message``."""
        count_crypto_op("signature_sign")
        if _spans.ENABLED:
            start = perf_counter()
            signature = hmac.new(self.secret, message, hashlib.sha256).digest()
            _spans.add("crypto.sign", perf_counter() - start)
            return signature
        return hmac.new(self.secret, message, hashlib.sha256).digest()

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return ``True`` if ``signature`` is valid for ``message``."""
        count_crypto_op("signature_verify")
        if _spans.ENABLED:
            start = perf_counter()
            expected = hmac.new(self.secret, message, hashlib.sha256).digest()
            valid = hmac.compare_digest(expected, signature)
            _spans.add("crypto.verify", perf_counter() - start)
            return valid
        expected = hmac.new(self.secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)


def derive_key(as_id: int, deployment_secret: bytes = b"irec-repro") -> ASKeyPair:
    """Derive the deterministic key pair of an AS.

    Keys are derived from the AS identifier and a deployment-wide secret so
    that simulations are reproducible without persisting key material.
    """
    material = hashlib.sha256(
        deployment_secret + b"|" + str(int(as_id)).encode("ascii")
    ).digest()
    return ASKeyPair(as_id=int(as_id), secret=material)


@dataclass
class KeyStore:
    """Key directory standing in for the SCION control-plane PKI.

    The store lazily derives keys for any AS that is queried, which keeps
    large simulated topologies cheap: no setup pass over all ASes is needed.

    Attributes:
        deployment_secret: Secret mixed into every derived key.  Two stores
            created with different secrets produce mutually unverifiable
            signatures, which the tests use to model a foreign attacker.
    """

    deployment_secret: bytes = b"irec-repro"
    _keys: Dict[int, ASKeyPair] = field(default_factory=dict)

    def key_for(self, as_id: int) -> ASKeyPair:
        """Return (and cache) the key pair of ``as_id``."""
        as_id = int(as_id)
        key = self._keys.get(as_id)
        if key is None:
            key = derive_key(as_id, self.deployment_secret)
            self._keys[as_id] = key
        return key

    def __contains__(self, as_id: int) -> bool:
        return True  # every AS can be resolved by derivation

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)
