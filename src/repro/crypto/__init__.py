"""Control-plane cryptography substrate.

SCION protects path-construction beacons with per-AS signatures anchored in
a control-plane PKI, and IREC additionally relies on a collision-resistant
hash to bind on-demand algorithm payloads to the PCBs that announce them.
This package provides a self-contained simulation of those primitives:

* :mod:`repro.crypto.keys` — per-AS key material and a key store,
* :mod:`repro.crypto.signer` — signing and verification of byte strings,
* :mod:`repro.crypto.hashing` — hashing of algorithm payloads and PCBs.

The signatures are HMAC-based rather than asymmetric.  The properties the
rest of the system relies on — unforgeability without the key, detection of
any tampering with signed bytes, and binding of an algorithm hash to the
origin signature — are all preserved; see DESIGN.md for the substitution
rationale.
"""

from repro.crypto.hashing import algorithm_hash, beacon_digest, short_hash
from repro.crypto.keys import ASKeyPair, KeyStore
from repro.crypto.signer import Signer, Verifier

__all__ = [
    "ASKeyPair",
    "KeyStore",
    "Signer",
    "Verifier",
    "algorithm_hash",
    "beacon_digest",
    "short_hash",
]
