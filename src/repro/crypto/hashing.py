"""Collision-resistant hashing helpers and control-plane perf counters.

Two places in IREC rely on hashing:

* the **Algorithm PCB extension** carries the hash of the on-demand
  algorithm implementation, so that a RAC fetching the executable from the
  origin AS can verify its integrity (paper §IV-C, §V-C), and
* the **egress database** stores only hashes of PCBs to bound its memory
  footprint while still being able to deduplicate (paper §V-D).

All hashes are SHA-256; the helpers return hex digests so they can be used
directly as dictionary keys and serialized without further encoding.

This module additionally hosts the library-wide **performance counters**
for the beacon fast path: every SHA-256 digest actually computed over a
beacon encoding and every HMAC signature created or checked increments a
counter here.  Cache hits (memoized digests, the ingress gateway's
verified-prefix cache) do *not* increment them, which is exactly what makes
the counters useful: the benchmark-regression harness reads them to prove
that the memoization removes work instead of merely shifting it around.
"""

from __future__ import annotations

import hashlib
from typing import Dict

#: Counts of the cryptographic operations actually performed (cache misses
#: only).  Keys:
#:
#: * ``beacon_digest``   — SHA-256 digests computed over beacon encodings,
#: * ``beacon_encode``   — full canonical beacon encodings materialized,
#: * ``signature_sign``  — HMAC signatures produced,
#: * ``signature_verify``— HMAC signatures checked.
_PERF_COUNTERS: Dict[str, int] = {
    "beacon_digest": 0,
    "beacon_encode": 0,
    "signature_sign": 0,
    "signature_verify": 0,
}


def count_crypto_op(name: str, amount: int = 1) -> None:
    """Record ``amount`` occurrences of the cryptographic operation ``name``."""
    _PERF_COUNTERS[name] = _PERF_COUNTERS.get(name, 0) + amount


def perf_counters() -> Dict[str, int]:
    """Return a snapshot of the performance counters."""
    return dict(_PERF_COUNTERS)


def reset_perf_counters() -> None:
    """Zero all performance counters (used between benchmark stages)."""
    for key in _PERF_COUNTERS:
        _PERF_COUNTERS[key] = 0


def algorithm_hash(payload: bytes) -> str:
    """Return the hex digest binding an on-demand algorithm payload."""
    if not isinstance(payload, (bytes, bytearray)):
        raise TypeError(f"algorithm payload must be bytes, got {type(payload).__name__}")
    return hashlib.sha256(bytes(payload)).hexdigest()


def beacon_digest(encoded_beacon: bytes) -> str:
    """Return the hex digest of an encoded PCB (used by the egress DB)."""
    if not isinstance(encoded_beacon, (bytes, bytearray)):
        raise TypeError(f"encoded beacon must be bytes, got {type(encoded_beacon).__name__}")
    count_crypto_op("beacon_digest")
    return hashlib.sha256(bytes(encoded_beacon)).hexdigest()


def short_hash(data: bytes, length: int = 12) -> str:
    """Return a truncated hex digest, handy for logging and display.

    Args:
        data: Bytes to hash.
        length: Number of hex characters to keep (must be positive and at
            most 64, the length of a full SHA-256 hex digest).
    """
    if length <= 0 or length > 64:
        raise ValueError(f"length must be in [1, 64], got {length}")
    return hashlib.sha256(bytes(data)).hexdigest()[:length]
