"""Collision-resistant hashing helpers.

Two places in IREC rely on hashing:

* the **Algorithm PCB extension** carries the hash of the on-demand
  algorithm implementation, so that a RAC fetching the executable from the
  origin AS can verify its integrity (paper §IV-C, §V-C), and
* the **egress database** stores only hashes of PCBs to bound its memory
  footprint while still being able to deduplicate (paper §V-D).

All hashes are SHA-256; the helpers return hex digests so they can be used
directly as dictionary keys and serialized without further encoding.
"""

from __future__ import annotations

import hashlib


def algorithm_hash(payload: bytes) -> str:
    """Return the hex digest binding an on-demand algorithm payload."""
    if not isinstance(payload, (bytes, bytearray)):
        raise TypeError(f"algorithm payload must be bytes, got {type(payload).__name__}")
    return hashlib.sha256(bytes(payload)).hexdigest()


def beacon_digest(encoded_beacon: bytes) -> str:
    """Return the hex digest of an encoded PCB (used by the egress DB)."""
    if not isinstance(encoded_beacon, (bytes, bytearray)):
        raise TypeError(f"encoded beacon must be bytes, got {type(encoded_beacon).__name__}")
    return hashlib.sha256(bytes(encoded_beacon)).hexdigest()


def short_hash(data: bytes, length: int = 12) -> str:
    """Return a truncated hex digest, handy for logging and display.

    Args:
        data: Bytes to hash.
        length: Number of hex characters to keep (must be positive and at
            most 64, the length of a full SHA-256 hex digest).
    """
    if length <= 0 or length > 64:
        raise ValueError(f"length must be in [1, 64], got {length}")
    return hashlib.sha256(bytes(data)).hexdigest()[:length]
