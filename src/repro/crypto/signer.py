"""Signing and verification of control-plane messages.

The :class:`Signer` is held by the egress gateway of an AS and signs the AS
entries it appends to PCBs.  The :class:`Verifier` is held by ingress
gateways and checks the signature chain of incoming PCBs.  Both resolve key
material through a shared :class:`~repro.crypto.keys.KeyStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.exceptions import SignatureError


@dataclass
class Signer:
    """Produces signatures on behalf of one AS."""

    as_id: int
    key_store: KeyStore

    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` with the key of :attr:`as_id`."""
        return self.key_store.key_for(self.as_id).sign(message)


@dataclass
class Verifier:
    """Verifies signatures of arbitrary ASes through a key store."""

    key_store: KeyStore

    def verify(self, as_id: int, message: bytes, signature: bytes) -> None:
        """Raise :class:`SignatureError` unless ``signature`` is valid.

        Args:
            as_id: AS that claims to have produced the signature.
            message: Signed byte string.
            signature: Signature to check.
        """
        key = self.key_store.key_for(as_id)
        if not key.verify(message, signature):
            raise SignatureError(f"invalid signature from AS {as_id}")

    def is_valid(self, as_id: int, message: bytes, signature: bytes) -> bool:
        """Boolean variant of :meth:`verify`."""
        try:
            self.verify(as_id, message, signature)
        except SignatureError:
            return False
        return True
