"""Batched crypto offload pool.

The PR 8 observatory attributes a large share of e2e wall clock to HMAC
signing and verification (hundreds of thousands of ops per run).  This
module moves that work into chunked :class:`ProcessPoolExecutor` batches
behind the existing :class:`~repro.crypto.signer.Signer` /
:class:`~repro.crypto.signer.Verifier` API, so callers that can batch
(origination bursts, bulk verification sweeps, benchmarks) parallelize
without touching single-op call sites.

Two properties make the offload safe and cheap:

* **No key material ships.**  Keys are derived deterministically from
  ``(as_id, deployment_secret)`` (:func:`repro.crypto.keys.derive_key`),
  so a worker re-derives them locally from the pool's secret; only
  message bytes and signatures cross the process boundary.
* **Perf-counter parity.**  The process-global crypto counters
  (:func:`repro.crypto.hashing.count_crypto_op`) live in the parent;
  worker-side increments would be invisible.  The pool counts every
  offloaded operation parent-side, so ``signature_sign`` /
  ``signature_verify`` totals are identical whether a batch ran inline
  or offloaded — pinned by the equivalence tests.

Small batches stay inline: below :attr:`CryptoPool.offload_threshold`
the IPC round trip costs more than the HMACs, so the pool computes them
in-process through the normal key-store path.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashing import count_crypto_op
from repro.crypto.keys import KeyStore, derive_key
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import ConfigurationError
from repro.parallel.pool import WorkerPool, default_worker_count, shared_pool

#: Messages per offloaded chunk.  Large enough to amortize pickling, small
#: enough that a batch spreads across all pool workers.
DEFAULT_CHUNK_SIZE = 256

#: Below this many messages a batch runs inline (IPC costs more than HMACs).
DEFAULT_OFFLOAD_THRESHOLD = 64


def _sign_chunk(
    as_id: int, deployment_secret: bytes, messages: Sequence[bytes]
) -> List[bytes]:
    """Worker side: sign ``messages`` with the re-derived key of ``as_id``."""
    secret = derive_key(as_id, deployment_secret).secret
    return [hmac.new(secret, message, hashlib.sha256).digest() for message in messages]


def _verify_chunk(
    deployment_secret: bytes, items: Sequence[Tuple[int, bytes, bytes]]
) -> List[bool]:
    """Worker side: verify ``(as_id, message, signature)`` items."""
    secrets: Dict[int, bytes] = {}
    results: List[bool] = []
    for as_id, message, signature in items:
        secret = secrets.get(as_id)
        if secret is None:
            secret = secrets[as_id] = derive_key(as_id, deployment_secret).secret
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        results.append(hmac.compare_digest(expected, signature))
    return results


class CryptoPool:
    """Chunked sign/verify offload over a shared :class:`WorkerPool`.

    Attributes:
        key_store: Key directory the inline paths (and signature
            semantics) resolve through; its ``deployment_secret`` is what
            workers re-derive keys from.
        chunk_size: Messages per offloaded chunk.
        offload_threshold: Minimum batch size worth offloading; smaller
            batches run inline.
        workers: Pool workers to request per offloaded batch.
    """

    def __init__(
        self,
        key_store: Optional[KeyStore] = None,
        pool: Optional[WorkerPool] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        offload_threshold: int = DEFAULT_OFFLOAD_THRESHOLD,
        workers: Optional[int] = None,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if offload_threshold < 1:
            raise ConfigurationError(
                f"offload_threshold must be >= 1, got {offload_threshold}"
            )
        self.key_store = key_store if key_store is not None else KeyStore()
        self._pool = pool
        self.chunk_size = chunk_size
        self.offload_threshold = offload_threshold
        self.workers = workers if workers is not None else default_worker_count()
        #: Observability counters.
        self.offloaded_batches = 0
        self.offloaded_messages = 0
        self.inline_messages = 0

    @property
    def pool(self) -> WorkerPool:
        """Return the backing worker pool (the shared one by default)."""
        if self._pool is None:
            self._pool = shared_pool()
        return self._pool

    # ------------------------------------------------------------------
    # batched operations
    # ------------------------------------------------------------------
    def sign_batch(self, as_id: int, messages: Sequence[bytes]) -> List[bytes]:
        """Sign every message with ``as_id``'s key; signatures in order."""
        if not messages:
            return []
        if len(messages) < self.offload_threshold:
            key = self.key_store.key_for(as_id)
            self.inline_messages += len(messages)
            return [key.sign(message) for message in messages]
        secret = self.key_store.deployment_secret
        chunks = [
            (as_id, secret, list(messages[start : start + self.chunk_size]))
            for start in range(0, len(messages), self.chunk_size)
        ]
        signed = self.pool.run_batches(
            _sign_chunk, chunks, min_workers=min(self.workers, len(chunks))
        )
        # Parent-side counter parity: worker processes increment their own
        # (invisible) globals, so the offloaded ops are counted here.
        count_crypto_op("signature_sign", len(messages))
        self.offloaded_batches += 1
        self.offloaded_messages += len(messages)
        return [signature for chunk in signed for signature in chunk]

    def verify_batch(self, items: Sequence[Tuple[int, bytes, bytes]]) -> List[bool]:
        """Verify ``(as_id, message, signature)`` items; verdicts in order."""
        if not items:
            return []
        if len(items) < self.offload_threshold:
            self.inline_messages += len(items)
            return [
                self.key_store.key_for(as_id).verify(message, signature)
                for as_id, message, signature in items
            ]
        secret = self.key_store.deployment_secret
        chunks = [
            (secret, list(items[start : start + self.chunk_size]))
            for start in range(0, len(items), self.chunk_size)
        ]
        verdicts = self.pool.run_batches(
            _verify_chunk, chunks, min_workers=min(self.workers, len(chunks))
        )
        count_crypto_op("signature_verify", len(items))
        self.offloaded_batches += 1
        self.offloaded_messages += len(items)
        return [verdict for chunk in verdicts for verdict in chunk]

    def counters(self) -> Dict[str, int]:
        """Return the pool's observability counters as one plain dict."""
        return {
            "offloaded_batches": self.offloaded_batches,
            "offloaded_messages": self.offloaded_messages,
            "inline_messages": self.inline_messages,
        }


class PooledSigner(Signer):
    """Drop-in :class:`Signer` with a batched offload path.

    Single-message :meth:`sign` stays inline (bit-identical to the plain
    signer); :meth:`sign_batch` routes through the :class:`CryptoPool`.
    """

    def __init__(self, as_id: int, crypto_pool: CryptoPool) -> None:
        super().__init__(as_id=as_id, key_store=crypto_pool.key_store)
        self.crypto_pool = crypto_pool

    def sign_batch(self, messages: Sequence[bytes]) -> List[bytes]:
        """Sign ``messages`` in order, offloading large batches."""
        return self.crypto_pool.sign_batch(self.as_id, messages)


class PooledVerifier(Verifier):
    """Drop-in :class:`Verifier` with a batched offload path."""

    def __init__(self, crypto_pool: CryptoPool) -> None:
        super().__init__(key_store=crypto_pool.key_store)
        self.crypto_pool = crypto_pool

    def verify_batch(self, items: Sequence[Tuple[int, bytes, bytes]]) -> List[bool]:
        """Verify ``(as_id, message, signature)`` items in order."""
        return self.crypto_pool.verify_batch(items)
