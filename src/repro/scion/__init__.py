"""Legacy SCION control plane (baseline substrate).

IREC replaces the legacy SCION control service inside each AS, and the
paper benchmarks the two against each other (Figures 6 and 7) and verifies
that IREC-enabled ASes interoperate with legacy ones on SCIONLab (§VII-B).
This package provides the legacy control service used for both purposes:
a single-process beaconing service that selects the 20 shortest paths per
origin AS, propagates them on every interface and registers them at the
path service — without RACs, sandboxes or per-criteria optimization.
"""

from repro.scion.legacy import LegacyControlService, LegacyProcessingReport

__all__ = ["LegacyControlService", "LegacyProcessingReport"]
