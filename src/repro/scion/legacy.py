"""The legacy SCION control service.

The legacy control service is the baseline of the paper's micro-benchmarks
(Figures 6 and 7) and of the backward-compatibility experiment (§VII-B):
a single process that receives PCBs, stores them, periodically selects the
20 shortest paths per origin AS, extends and propagates them on every
interface, and registers them at the path service.  There is no sandbox,
no gateway ↔ RAC IPC and no per-criteria optimization, which is exactly
why its per-candidate-set processing latency is much lower than an
on-demand RAC's for small candidate sets.

The service implements the same transport-facing interface as
:class:`repro.core.control_service.IrecControlService`, so simulations can
mix legacy and IREC ASes freely.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.base import CandidateBeacon, ExecutionContext
from repro.algorithms.shortest_path import KShortestPathAlgorithm, legacy_scion_algorithm
from repro.core.beacon import Beacon, BeaconBuilder, DEFAULT_VALIDITY_MS
from repro.core.databases import (
    IngressDatabase,
    PathService,
    RegisteredPath,
    StoredBeacon,
)
from repro.core.control_service import (
    dispatch_batch,
    dispatch_message,
    purge_as_state,
    purge_link_state,
)
from repro.core.ingress import IngressGateway
from repro.core.messages import ControlMessage, PathQueryResponse
from repro.core.query import PathQueryFrontend
from repro.core.revocation import (
    RevocationMessage,
    RevocationState,
    bounce_if_revoked as _bounce_if_revoked,
    handle_revocation as _handle_revocation,
    originate_revocation as _originate_revocation,
)
from repro.core.local_view import LocalTopologyView
from repro.core.transport import ControlPlaneTransport
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import UnknownAlgorithmError
from repro.topology.entities import LinkID


@dataclass
class LegacyProcessingReport:
    """Timing report of one legacy processing round (Figure 6 baseline)."""

    candidates: int = 0
    selections: int = 0
    execution_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        """Return the total processing latency (no setup or IPC stages exist)."""
        return self.execution_ms

    def throughput_pcbs_per_second(self) -> float:
        """Return the candidate-processing throughput of the round."""
        if self.execution_ms <= 0.0:
            return 0.0
        return self.candidates / (self.execution_ms / 1000.0)


class LegacyControlService:
    """Single-process legacy SCION control service for one AS."""

    def __init__(
        self,
        view: LocalTopologyView,
        key_store: KeyStore,
        transport: ControlPlaneTransport,
        paths_per_origin: int = 20,
        verify_signatures: bool = True,
        beacon_validity_ms: float = DEFAULT_VALIDITY_MS,
    ) -> None:
        self.view = view
        self.transport = transport
        self.paths_per_origin = paths_per_origin
        self.beacon_validity_ms = beacon_validity_ms
        signer = Signer(as_id=view.as_id, key_store=key_store)
        self.builder = BeaconBuilder(as_id=view.as_id, signer=signer)
        self.ingress = IngressGateway(
            as_id=view.as_id,
            verifier=Verifier(key_store=key_store),
            database=IngressDatabase(local_as=view.as_id),
            verify_signatures=verify_signatures,
        )
        self.path_service = PathService(max_paths_per_key=paths_per_origin)
        #: Legacy ASes serve path queries through the same frontend as
        #: IREC ASes — the serving tier is deployment-flavour agnostic.
        self.query_frontend = PathQueryFrontend(self.path_service)
        self.query_responses: List[Tuple[PathQueryResponse, float]] = []
        self._message_sequence = itertools.count(1)
        self.revocations = RevocationState()
        #: Withdrawal callback, same contract as the IREC control service.
        self.on_withdrawal = None
        self.algorithm: KShortestPathAlgorithm = (
            legacy_scion_algorithm()
            if paths_per_origin == 20
            else KShortestPathAlgorithm(k=paths_per_origin)
        )
        self._propagated_digests: dict = {}

    # ------------------------------------------------------------------
    # transport-facing handlers (same surface as the IREC control service)
    # ------------------------------------------------------------------
    @property
    def as_id(self) -> int:
        """Return the local AS identifier."""
        return self.view.as_id

    def on_message(self, message: ControlMessage, on_interface: int, now_ms: float):
        """Handle one typed control message — the unified fabric entry point.

        Legacy ASes speak the same message fabric as IREC ASes (that is
        what makes mixed deployments possible); the dispatch is shared
        with :class:`~repro.core.control_service.IrecControlService`.
        """
        return dispatch_message(self, message, on_interface, now_ms)

    def on_message_batch(self, entries, now_ms: float):
        """Handle one drained inbox batch (shared batched dispatch)."""
        return dispatch_batch(self, entries, now_ms)

    def receive_beacon(self, beacon: Beacon, on_interface: int, now_ms: float) -> bool:
        """Handle a PCB delivered by a neighbouring AS.

        Shares the IREC service's negative caching: a beacon crossing an
        element withdrawn inside the dedup window bounces the cached
        revocation back to the sender instead of being admitted.
        """
        revocations = self.revocations
        if (
            revocations.revoked_links or revocations.revoked_ases
        ) and _bounce_if_revoked(self, beacon, on_interface, now_ms):
            return False
        return self.ingress.receive(beacon, on_interface=on_interface, now_ms=now_ms)

    def receive_returned_beacon(self, beacon: Beacon, now_ms: float) -> None:
        """Legacy ASes do not use pull-based routing; returned beacons are dropped."""

    def next_message_sequence(self) -> int:
        """Return the next non-revocation envelope sequence number."""
        return next(self._message_sequence)

    def receive_query_response(
        self, response: PathQueryResponse, now_ms: float
    ) -> None:
        """Handle the answer to a query this AS sent earlier."""
        self.query_responses.append((response, now_ms))

    def serve_algorithm(self, algorithm_id: str) -> bytes:
        """Legacy ASes publish no on-demand algorithms."""
        raise UnknownAlgorithmError(algorithm_id)

    # ------------------------------------------------------------------
    # dynamic-topology events (same surface as the IREC service)
    # ------------------------------------------------------------------
    def set_policies(self, policies: Sequence) -> None:
        """Replace the ingress gateway's admission policies atomically."""
        self.ingress.policies = list(policies)

    def invalidate_link(self, link_id: LinkID) -> Tuple[int, int]:
        """Withdraw beacons/paths crossing a failed link; return the counts."""
        return purge_link_state(self.as_id, self.ingress.database, self.path_service, link_id)

    def invalidate_as(self, gone_as: int) -> Tuple[int, int]:
        """Withdraw beacons/paths crossing a departed AS; return the counts."""
        return purge_as_state(self.ingress.database, self.path_service, gone_as)

    def originate_revocation(
        self,
        now_ms: float,
        failed_link=None,
        failed_as: Optional[int] = None,
        failed_links: Sequence = (),
        failed_ases: Sequence[int] = (),
        ttl_ms: Optional[float] = None,
        max_hops: Optional[int] = None,
    ) -> RevocationMessage:
        """Originate, apply and flood a signed revocation for a local failure."""
        return _originate_revocation(
            self,
            now_ms,
            failed_link=failed_link,
            failed_as=failed_as,
            failed_links=tuple(failed_links),
            failed_ases=tuple(failed_ases),
            ttl_ms=ttl_ms,
            max_hops=max_hops,
        )

    def on_revocation(
        self, revocation: RevocationMessage, on_interface: int, now_ms: float
    ) -> bool:
        """Handle a revocation delivered by a neighbouring AS (dedup, withdraw,
        re-forward) — legacy ASes participate in the flood like IREC ASes."""
        return _handle_revocation(self, revocation, on_interface, now_ms)

    def set_revocation_forwarding(self, enabled: bool) -> None:
        """Toggle re-forwarding of received revocations (Byzantine knob);
        mirrors :meth:`IrecControlService.set_revocation_forwarding`."""
        self.revocations.suppress_forwarding = not enabled

    # ------------------------------------------------------------------
    # beaconing
    # ------------------------------------------------------------------
    def originate(self, now_ms: float) -> List[Beacon]:
        """Originate one beacon per local interface (no extensions)."""
        originated = []
        for interface_id in self.view.interface_ids():
            beacon = self.builder.originate(
                egress_interface=interface_id,
                created_at_ms=now_ms,
                static_info=self.view.static_info_for(None, interface_id),
                validity_ms=self.beacon_validity_ms,
            )
            self.transport.send_beacon(self.as_id, interface_id, beacon)
            originated.append(beacon)
        return originated

    def select_paths(
        self, stored_beacons: Sequence[StoredBeacon]
    ) -> Tuple[List[StoredBeacon], LegacyProcessingReport]:
        """Run the legacy selection over a candidate set and time it.

        This is the measured quantity of the Figure-6 baseline: no sandbox
        setup, no marshalling — just the selection algorithm over the
        candidates of one origin AS.
        """
        report = LegacyProcessingReport(candidates=len(stored_beacons))
        if not stored_beacons:
            return [], report
        candidates = tuple(
            CandidateBeacon(beacon=s.beacon, ingress_interface=s.received_on_interface)
            for s in stored_beacons
        )
        context = ExecutionContext(
            local_as=self.as_id,
            candidates=candidates,
            # Selection is interface-independent for the legacy algorithm,
            # so a single representative interface suffices.
            egress_interfaces=(0,),
            max_paths_per_interface=self.paths_per_origin,
            intra_latency_ms=self.view.intra_latency_ms,
        )
        start = time.perf_counter()
        result = self.algorithm.execute(context)
        report.execution_ms = (time.perf_counter() - start) * 1000.0

        selected_digests = {b.digest() for b in result.beacons_for(0)}
        by_digest = {s.beacon.digest(): s for s in stored_beacons}
        selected = [by_digest[d] for d in selected_digests if d in by_digest]
        selected.sort(key=lambda s: (s.beacon.hop_count, s.beacon.total_latency_ms()))
        report.selections = len(selected)
        return selected, report

    def run_round(self, now_ms: float) -> LegacyProcessingReport:
        """Select, propagate and register paths for every known origin AS."""
        total = LegacyProcessingReport()
        database = self.ingress.database
        for bucket in database.bucket_keys():
            stored_beacons = database.beacons_in_bucket(bucket)
            selected, report = self.select_paths(stored_beacons)
            total.candidates += report.candidates
            total.selections += report.selections
            total.execution_ms += report.execution_ms
            self._propagate(selected)
            self._register(selected, now_ms)
        self.ingress.expire(now_ms)
        self.path_service.remove_expired(now_ms)
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _propagate(self, selected: Sequence[StoredBeacon]) -> None:
        for stored in selected:
            digest = stored.beacon.digest()
            sent_on = self._propagated_digests.setdefault(digest, set())
            for interface_id in self.view.interface_ids():
                if interface_id in sent_on:
                    continue
                neighbor_as, _ = self.view.neighbor_of(interface_id)
                if stored.beacon.contains_as(neighbor_as):
                    continue
                extended = self.builder.extend(
                    stored.beacon,
                    ingress_interface=stored.received_on_interface,
                    egress_interface=interface_id,
                    static_info=self.view.static_info_for(
                        stored.received_on_interface, interface_id
                    ),
                )
                self.transport.send_beacon(self.as_id, interface_id, extended)
                sent_on.add(interface_id)

    def _register(self, selected: Sequence[StoredBeacon], now_ms: float) -> None:
        for stored in selected:
            if stored.beacon.origin_as == self.as_id:
                continue
            segment = self.builder.terminate(
                stored.beacon,
                ingress_interface=stored.received_on_interface,
                static_info=self.view.static_info_for(stored.received_on_interface, None),
            )
            self.path_service.register(
                RegisteredPath(
                    segment=segment,
                    criteria_tags=("legacy",),
                    registered_at_ms=now_ms,
                )
            )
