"""The standardized RAC ↔ algorithm interface.

The paper's §VI places this interface in the *stable* standardization tier:
it must be fixed once so that new algorithms can be written, shipped inside
PCBs and executed by any AS without coordination.  The interface consists
of three pieces:

* :class:`ExecutionContext` — what a RAC hands to an algorithm: the
  candidate beacons of one (origin AS, interface group, target) bucket,
  each paired with the ingress interface it was received on; the egress
  interfaces to optimize for; the per-interface path limit; and a callback
  exposing intra-AS topology information (interface-pair latencies),
* :class:`ExecutionResult` — what the algorithm returns: for every egress
  interface, the ordered list of optimal beacons (at most the limit), and
* :class:`RoutingAlgorithm` — the abstract algorithm itself.

The module also provides :func:`select_per_interface`, the selection
skeleton most concrete algorithms share.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.beacon import Beacon
from repro.exceptions import AlgorithmError

#: Intra-AS latency oracle: maps (interface_a, interface_b) to milliseconds.
IntraLatencyOracle = Callable[[int, int], float]


@dataclass(frozen=True)
class CandidateBeacon:
    """A beacon as presented to an algorithm.

    Attributes:
        beacon: The received beacon.
        ingress_interface: Local interface the beacon was received on, or
            ``None`` if the local AS originated it (only relevant for the
            origination path, which algorithms normally never see).
    """

    beacon: Beacon
    ingress_interface: Optional[int]


@dataclass(frozen=True)
class ExecutionContext:
    """Everything an algorithm may use for one execution.

    The candidates all share the same origin AS and, when present, the same
    interface group and target AS — the RAC buckets them before invoking
    the algorithm (paper §V-C: "The PCBs provided as input are specific for
    an origin AS, as well as interface group and target AS").

    Attributes:
        local_as: The AS executing the algorithm.
        candidates: Candidate beacons of one bucket.
        egress_interfaces: Local interfaces to compute optimal sets for.
        max_paths_per_interface: Upper bound on selected beacons per egress
            interface (configured per RAC and interface, §V-C).
        intra_latency_ms: Intra-AS latency oracle between local interfaces.
        parameters: Free-form algorithm parameters (used by on-demand
            payloads, e.g. the link-avoid set of the PD algorithm).
    """

    local_as: int
    candidates: Tuple[CandidateBeacon, ...]
    egress_interfaces: Tuple[int, ...]
    max_paths_per_interface: int
    intra_latency_ms: IntraLatencyOracle
    parameters: Mapping[str, object] = field(default_factory=dict)

    def candidates_for_origin(self, origin_as: int) -> Tuple[CandidateBeacon, ...]:
        """Return the candidates originated by ``origin_as``."""
        return tuple(c for c in self.candidates if c.beacon.origin_as == origin_as)

    def origins(self) -> Tuple[int, ...]:
        """Return the distinct origin ASes among the candidates, sorted."""
        return tuple(sorted({c.beacon.origin_as for c in self.candidates}))


@dataclass
class ExecutionResult:
    """The per-egress-interface optimal beacon sets returned by an algorithm."""

    selections: Dict[int, List[Beacon]] = field(default_factory=dict)

    def add(self, egress_interface: int, beacon: Beacon) -> None:
        """Append ``beacon`` to the selection of ``egress_interface``."""
        self.selections.setdefault(egress_interface, []).append(beacon)

    def beacons_for(self, egress_interface: int) -> List[Beacon]:
        """Return the selection for one egress interface (may be empty)."""
        return list(self.selections.get(egress_interface, ()))

    def total_selected(self) -> int:
        """Return the total number of (interface, beacon) selections."""
        return sum(len(beacons) for beacons in self.selections.values())

    def enforce_limit(self, limit: int) -> None:
        """Truncate every per-interface selection to ``limit`` entries."""
        if limit < 0:
            raise AlgorithmError(f"limit must be non-negative, got {limit}")
        for interface in list(self.selections):
            self.selections[interface] = self.selections[interface][:limit]


class RoutingAlgorithm(abc.ABC):
    """Abstract base class of every routing algorithm.

    Concrete algorithms must be stateless across executions (the RAC may
    re-instantiate them at any time) and deterministic given the execution
    context, which is what makes on-demand routing consistent across ASes.
    """

    #: Stable identifier of the algorithm, used in registries and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Compute the optimal beacon set per egress interface."""

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


#: A scoring function maps (candidate, egress interface, context) to a sort
#: key; lower keys are better.
ScoreFunction = Callable[[CandidateBeacon, int, ExecutionContext], Tuple]


def select_per_interface(
    context: ExecutionContext,
    score: ScoreFunction,
    admit: Optional[Callable[[CandidateBeacon, int, ExecutionContext], bool]] = None,
) -> ExecutionResult:
    """Shared selection skeleton: rank candidates per egress interface.

    For each egress interface, candidates are filtered by ``admit`` (if
    given), sorted by ``score`` (ascending; ties broken deterministically by
    AS path then beacon digest) and the best ``max_paths_per_interface`` are
    selected.

    Beacons whose path already contains the local AS are never selected:
    propagating them would create a loop.
    """
    result = ExecutionResult()
    limit = context.max_paths_per_interface
    if limit <= 0:
        return result
    # The loop check and the deterministic tie-break key do not depend on
    # the egress interface; compute them once per candidate instead of once
    # per (candidate, interface).  Both lean on the beacon's memoized
    # as_path/digest, so repeated rounds over the same bucket are cheap.
    admissible: List[Tuple[CandidateBeacon, Tuple]] = [
        (candidate, (candidate.beacon.as_path(), candidate.beacon.digest()))
        for candidate in context.candidates
        if not candidate.beacon.contains_as(context.local_as)
    ]
    for egress_interface in context.egress_interfaces:
        ranked: List[Tuple[Tuple, Beacon]] = []
        for candidate, tie_break in admissible:
            if admit is not None and not admit(candidate, egress_interface, context):
                continue
            key = score(candidate, egress_interface, context)
            ranked.append((tuple(key) + tie_break, candidate.beacon))
        ranked.sort(key=lambda item: item[0])
        for _key, beacon in ranked[:limit]:
            result.add(egress_interface, beacon)
    return result
