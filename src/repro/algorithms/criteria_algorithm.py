"""Generic algorithm driven by a declarative criteria set.

This is the extensibility workhorse of the reproduction: any
:class:`~repro.core.criteria.CriteriaSet` — including ones deserialized
from an on-demand algorithm payload that the executing AS has never seen
before — can be turned into a routing algorithm without writing code.
The algorithm ranks the candidate beacons of the bucket with the criteria
set and propagates the best ones on every egress interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
)
from repro.core.beacon import Beacon
from repro.core.criteria import CriteriaSet
from repro.exceptions import AlgorithmError


@dataclass
class CriteriaSetAlgorithm(RoutingAlgorithm):
    """Optimize beacons according to a declarative criteria set.

    Attributes:
        criteria_set: What "optimal" means for this algorithm.
        paths_per_interface: Number of beacons to propagate per egress
            interface (capped by the RAC limit).
    """

    criteria_set: CriteriaSet
    paths_per_interface: int = 1

    def __post_init__(self) -> None:
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )
        self.name = f"criteria:{self.criteria_set.name}"

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Rank the bucket with the criteria set, per egress interface."""
        result = ExecutionResult()
        limit = min(self.paths_per_interface, context.max_paths_per_interface)
        if limit <= 0:
            return result

        loop_free = [
            candidate
            for candidate in context.candidates
            if not candidate.beacon.contains_as(context.local_as)
        ]
        if not loop_free:
            return result
        by_digest: Dict[str, CandidateBeacon] = {c.beacon.digest(): c for c in loop_free}
        selected = self.criteria_set.select([c.beacon for c in loop_free], limit=limit)
        for egress_interface in context.egress_interfaces:
            for beacon in selected:
                # Reuse the exact candidate object so identity-based callers
                # (e.g. extended-path wrappers) keep working.
                candidate = by_digest.get(beacon.digest())
                result.add(egress_interface, candidate.beacon if candidate else beacon)
        return result

    def best_beacon(self, context: ExecutionContext) -> Optional[Beacon]:
        """Convenience helper: the single best admissible beacon of the bucket."""
        loop_free = [
            candidate.beacon
            for candidate in context.candidates
            if not candidate.beacon.contains_as(context.local_as)
        ]
        return self.criteria_set.best(loop_free)

    def describe(self) -> str:
        return f"criteria set {self.criteria_set.name!r}, {self.paths_per_interface} per interface"
