"""Bandwidth-oriented algorithms (widest, shortest-widest, bounded-latency widest).

These algorithms back the motivating examples of the paper: the
file-transfer application that needs the highest-bandwidth path (Figure 1),
the shortest-widest criterion communicated via on-demand routing
(Figure 2c), and the live-video application that wants the widest path
within a latency bound (Figure 1, example #2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
    select_per_interface,
)
from repro.exceptions import AlgorithmError


@dataclass
class WidestPathAlgorithm(RoutingAlgorithm):
    """Select the beacons with the highest bottleneck bandwidth."""

    paths_per_interface: int = 1
    name: str = "widest"

    def __post_init__(self) -> None:
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the widest beacons for every egress interface."""
        bounded = _bound(context, self.paths_per_interface)
        return select_per_interface(bounded, self._score)

    @staticmethod
    def _score(
        candidate: CandidateBeacon, _egress_interface: int, _context: ExecutionContext
    ) -> Tuple[float]:
        return (-candidate.beacon.bottleneck_bandwidth_mbps(),)

    def describe(self) -> str:
        return f"highest bottleneck bandwidth, {self.paths_per_interface} per interface"


@dataclass
class ShortestWidestAlgorithm(RoutingAlgorithm):
    """Shortest-widest selection: maximize bandwidth, break ties by latency.

    This is the algorithm the paper's Figure 2c shows an origin AS
    communicating to other ASes through on-demand routing: "the
    lowest-latency path among the highest-bandwidth ones".
    """

    paths_per_interface: int = 1
    name: str = "shortest-widest"

    def __post_init__(self) -> None:
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the shortest-widest beacons for every egress interface."""
        bounded = _bound(context, self.paths_per_interface)
        return select_per_interface(bounded, self._score)

    @staticmethod
    def _score(
        candidate: CandidateBeacon, _egress_interface: int, _context: ExecutionContext
    ) -> Tuple[float, float]:
        beacon = candidate.beacon
        return (-beacon.bottleneck_bandwidth_mbps(), beacon.total_latency_ms())

    def describe(self) -> str:
        return f"shortest-widest, {self.paths_per_interface} per interface"


@dataclass
class LatencyBoundedWidestAlgorithm(RoutingAlgorithm):
    """Widest path among the paths whose latency stays within a bound.

    Attributes:
        latency_bound_ms: Hard upper bound on accumulated path latency;
            beacons exceeding it are not eligible for selection.
        paths_per_interface: Number of beacons selected per egress interface.
        use_extended_paths: Whether the bound (and the tie-breaking latency)
            is checked on the extended path including the intra-AS latency
            to the candidate egress interface.
    """

    latency_bound_ms: float = 30.0
    paths_per_interface: int = 1
    use_extended_paths: bool = False

    def __post_init__(self) -> None:
        if self.latency_bound_ms <= 0:
            raise AlgorithmError(f"latency bound must be positive, got {self.latency_bound_ms}")
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )
        self.name = f"widest-latency<={self.latency_bound_ms:g}ms"

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the widest within-bound beacons for every egress interface."""
        bounded = _bound(context, self.paths_per_interface)
        return select_per_interface(bounded, self._score, admit=self._admit)

    def _latency(
        self, candidate: CandidateBeacon, egress_interface: int, context: ExecutionContext
    ) -> float:
        latency = candidate.beacon.total_latency_ms()
        if self.use_extended_paths and candidate.ingress_interface is not None:
            latency += context.intra_latency_ms(candidate.ingress_interface, egress_interface)
        return latency

    def _admit(
        self, candidate: CandidateBeacon, egress_interface: int, context: ExecutionContext
    ) -> bool:
        return self._latency(candidate, egress_interface, context) <= self.latency_bound_ms

    def _score(
        self, candidate: CandidateBeacon, egress_interface: int, context: ExecutionContext
    ) -> Tuple[float, float]:
        return (
            -candidate.beacon.bottleneck_bandwidth_mbps(),
            self._latency(candidate, egress_interface, context),
        )

    def describe(self) -> str:
        return (
            f"widest path with latency <= {self.latency_bound_ms:g} ms, "
            f"{self.paths_per_interface} per interface"
        )


def _bound(context: ExecutionContext, paths_per_interface: int) -> ExecutionContext:
    """Return a copy of ``context`` with the per-interface limit tightened."""
    return ExecutionContext(
        local_as=context.local_as,
        candidates=context.candidates,
        egress_interfaces=context.egress_interfaces,
        max_paths_per_interface=min(paths_per_interface, context.max_paths_per_interface),
        intra_latency_ms=context.intra_latency_ms,
        parameters=context.parameters,
    )
