"""Delay optimization (DO), with and without extended-path awareness.

The DO algorithm optimizes "the propagation delay of paths calculated by
accumulating the estimated great-circle delays of all on-path AS hops"
(paper §VIII-B).  Two variants are evaluated:

* **DON** — plain delay optimization on *received* paths: the intra-AS
  latency between the interface the beacon arrived on and the egress
  interface it would leave on is ignored, and
* **DOB** — delay optimization on *extended* paths (paper §IV-E): the
  intra-AS latency to each candidate egress interface is added before
  comparison, so the algorithm may prefer a slightly longer inter-domain
  path that enters the AS closer to the egress interface (Figure 4).

DOB is evaluated jointly with interface groups (DOB300 / DOB2000); the
grouping itself happens in the RAC bucketing and beacon origination, not in
this algorithm, so a single class covers all DO variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
    select_per_interface,
)
from repro.exceptions import AlgorithmError


@dataclass
class DelayOptimizationAlgorithm(RoutingAlgorithm):
    """Select the lowest-latency beacons per egress interface.

    Attributes:
        paths_per_interface: Number of beacons selected per egress
            interface (capped by the RAC's limit).
        use_extended_paths: Whether to add the intra-AS latency between the
            beacon's ingress interface and the candidate egress interface
            before comparing (the DOB behaviour of §IV-E).
    """

    paths_per_interface: int = 1
    use_extended_paths: bool = False

    def __post_init__(self) -> None:
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )
        self.name = "dob" if self.use_extended_paths else "don"

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the lowest-delay beacons for every egress interface."""
        effective_limit = min(self.paths_per_interface, context.max_paths_per_interface)
        bounded = ExecutionContext(
            local_as=context.local_as,
            candidates=context.candidates,
            egress_interfaces=context.egress_interfaces,
            max_paths_per_interface=effective_limit,
            intra_latency_ms=context.intra_latency_ms,
            parameters=context.parameters,
        )
        return select_per_interface(bounded, self._score)

    def _score(
        self, candidate: CandidateBeacon, egress_interface: int, context: ExecutionContext
    ) -> Tuple[float]:
        latency = candidate.beacon.total_latency_ms()
        if self.use_extended_paths and candidate.ingress_interface is not None:
            latency += context.intra_latency_ms(candidate.ingress_interface, egress_interface)
        return (latency,)

    def describe(self) -> str:
        variant = "extended paths" if self.use_extended_paths else "received paths"
        return f"delay optimization on {variant}, {self.paths_per_interface} per interface"
