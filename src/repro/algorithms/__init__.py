"""Routing algorithms executed inside RACs.

Every algorithm implements the standardized RAC ↔ algorithm interface of
:mod:`repro.algorithms.base` (paper §V-C, §VI): it receives a bucket of
candidate beacons (all for the same origin AS, interface group and target),
a handle onto local intra-AS topology information, the list of egress
interfaces to optimize for and a per-interface path limit, and returns the
set of optimal beacons per egress interface.

The package ships the algorithms the paper deploys and evaluates:

* shortest-path family (1SP, 5SP, and the 20-path legacy SCION selection),
* delay optimization (DO) with optional extended-path awareness,
* heuristic disjointness (HD),
* the pull-based disjointness helper algorithm (PD) that avoids a given
  link set,
* bandwidth-oriented algorithms (widest, shortest-widest, latency-bounded
  widest) used in the motivation examples, and
* a generic criteria-set algorithm plus a Pareto dominant-path algorithm
  representing the related-work baseline.
"""

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
)
from repro.algorithms.bandwidth import (
    LatencyBoundedWidestAlgorithm,
    ShortestWidestAlgorithm,
    WidestPathAlgorithm,
)
from repro.algorithms.criteria_algorithm import CriteriaSetAlgorithm
from repro.algorithms.delay import DelayOptimizationAlgorithm
from repro.algorithms.disjointness import HeuristicDisjointnessAlgorithm
from repro.algorithms.pareto import ParetoDominantAlgorithm
from repro.algorithms.pull_disjoint import LinkAvoidingAlgorithm
from repro.algorithms.registry import AlgorithmCatalog, default_catalog
from repro.algorithms.shortest_path import (
    LEGACY_PATH_COUNT,
    KShortestPathAlgorithm,
    legacy_scion_algorithm,
)

__all__ = [
    "AlgorithmCatalog",
    "CandidateBeacon",
    "CriteriaSetAlgorithm",
    "DelayOptimizationAlgorithm",
    "ExecutionContext",
    "ExecutionResult",
    "HeuristicDisjointnessAlgorithm",
    "KShortestPathAlgorithm",
    "LatencyBoundedWidestAlgorithm",
    "LEGACY_PATH_COUNT",
    "LinkAvoidingAlgorithm",
    "ParetoDominantAlgorithm",
    "RoutingAlgorithm",
    "ShortestWidestAlgorithm",
    "WidestPathAlgorithm",
    "default_catalog",
    "legacy_scion_algorithm",
]
