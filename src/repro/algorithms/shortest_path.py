"""Shortest-path algorithms (1SP, 5SP and the legacy 20-path selection).

The paper's simulations deploy two shortest-path static RACs: **1SP**
propagates, for each origin AS, the single shortest path (by AS-hop count)
on every egress interface, and **5SP** propagates the five shortest
(§VIII-B).  The legacy SCION control service used as the micro-benchmark
baseline (§VII-B) selects the 20 shortest paths per origin, which
:func:`legacy_scion_algorithm` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
    select_per_interface,
)
from repro.exceptions import AlgorithmError

#: Number of paths the legacy SCION control service selects per origin AS.
LEGACY_PATH_COUNT = 20


@dataclass
class KShortestPathAlgorithm(RoutingAlgorithm):
    """Select the ``k`` shortest beacons per origin, by AS-hop count.

    Ties between equally-long paths are broken by accumulated latency and
    then deterministically by the shared tie-breaking of the selection
    skeleton, so that all ASes running this algorithm make identical
    choices — the property on-demand routing relies on for optimality.

    Attributes:
        k: Number of beacons to select per egress interface.  The effective
            number is additionally capped by the RAC's per-interface limit.
    """

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise AlgorithmError(f"k must be at least 1, got {self.k}")
        self.name = f"{self.k}sp"

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the ``k`` hop-count-shortest beacons for every egress interface."""
        effective_limit = min(self.k, context.max_paths_per_interface)
        bounded = ExecutionContext(
            local_as=context.local_as,
            candidates=context.candidates,
            egress_interfaces=context.egress_interfaces,
            max_paths_per_interface=effective_limit,
            intra_latency_ms=context.intra_latency_ms,
            parameters=context.parameters,
        )
        return select_per_interface(bounded, self._score)

    @staticmethod
    def _score(
        candidate: CandidateBeacon, _egress_interface: int, _context: ExecutionContext
    ) -> Tuple[float, float]:
        beacon = candidate.beacon
        return (float(beacon.hop_count), beacon.total_latency_ms())

    def describe(self) -> str:
        return f"{self.k} shortest paths by AS-hop count"


def legacy_scion_algorithm() -> KShortestPathAlgorithm:
    """Return the legacy SCION selection: the 20 shortest paths per origin.

    This is the algorithm the paper runs both inside an on-demand RAC and in
    the legacy control service to compare the two implementations' latency
    and throughput (Figures 6 and 7).
    """
    return KShortestPathAlgorithm(k=LEGACY_PATH_COUNT)
