"""The link-avoiding algorithm behind pull-based disjointness (PD).

The paper's PD procedure (§VIII-B) lets an AS iteratively build a set of
link-disjoint paths to a target AS: starting from paths already discovered
by other algorithms (HD in the paper's setup), the AS originates
**on-demand, pull-based** PCBs whose embedded algorithm avoids propagating
over any link that already appears in the collected path set.  The target
AS returns the beacons that reach it; the origin adds the first returned
beacon of the iteration to its set and starts the next iteration with an
enlarged avoid set, until it holds the desired number of disjoint paths.

Two pieces implement this in the library:

* :class:`LinkAvoidingAlgorithm` (this module) — the algorithm carried in
  the PCBs and executed by every on-path on-demand RAC: it drops candidates
  that traverse a forbidden link and otherwise selects the shortest ones,
  and
* :class:`~repro.core.pull.PullBasedDisjointnessOrchestrator` — the
  origin-side iteration loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Sequence, Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
    select_per_interface,
)
from repro.exceptions import AlgorithmError
from repro.topology.entities import InterfaceID, LinkID, normalize_link_id


def freeze_links(links: Sequence[Tuple[InterfaceID, InterfaceID]]) -> FrozenSet[LinkID]:
    """Normalise and freeze a collection of links into an avoid set."""
    return frozenset(normalize_link_id(a, b) for a, b in links)


@dataclass
class LinkAvoidingAlgorithm(RoutingAlgorithm):
    """Select shortest beacons that do not traverse any forbidden link.

    The avoid set can be provided at construction time (when instantiated
    locally) or through the execution context's ``parameters["avoid_links"]``
    entry (when the algorithm is reconstructed from an on-demand payload);
    the union of both applies.

    Attributes:
        avoid_links: Links that selected beacons must not traverse.
        paths_per_interface: Number of beacons per egress interface.
    """

    avoid_links: FrozenSet[LinkID] = field(default_factory=frozenset)
    paths_per_interface: int = 1
    name: str = "link-avoiding"

    def __post_init__(self) -> None:
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )
        self.avoid_links = frozenset(normalize_link_id(a, b) for a, b in self.avoid_links)

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the shortest avoid-set-compliant beacons per egress interface."""
        bounded = ExecutionContext(
            local_as=context.local_as,
            candidates=context.candidates,
            egress_interfaces=context.egress_interfaces,
            max_paths_per_interface=min(
                self.paths_per_interface, context.max_paths_per_interface
            ),
            intra_latency_ms=context.intra_latency_ms,
            parameters=context.parameters,
        )
        return select_per_interface(bounded, self._score, admit=self._admit)

    def _forbidden(self, context: ExecutionContext) -> FrozenSet[LinkID]:
        extra = context.parameters.get("avoid_links", ())
        normalised = frozenset(normalize_link_id(tuple(a), tuple(b)) for a, b in extra)
        return self.avoid_links | normalised

    def _admit(
        self, candidate: CandidateBeacon, _egress_interface: int, context: ExecutionContext
    ) -> bool:
        forbidden = self._forbidden(context)
        if not forbidden:
            return True
        return not any(link in forbidden for link in candidate.beacon.links())

    @staticmethod
    def _score(
        candidate: CandidateBeacon, _egress_interface: int, _context: ExecutionContext
    ) -> Tuple[float, float]:
        beacon = candidate.beacon
        return (float(beacon.hop_count), beacon.total_latency_ms())

    def describe(self) -> str:
        return (
            f"shortest paths avoiding {len(self.avoid_links)} links, "
            f"{self.paths_per_interface} per interface"
        )
