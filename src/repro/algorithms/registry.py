"""Algorithm catalogue and payload (de)serialization.

On-demand routing ships algorithms by reference: the PCB carries an
algorithm identifier and the hash of its implementation, and executing ASes
fetch the payload from the origin AS, verify the hash, and run it inside a
sandbox (paper §IV-C, §V-C).  This module defines the payload format and
the catalogue that maps payloads back to executable
:class:`~repro.algorithms.base.RoutingAlgorithm` objects.

A payload is a JSON document with a ``kind`` discriminator:

``{"kind": "criteria_set", "spec": {...}, "paths_per_interface": n}``
    A declarative criteria set (see
    :meth:`repro.core.criteria.CriteriaSet.to_spec`), interpreted by
    :class:`~repro.algorithms.criteria_algorithm.CriteriaSetAlgorithm`.

``{"kind": "link_avoiding", "avoid_links": [...], "paths_per_interface": n}``
    The PD helper algorithm with an explicit link avoid set.

``{"kind": "builtin", "name": "...", "parameters": {...}}``
    One of the catalogued built-in algorithms with keyword parameters.

``{"kind": "restricted_python", "source": "..."}``
    A restricted Python scoring function, validated and executed by the
    sandbox (see :mod:`repro.core.sandbox`); the IREC analogue of shipping
    WebAssembly bytecode.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.bandwidth import (
    LatencyBoundedWidestAlgorithm,
    ShortestWidestAlgorithm,
    WidestPathAlgorithm,
)
from repro.algorithms.base import RoutingAlgorithm
from repro.algorithms.criteria_algorithm import CriteriaSetAlgorithm
from repro.algorithms.delay import DelayOptimizationAlgorithm
from repro.algorithms.disjointness import HeuristicDisjointnessAlgorithm
from repro.algorithms.pareto import ParetoDominantAlgorithm
from repro.algorithms.pull_disjoint import LinkAvoidingAlgorithm
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.criteria import CriteriaSet
from repro.exceptions import AlgorithmError, UnknownAlgorithmError
from repro.topology.entities import normalize_link_id

#: Signature of a builtin algorithm factory: keyword parameters -> algorithm.
AlgorithmFactory = Callable[..., RoutingAlgorithm]


@dataclass
class AlgorithmCatalog:
    """Registry of named algorithm factories.

    The catalogue corresponds to the *beta tier* of the paper's
    standardization model (§VI): a public, append-only list of algorithm
    names that ASes may deploy in static RACs or reference from builtin
    on-demand payloads.
    """

    _factories: Dict[str, AlgorithmFactory] = field(default_factory=dict)

    def register(self, name: str, factory: AlgorithmFactory) -> None:
        """Register a factory under ``name`` (append-only).

        Raises:
            AlgorithmError: If the name is already taken.
        """
        if name in self._factories:
            raise AlgorithmError(f"algorithm {name!r} is already registered")
        self._factories[name] = factory

    def create(self, name: str, **parameters: object) -> RoutingAlgorithm:
        """Instantiate the algorithm registered under ``name``.

        Raises:
            UnknownAlgorithmError: If no factory is registered for ``name``.
        """
        factory = self._factories.get(name)
        if factory is None:
            raise UnknownAlgorithmError(name)
        return factory(**parameters)

    def names(self) -> Tuple[str, ...]:
        """Return the registered algorithm names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories


def default_catalog() -> AlgorithmCatalog:
    """Return a catalogue pre-populated with every built-in algorithm."""
    catalog = AlgorithmCatalog()
    catalog.register("ksp", lambda k=1, **kw: KShortestPathAlgorithm(k=int(k)))
    catalog.register("1sp", lambda **kw: KShortestPathAlgorithm(k=1))
    catalog.register("5sp", lambda **kw: KShortestPathAlgorithm(k=5))
    catalog.register("20sp", lambda **kw: KShortestPathAlgorithm(k=20))
    catalog.register(
        "delay",
        lambda paths_per_interface=1, use_extended_paths=False, **kw: DelayOptimizationAlgorithm(
            paths_per_interface=int(paths_per_interface),
            use_extended_paths=bool(use_extended_paths),
        ),
    )
    catalog.register(
        "hd",
        lambda paths_per_interface=1, remember_propagations=True, **kw: HeuristicDisjointnessAlgorithm(
            paths_per_interface=int(paths_per_interface),
            remember_propagations=bool(remember_propagations),
        ),
    )
    catalog.register(
        "widest",
        lambda paths_per_interface=1, **kw: WidestPathAlgorithm(
            paths_per_interface=int(paths_per_interface)
        ),
    )
    catalog.register(
        "shortest-widest",
        lambda paths_per_interface=1, **kw: ShortestWidestAlgorithm(
            paths_per_interface=int(paths_per_interface)
        ),
    )
    catalog.register(
        "widest-bounded",
        lambda latency_bound_ms=30.0, paths_per_interface=1, **kw: LatencyBoundedWidestAlgorithm(
            latency_bound_ms=float(latency_bound_ms),
            paths_per_interface=int(paths_per_interface),
        ),
    )
    catalog.register("pareto", lambda **kw: ParetoDominantAlgorithm())
    catalog.register(
        "link-avoiding",
        lambda paths_per_interface=1, **kw: LinkAvoidingAlgorithm(
            paths_per_interface=int(paths_per_interface)
        ),
    )
    return catalog


# ----------------------------------------------------------------------
# on-demand payload (de)serialization
# ----------------------------------------------------------------------
def encode_criteria_payload(criteria_set: CriteriaSet, paths_per_interface: int = 1) -> bytes:
    """Serialize a criteria-set algorithm into an on-demand payload."""
    document = {
        "kind": "criteria_set",
        "spec": criteria_set.to_spec(),
        "paths_per_interface": int(paths_per_interface),
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def encode_link_avoiding_payload(
    avoid_links: Sequence, paths_per_interface: int = 1
) -> bytes:
    """Serialize a link-avoiding (PD helper) algorithm into a payload."""
    normalised = sorted(
        normalize_link_id(tuple(map(int, a)), tuple(map(int, b))) for a, b in avoid_links
    )
    document = {
        "kind": "link_avoiding",
        "avoid_links": [[list(a), list(b)] for a, b in normalised],
        "paths_per_interface": int(paths_per_interface),
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def encode_builtin_payload(name: str, parameters: Optional[Mapping[str, object]] = None) -> bytes:
    """Serialize a reference to a catalogued builtin algorithm."""
    document = {
        "kind": "builtin",
        "name": name,
        "parameters": dict(parameters or {}),
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def encode_restricted_python_payload(source: str, paths_per_interface: int = 1) -> bytes:
    """Serialize a restricted-Python scoring payload (see :mod:`repro.core.sandbox`)."""
    document = {
        "kind": "restricted_python",
        "source": source,
        "paths_per_interface": int(paths_per_interface),
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_payload(
    payload: bytes, catalog: Optional[AlgorithmCatalog] = None
) -> RoutingAlgorithm:
    """Reconstruct a routing algorithm from an on-demand payload.

    Args:
        payload: The payload bytes as fetched from the origin AS.
        catalog: Catalogue used to resolve ``builtin`` payloads; defaults to
            :func:`default_catalog`.

    Raises:
        AlgorithmError: If the payload is malformed or of unknown kind.
    """
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise AlgorithmError(f"malformed algorithm payload: {exc}") from exc
    if not isinstance(document, dict) or "kind" not in document:
        raise AlgorithmError("algorithm payload must be an object with a 'kind' field")

    kind = document["kind"]
    if kind == "criteria_set":
        criteria_set = CriteriaSet.from_spec(document["spec"])
        return CriteriaSetAlgorithm(
            criteria_set=criteria_set,
            paths_per_interface=int(document.get("paths_per_interface", 1)),
        )
    if kind == "link_avoiding":
        raw_links: List = document.get("avoid_links", [])
        links = [
            (tuple(int(x) for x in a), tuple(int(x) for x in b)) for a, b in raw_links
        ]
        return LinkAvoidingAlgorithm(
            avoid_links=frozenset(normalize_link_id(a, b) for a, b in links),
            paths_per_interface=int(document.get("paths_per_interface", 1)),
        )
    if kind == "builtin":
        effective_catalog = catalog or default_catalog()
        parameters = document.get("parameters", {})
        if not isinstance(parameters, dict):
            raise AlgorithmError("builtin payload parameters must be an object")
        return effective_catalog.create(str(document["name"]), **parameters)
    if kind == "restricted_python":
        # Imported lazily to avoid a circular import at module load time
        # (the sandbox imports the algorithm base classes).
        from repro.core.sandbox import RestrictedPythonAlgorithm

        return RestrictedPythonAlgorithm(
            source=str(document["source"]),
            paths_per_interface=int(document.get("paths_per_interface", 1)),
        )
    raise AlgorithmError(f"unknown algorithm payload kind {kind!r}")
