"""Heuristic disjointness (HD).

HD is the disjointness heuristic of Krähenbühl et al. that the paper
deploys as a static RAC (§VIII-B): for each origin AS, it greedily builds a
set of paths that reuse as few inter-domain links as possible, so that the
registered path set tolerates many link failures (the TLF metric of
Figure 8b).

The algorithm keeps per-(egress interface, origin) state across executions:

* on the first execution for a pair it fills its quota with the
  minimum-overlap candidates (greedy set cover of links), and
* on subsequent executions it only propagates candidates that are
  **completely link-disjoint** from everything it propagated before for
  that pair.

The second rule reproduces the behaviour the paper reports in Figure 8c —
"interfaces on which PCBs have been propagated before are avoided in
subsequent periods", giving HD a much lower steady-state overhead than the
uniform-propagation algorithms — while still letting the registered
disjointness grow as genuinely new disjoint paths appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
)
from repro.exceptions import AlgorithmError
from repro.topology.entities import LinkID


@dataclass
class _PairState:
    """Persisted HD state for one (egress interface, origin AS) pair."""

    used_links: Dict[LinkID, int] = field(default_factory=dict)
    served_digests: Set[str] = field(default_factory=set)
    first_round_done: bool = False


@dataclass
class HeuristicDisjointnessAlgorithm(RoutingAlgorithm):
    """Greedy link-disjointness maximization per origin AS.

    Attributes:
        paths_per_interface: Number of beacons selected per egress
            interface and origin in the first round (capped by the RAC
            limit).
        remember_propagations: Whether to keep the per-pair state across
            executions (the paper's low-steady-state-overhead behaviour).
            Disabling it makes every execution behave like a first round,
            which is useful for isolated unit tests.
    """

    paths_per_interface: int = 1
    remember_propagations: bool = True
    name: str = "hd"
    _state: Dict[Tuple[int, int], _PairState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.paths_per_interface < 1:
            raise AlgorithmError(
                f"paths_per_interface must be at least 1, got {self.paths_per_interface}"
            )

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Select maximally link-disjoint beacons for every egress interface."""
        result = ExecutionResult()
        limit = min(self.paths_per_interface, context.max_paths_per_interface)
        if limit <= 0:
            return result

        loop_free = [
            candidate
            for candidate in context.candidates
            if not candidate.beacon.contains_as(context.local_as)
        ]
        if not loop_free:
            return result
        origin = loop_free[0].beacon.origin_as

        for egress_interface in context.egress_interfaces:
            state = self._state_for(egress_interface, origin)
            selected = self._select_for_pair(loop_free, state, limit)
            for candidate in selected:
                result.add(egress_interface, candidate.beacon)
            if self.remember_propagations:
                self._persist(state, selected)
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _state_for(self, egress_interface: int, origin: int) -> _PairState:
        if not self.remember_propagations:
            return _PairState()
        return self._state.setdefault((egress_interface, origin), _PairState())

    def _select_for_pair(
        self, candidates: List[CandidateBeacon], state: _PairState, limit: int
    ) -> List[CandidateBeacon]:
        """Greedy minimum-overlap selection for one (interface, origin) pair."""
        used: Dict[LinkID, int] = dict(state.used_links)
        remaining = [
            candidate
            for candidate in candidates
            if candidate.beacon.digest() not in state.served_digests
        ]
        selected: List[CandidateBeacon] = []
        while remaining and len(selected) < limit:
            best = min(remaining, key=lambda candidate: self._score(candidate, used))
            overlap = sum(used.get(link, 0) for link in best.beacon.links())
            if state.first_round_done and overlap > 0:
                # Steady state: only propagate paths that add entirely new
                # links; anything overlapping was covered in earlier rounds.
                break
            remaining.remove(best)
            selected.append(best)
            for link in best.beacon.links():
                used[link] = used.get(link, 0) + 1
        return selected

    def _persist(self, state: _PairState, selected: List[CandidateBeacon]) -> None:
        for candidate in selected:
            state.served_digests.add(candidate.beacon.digest())
            for link in candidate.beacon.links():
                state.used_links[link] = state.used_links.get(link, 0) + 1
        state.first_round_done = True

    @staticmethod
    def _score(
        candidate: CandidateBeacon, used_links: Dict[LinkID, int]
    ) -> Tuple[int, int, float, Tuple[int, ...]]:
        beacon = candidate.beacon
        overlap = sum(used_links.get(link, 0) for link in beacon.links())
        return (overlap, beacon.hop_count, beacon.total_latency_ms(), beacon.as_path())

    def reset_memory(self) -> None:
        """Forget all per-pair state (used between simulations)."""
        self._state.clear()

    def describe(self) -> str:
        return (
            f"heuristic link disjointness, {self.paths_per_interface} per interface, "
            f"{'with' if self.remember_propagations else 'without'} propagation memory"
        )
