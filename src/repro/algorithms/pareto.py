"""Pareto dominant-path algorithm (the Sobrinho-style related-work baseline).

The paper contrasts IREC with the approach of Sobrinho et al. (§X): define
a partial order over the intersection of all criteria and keep every
*dominant* (non-dominated) path.  That guarantees optimality for every
criterion in the intersection but the number of incomparable paths — and
with it the communication cost — grows quickly with the number of criteria.

This module implements that baseline so the trade-off can be measured: the
ablation benchmark compares the number of beacons the Pareto algorithm
propagates against IREC's parallel single-criterion RACs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.algorithms.base import (
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
)
from repro.core.algebra import BANDWIDTH, LATENCY, MetricDefinition, pareto_frontier
from repro.core.criteria import StandardMetrics
from repro.exceptions import AlgorithmError
from repro.obs import spans as _spans


@dataclass
class ParetoDominantAlgorithm(RoutingAlgorithm):
    """Propagate every non-dominated beacon under a set of metrics.

    Attributes:
        metrics: Metrics defining the partial order (default: latency and
            bottleneck bandwidth).
        max_paths_per_interface: Optional additional cap; ``None`` keeps the
            full dominant set (subject to the RAC's own configured limit),
            which is precisely the behaviour whose cost the paper criticises.
    """

    metrics: Tuple[MetricDefinition, ...] = (LATENCY, BANDWIDTH)
    max_paths_per_interface: int = 0
    name: str = "pareto-dominant"

    def __post_init__(self) -> None:
        if not self.metrics:
            raise AlgorithmError("pareto algorithm needs at least one metric")
        if len({metric.name for metric in self.metrics}) != len(self.metrics):
            raise AlgorithmError("pareto metrics must be distinct")

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Return the dominant set of the bucket, per egress interface."""
        result = ExecutionResult()
        limit = context.max_paths_per_interface
        if self.max_paths_per_interface > 0:
            limit = min(limit, self.max_paths_per_interface)
        if limit <= 0:
            return result

        loop_free = [
            candidate.beacon
            for candidate in context.candidates
            if not candidate.beacon.contains_as(context.local_as)
        ]
        dominant = self.dominant_set(loop_free)
        # Deterministic tie-break: hop count, accumulated latency, then the
        # memoized digest as the canonical identity.  The dominant set is
        # capped once, before the per-interface fan-out.
        dominant.sort(
            key=lambda beacon: (beacon.hop_count, beacon.total_latency_ms(), beacon.digest())
        )
        del dominant[limit:]
        for egress_interface in context.egress_interfaces:
            for beacon in dominant:
                result.add(egress_interface, beacon)
        return result

    def dominant_set(self, beacons: Sequence) -> List:
        """Return the non-dominated beacons under :attr:`metrics`."""
        frame = _spans.push("algo.pareto") if _spans.ENABLED else None
        try:
            labelled = [
                (beacon, StandardMetrics.vector_for(self.metrics, beacon))
                for beacon in beacons
            ]
            return [beacon for beacon, _vector in pareto_frontier(labelled)]
        finally:
            if frame is not None:
                _spans.pop(frame)

    def describe(self) -> str:
        names = ", ".join(metric.name for metric in self.metrics)
        return f"all dominant paths under ({names})"
