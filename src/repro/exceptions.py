"""Exception hierarchy for the IREC reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or an entity lookup fails."""


class UnknownASError(TopologyError):
    """Raised when an AS identifier is not present in the topology."""

    def __init__(self, as_id: object) -> None:
        super().__init__(f"unknown AS: {as_id!r}")
        self.as_id = as_id


class UnknownInterfaceError(TopologyError):
    """Raised when an interface identifier does not exist on an AS."""

    def __init__(self, as_id: object, interface_id: object) -> None:
        super().__init__(f"AS {as_id!r} has no interface {interface_id!r}")
        self.as_id = as_id
        self.interface_id = interface_id


class UnknownLinkError(TopologyError):
    """Raised when no inter-domain link exists between two interfaces."""


class BeaconError(ReproError):
    """Raised when a PCB is malformed or fails validation."""


class SignatureError(BeaconError):
    """Raised when a PCB signature does not verify."""


class ExpiredBeaconError(BeaconError):
    """Raised when an operation is attempted on an expired PCB."""


class LoopError(BeaconError):
    """Raised when extending a PCB would create an AS-level loop."""


class ExtensionError(BeaconError):
    """Raised when a PCB extension is malformed or duplicated."""


class PolicyViolationError(BeaconError):
    """Raised when a PCB violates the local AS routing policy."""


class AlgebraError(ReproError):
    """Raised when routing-algebra operations are applied inconsistently."""


class AlgorithmError(ReproError):
    """Raised when a routing algorithm misbehaves or is misconfigured."""


class UnknownAlgorithmError(AlgorithmError):
    """Raised when an algorithm identifier cannot be resolved."""

    def __init__(self, algorithm_id: object) -> None:
        super().__init__(f"unknown algorithm: {algorithm_id!r}")
        self.algorithm_id = algorithm_id


class AlgorithmIntegrityError(AlgorithmError):
    """Raised when a fetched on-demand algorithm fails hash verification."""


class SandboxError(AlgorithmError):
    """Base class for sandbox failures."""


class SandboxViolationError(SandboxError):
    """Raised when a payload uses a forbidden construct."""


class SandboxResourceError(SandboxError):
    """Raised when a payload exceeds its step or memory budget."""


class GatewayError(ReproError):
    """Raised by the ingress or egress gateway on invalid operations."""


class RACError(ReproError):
    """Raised when a routing algorithm container is misconfigured."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulation engine."""


class DataPlaneError(ReproError):
    """Raised by data-plane components (routers, packets, end hosts)."""


class ForwardingError(DataPlaneError):
    """Raised when a packet cannot be forwarded along its path."""


class PathConstructionError(DataPlaneError):
    """Raised when a forwarding path cannot be built from a segment."""


class ConfigurationError(ReproError):
    """Raised when a component receives an invalid configuration."""
