"""Bind the repo's scattered counters into the metrics registry.

Every pre-existing instrumentation surface — ``MetricsCollector`` fields,
the ``repro.crypto`` perf counters, ``SimulatedTransport`` inbox stats,
``TrafficEngine`` round stats, the scheduler heap — registers here as
*callback gauges*: the registry polls them at ``snapshot()`` time, so
binding a simulation adds **zero** hot-path cost (no simulation code path
ever calls into the registry).  One ``registry.snapshot()`` after a bind
therefore returns the whole system's state.

Callback gauges are rebound on every call (``Gauge.bind``), so binding a
fresh simulation to the process-global :data:`~repro.obs.registry.REGISTRY`
replaces a previous run's callbacks instead of reading dead objects.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import perf_counters
from repro.obs.registry import REGISTRY, MetricsRegistry

#: The crypto perf-counter keys exported as gauges (process-global,
#: cumulative — reset via ``repro.crypto.hashing.reset_perf_counters``).
CRYPTO_COUNTER_KEYS = (
    "beacon_digest",
    "beacon_encode",
    "signature_sign",
    "signature_verify",
)


def bind_crypto(registry: Optional[MetricsRegistry] = None) -> None:
    """Expose the process-global crypto perf counters as gauges."""
    registry = registry if registry is not None else REGISTRY
    for key in CRYPTO_COUNTER_KEYS:
        registry.gauge(
            f"crypto.{key}_total",
            help=f"cumulative {key} operations (process-global perf counter)",
            fn=lambda _key=key: perf_counters().get(_key, 0),
        )


def bind_simulation(simulation, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register a :class:`BeaconingSimulation`'s state surfaces; return the registry.

    Everything is a callback gauge over objects the simulation already
    maintains: collector totals, overload/aggregation ledgers, queue-delay
    distribution, per-AS inbox backlog and high-water marks, scheduler
    heap size.  Call once after constructing the simulation.
    """
    registry = registry if registry is not None else REGISTRY
    collector = simulation.collector
    scheduler = simulation.scheduler
    transport = simulation.transport
    gauge = registry.gauge

    gauge("sim.pcbs_sent_total", help="PCB transmissions recorded",
          fn=lambda: collector.total_sent)
    gauge("sim.pcbs_dropped_total", help="PCBs lost on unavailable links",
          fn=lambda: collector.total_dropped)
    gauge("sim.revocations_total", help="revocation message transmissions",
          fn=lambda: collector.total_revocations)
    gauge("sim.revocations_dropped_total", help="revocations lost in flight",
          fn=lambda: collector.revocations_dropped)
    gauge("sim.registrations_total", help="path-registration transmissions",
          fn=lambda: collector.total_registrations)
    gauge("sim.control_messages_total", help="all control-plane messages sent",
          fn=collector.control_messages_total)
    gauge("sim.returned_beacons_total", help="pull-based beacon returns",
          fn=collector.returned_beacons)
    gauge("sim.gray_dropped", label="kind",
          help="messages silently lost to degraded links, per kind",
          fn=lambda: dict(collector.gray_dropped))
    gauge("sim.periods_run", help="completed beaconing periods",
          fn=lambda: simulation.periods_run)

    # Driver-side revocation aggregation (how many simultaneous failures
    # were batched into each multi-element RevocationMessage).
    gauge("sim.revocation_batches_total",
          help="aggregated revocation originations (one flood per origin per tick)",
          fn=lambda: collector.revocation_batches)
    gauge("sim.revocation_batch_elements_total",
          help="failed elements carried by aggregated revocation originations",
          fn=lambda: collector.revocation_batch_elements)
    gauge("sim.revocation_batch_elements_max",
          help="most elements batched into one revocation origination",
          fn=lambda: collector.revocation_batch_max)
    gauge("sim.revocation_multi_batches_total",
          help="originations batching more than one simultaneous failure",
          fn=lambda: collector.revocation_multi_batches)

    # Overload accounting (bounded, rate-limited inboxes).
    gauge("fabric.inbox_dropped", label="kind",
          help="messages tail-dropped by bounded inboxes, per kind",
          fn=lambda: dict(collector.inbox_dropped))
    gauge("fabric.inbox_marked", label="kind",
          help="messages congestion-marked by bounded inboxes, per kind",
          fn=lambda: dict(collector.inbox_marked))
    gauge("fabric.inbox_deferred", label="kind",
          help="messages serviced after their arrival tick, per kind",
          fn=lambda: dict(collector.inbox_deferred))
    gauge("fabric.queue_high_water", label="as_id",
          help="deepest inbox queue observed, per AS",
          fn=lambda: {str(k): v for k, v in collector.queue_high_water_marks().items()})
    gauge("fabric.queue_delay_ms", label="stat",
          help="queueing-delay distribution of serviced messages (ms)",
          fn=collector.queue_delay_stats)
    gauge("fabric.inbox_backlog", label="as_id",
          help="delivered messages awaiting drain, per AS",
          fn=lambda: {
              str(as_id): transport.pending_messages(as_id)
              for as_id in sorted(simulation.services)
          })

    gauge("scheduler.queue_size", help="events currently on the heap",
          fn=lambda: scheduler.queue_size)
    gauge("scheduler.processed_events_total", help="events dispatched so far",
          fn=lambda: scheduler.processed_events)
    gauge("scheduler.now_ms", help="current simulated time (ms)",
          fn=lambda: scheduler.now_ms)

    # The path-query serving tier: fabric-side message counts plus the
    # per-AS frontends' serving counters, aggregated across the topology.
    gauge("query.messages_total", help="path-query message transmissions",
          fn=lambda: collector.total_queries)
    gauge("query.responses_total", help="path-query-response transmissions",
          fn=lambda: collector.total_query_responses)

    def _frontends():
        for service in simulation.services.values():
            frontend = getattr(service, "query_frontend", None)
            if frontend is not None:
                yield frontend

    def _sum(attr):
        return lambda: sum(getattr(f, attr) for f in _frontends())

    def _hit_ratio():
        lookups = hits = 0
        for frontend in _frontends():
            lookups += frontend.lookups
            hits += frontend.hits
        return hits / lookups if lookups else 0.0

    gauge("query.lookups_total", help="path lookups served by query frontends",
          fn=_sum("lookups"))
    gauge("query.cache_hits_total", help="lookups served from the response cache",
          fn=_sum("hits"))
    gauge("query.cache_misses_total", help="lookups that materialized a response",
          fn=_sum("misses"))
    gauge("query.cache_invalidations_total",
          help="cached responses dropped by registration/withdrawal/expiry",
          fn=_sum("invalidations"))
    gauge("query.cache_evictions_total", help="cached responses evicted by the LRU bound",
          fn=_sum("evictions"))
    gauge("query.negative_hits_total", help="lookups served from cached empty responses",
          fn=_sum("negative_hits"))
    gauge("query.negative_inserts_total", help="empty responses cached as negative entries",
          fn=_sum("negative_inserts"))
    gauge("query.cache_hit_ratio", help="hits over lookups across all frontends",
          fn=_hit_ratio)

    bind_crypto(registry)
    return registry


def bind_query_frontend(
    frontend, name: str = "query", registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Register one :class:`PathQueryFrontend`'s counters; return the registry.

    For standalone serving setups (benchmarks, unit harnesses) that have a
    frontend without a full simulation around it.
    """
    registry = registry if registry is not None else REGISTRY
    gauge = registry.gauge
    gauge(f"{name}.lookups_total", help="path lookups served",
          fn=lambda: frontend.lookups)
    gauge(f"{name}.cache_hits_total", help="lookups served from cache",
          fn=lambda: frontend.hits)
    gauge(f"{name}.cache_misses_total", help="lookups that materialized",
          fn=lambda: frontend.misses)
    gauge(f"{name}.cache_invalidations_total", help="cached responses invalidated",
          fn=lambda: frontend.invalidations)
    gauge(f"{name}.cache_hit_ratio", help="hits over lookups",
          fn=lambda: frontend.cache_hit_ratio)
    gauge(f"{name}.cache_size", help="materialized responses currently cached",
          fn=lambda: frontend.cache_size)
    return registry


def bind_parallel(coordinator, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register a :class:`ShardedBeaconingSimulation`'s sync surfaces.

    Coordinator-side only — per-shard metrics live in the worker
    processes and arrive merged at gather time.  What the coordinator
    can see live is the synchronization story: cross-shard traffic, time
    spent blocked on worker replies, and per-worker utilization.
    """
    registry = registry if registry is not None else REGISTRY
    gauge = registry.gauge

    gauge("parallel.workers", help="shard worker processes",
          fn=lambda: coordinator.workers)
    gauge("parallel.lookahead_ms", help="conservative cross-shard lookahead (ms)",
          fn=lambda: coordinator._lookahead_ms)
    gauge("parallel.cross_shard_messages_total",
          help="fabric messages exported across shard boundaries",
          fn=lambda: coordinator.cross_shard_messages)
    gauge("parallel.cross_shard_bytes_total",
          help="serialized bytes shipped between shards",
          fn=lambda: coordinator.cross_shard_bytes)
    gauge("parallel.barrier_wait_s",
          help="coordinator time spent blocked on worker replies",
          fn=lambda: coordinator.barrier_wait_s)
    gauge("parallel.worker_utilization", label="worker",
          help="per-worker busy-time fraction since construction",
          fn=lambda: {
              str(index): value
              for index, value in enumerate(coordinator.utilization())
          })
    return registry


def bind_traffic_engine(engine, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register a :class:`TrafficEngine`'s round stats; return the registry."""
    registry = registry if registry is not None else REGISTRY
    collector = engine.collector
    gauge = registry.gauge

    gauge("traffic.rounds_run", help="traffic rounds executed",
          fn=lambda: engine.rounds_run)
    gauge("traffic.flow_rounds_total", help="flow-rounds simulated",
          fn=lambda: engine.rounds_run * engine.total_flows())

    def _last(attr):
        def read():
            samples = collector.samples
            return getattr(samples[-1], attr) if samples else 0.0
        return read

    gauge("traffic.offered_mbps", help="offered demand of the latest round",
          fn=_last("offered_mbps"))
    gauge("traffic.carried_mbps", help="carried traffic of the latest round",
          fn=_last("carried_mbps"))
    gauge("traffic.blackholed_groups", help="groups without a usable path",
          fn=_last("blackholed_groups"))
    gauge("traffic.max_link_utilization", help="peak link utilization",
          fn=_last("max_link_utilization"))
    return registry
