"""Pluggable exporters over a :class:`~repro.obs.registry.MetricsRegistry`.

Two text formats:

* **Prometheus exposition text** (:func:`prometheus_text`) — the
  ``# HELP`` / ``# TYPE`` / sample-line format every metrics stack can
  scrape.  Counters and scalar gauges export one sample; labeled gauges
  export one sample per label value; histograms export summary-style
  quantile samples plus ``_count`` / ``_sum`` / ``_max``.
  :func:`parse_prometheus_text` parses the format back into
  ``{(name, labels): value}`` — the round-trip the observatory tests pin.

* **JSONL** time-series records are *not* produced here: the sampler
  (:mod:`repro.obs.timeseries`) emits records conforming to
  ``benchmarks/result_logger.py``'s schema, reusing the sweep harness's
  validated logger instead of inventing a second JSON shape.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple, Union

from repro.obs.registry import Histogram, MetricsRegistry

Number = Union[int, float]
#: A parsed sample key: (metric name, sorted (label, value) pairs).
SampleKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def sanitize_metric_name(name: str) -> str:
    """Map a registry name to a legal Prometheus metric name."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_number(value: Number) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render the registry in Prometheus exposition text format."""
    lines = []
    for name in registry.names():
        metric = registry.get(name)
        full = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
        if metric.help:
            lines.append(f"# HELP {full} {metric.help}")
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {full} summary")
            stats = metric.value
            for q_label, q_key in (("0.5", "p50"), ("0.99", "p99")):
                lines.append(f'{full}{{quantile="{q_label}"}} {_format_number(stats[q_key])}')
            lines.append(f"{full}_count {_format_number(stats['count'])}")
            lines.append(f"{full}_sum {_format_number(metric.reservoir.total)}")
            lines.append(f"{full}_max {_format_number(stats['max'])}")
            continue
        lines.append(f"# TYPE {full} {metric.kind}")
        value = metric.value
        if isinstance(value, dict):
            label = getattr(metric, "label", None) or "key"
            for key in sorted(value, key=str):
                lines.append(f'{full}{{{label}="{key}"}} {_format_number(value[key])}')
        else:
            lines.append(f"{full} {_format_number(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[SampleKey, float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Comment/blank lines are skipped; a malformed sample line raises
    ``ValueError`` naming its line number.  This is a consumer-grade
    parser for the subset :func:`prometheus_text` emits — enough for the
    round-trip tests and for asserting CI artifacts are well-formed.
    """
    samples: Dict[SampleKey, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample line {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted((pair.group("key"), pair.group("value"))
                   for pair in _LABEL_PAIR.finditer(labels_text))
        )
        samples[(match.group("name"), labels)] = float(match.group("value"))
    return samples


def registry_samples(
    registry: MetricsRegistry, prefix: str = "repro"
) -> Dict[SampleKey, float]:
    """Return the registry's state keyed exactly like the parser's output.

    The reference the round-trip test compares against:
    ``parse_prometheus_text(prometheus_text(r)) == registry_samples(r)``.
    """
    samples: Dict[SampleKey, float] = {}
    for name in registry.names():
        metric = registry.get(name)
        full = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
        if isinstance(metric, Histogram):
            stats = metric.value
            samples[(full, (("quantile", "0.5"),))] = float(stats["p50"])
            samples[(full, (("quantile", "0.99"),))] = float(stats["p99"])
            samples[(f"{full}_count", ())] = float(stats["count"])
            samples[(f"{full}_sum", ())] = float(metric.reservoir.total)
            samples[(f"{full}_max", ())] = float(stats["max"])
            continue
        value = metric.value
        if isinstance(value, dict):
            label = getattr(metric, "label", None) or "key"
            for key, item in value.items():
                samples[(full, ((label, str(key)),))] = float(item)
        else:
            samples[(full, ())] = float(value)
    return samples
