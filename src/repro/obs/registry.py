"""Typed metrics registry: one named surface over the scattered counters.

Three handle types cover the repo's existing instrumentation idioms:

* :class:`Counter` — a monotonically increasing count (messages sent,
  signatures verified).
* :class:`Gauge` — a point-in-time value.  A gauge can be *owned*
  (``set()`` by the producer) or a *callback* gauge wrapping a
  zero-argument function that is polled at :meth:`MetricsRegistry.snapshot`
  time; callback gauges are how the pre-existing ad-hoc counters
  (``MetricsCollector`` fields, crypto perf counters, inbox stats,
  scheduler heap size) register without any hot-path cost — see
  :mod:`repro.obs.bridge`.  A *labeled* callback gauge returns a
  ``{label_value: number}`` mapping (one time series per AS, say).
* :class:`Histogram` — a value distribution over a bounded, deterministic
  reservoir sample (:class:`QuantileReservoir`), with exact count/sum/max.

All handles are registered get-or-create by name in a
:class:`MetricsRegistry`; the process-global :data:`REGISTRY` is the one
the simulation bridge and exporters use by default.  ``snapshot()``
returns the whole system's state as one plain dict — the payload the
Prometheus-text exporter and the time-series sampler consume.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError

Number = Union[int, float]


class QuantileReservoir:
    """Bounded uniform sample of a value stream with exact count/sum/max.

    Algorithm R reservoir sampling over a fixed-capacity buffer: every
    observation is included with probability ``capacity / count``, so the
    retained sample stays uniform over the whole stream while memory is
    bounded — the fix for the previously unbounded
    ``MetricsCollector._queue_delays`` list.  The replacement RNG is a
    private ``random.Random(seed)``, keeping runs deterministic and the
    global RNG (which simulations may seed) untouched.

    Count, sum (hence mean) and max are tracked exactly; quantiles are
    estimated from the sample — exact until the stream outgrows
    ``capacity``, then a uniform-sample estimate.
    """

    __slots__ = ("capacity", "count", "total", "max_value", "_sample", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._sample: List[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Fold one observation into the reservoir."""
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        sample = self._sample
        if len(sample) < self.capacity:
            sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                sample[slot] = value

    @property
    def sample_size(self) -> int:
        """Return how many observations the reservoir currently retains."""
        return len(self._sample)

    def merge_from(self, other: "QuantileReservoir") -> None:
        """Fold another reservoir into this one (sharded-run aggregation).

        Count, sum and max stay exact.  The merged sample concatenates
        both samples up to capacity (deterministically, no RNG draw) —
        exact while the combined stream fits, an approximation beyond,
        which matches the reservoir's own guarantee.
        """
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        room = self.capacity - len(self._sample)
        if room > 0:
            self._sample.extend(other._sample[:room])

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile estimate (0.0 when empty).

        Uses the same index convention as the original
        ``MetricsCollector.queue_delay_stats`` (``sorted[min(n-1,
        int(q*n))]``), so stats are bit-identical for streams that fit the
        reservoir.
        """
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        size = len(ordered)
        return ordered[min(size - 1, int(q * size))]

    def stats(self) -> Dict[str, float]:
        """Return ``{count, mean, max, p50, p99}`` of the stream."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        ordered = sorted(self._sample)
        size = len(ordered)
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "max": self.max_value,
            "p50": ordered[min(size - 1, int(0.50 * size))],
            "p99": ordered[min(size - 1, int(0.99 * size))],
        }

    def clear(self) -> None:
        """Drop all observations (the RNG stream position is kept)."""
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._sample.clear()


class Counter:
    """A monotonically increasing named count."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: Number = 1) -> None:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name}: negative increment {amount}")
        self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        self._value = 0


class Gauge:
    """A point-in-time value, owned (``set``) or callback-backed.

    A callback gauge polls ``fn()`` at read time; with ``label`` set the
    callback must return a ``{label_value: number}`` mapping and the
    gauge exports one sample per key.
    """

    kind = "gauge"
    __slots__ = ("name", "help", "label", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], Union[Number, Dict[str, Number]]]] = None,
        label: Optional[str] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.label = label
        self._value: Number = 0
        self._fn = fn

    def set(self, value: Number) -> None:
        """Set an owned gauge's value (not valid for callback gauges)."""
        if self._fn is not None:
            raise ConfigurationError(f"gauge {self.name} is callback-backed; cannot set()")
        self._value = value

    def bind(
        self,
        fn: Callable[[], Union[Number, Dict[str, Number]]],
        label: Optional[str] = None,
    ) -> None:
        """(Re)bind the callback — rebinding lets a fresh simulation take
        over a name registered by a previous one in the global registry."""
        self._fn = fn
        self.label = label

    @property
    def value(self) -> Union[Number, Dict[str, Number]]:
        if self._fn is not None:
            return self._fn()
        return self._value

    def reset(self) -> None:
        if self._fn is None:
            self._value = 0


class Histogram:
    """A named value distribution over a :class:`QuantileReservoir`."""

    kind = "histogram"
    __slots__ = ("name", "help", "reservoir")

    def __init__(
        self, name: str, help: str = "", capacity: int = 4096, seed: int = 0
    ) -> None:
        self.name = name
        self.help = help
        self.reservoir = QuantileReservoir(capacity=capacity, seed=seed)

    def observe(self, value: float) -> None:
        self.reservoir.observe(value)

    @property
    def value(self) -> Dict[str, float]:
        return self.reservoir.stats()

    def reset(self) -> None:
        self.reservoir.clear()


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named, typed, get-or-create metric registry.

    Asking for an existing name with the same kind returns the existing
    handle (so decoupled modules can share a metric by name alone);
    asking with a different kind raises — silently shadowing a counter
    with a gauge would corrupt whatever dashboards read the snapshot.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a {metric.kind}, "
                    f"not a {kind}"
                )
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        return self._get_or_create(name, "counter", lambda: Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], Union[Number, Dict[str, Number]]]] = None,
        label: Optional[str] = None,
    ) -> Gauge:
        """Return (creating if needed) the gauge called ``name``.

        Passing ``fn`` (re)binds the callback even on an existing gauge:
        binding a new simulation to the process-global registry must
        replace the previous run's callbacks, not silently keep reading
        dead objects.
        """
        gauge = self._get_or_create(name, "gauge", lambda: Gauge(name, help, fn, label))
        if fn is not None and gauge._fn is not fn:
            gauge.bind(fn, label)
        return gauge

    def histogram(
        self, name: str, help: str = "", capacity: int = 4096, seed: int = 0
    ) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, help, capacity, seed)
        )

    def get(self, name: str) -> Optional[Metric]:
        """Return the metric called ``name``, if registered."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Return all registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Union[Number, Dict]]:
        """Return the whole system's state as one plain dict.

        Counters and scalar gauges map to numbers; labeled gauges map to
        ``{label_value: number}`` dicts; histograms map to their
        ``stats()`` dicts.  Callback gauges are polled here — this is the
        only moment the registry touches live simulation objects.
        """
        return {name: self._metrics[name].value for name in sorted(self._metrics)}

    def reset(self) -> None:
        """Zero every owned value (callback gauges are left bound)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Unregister everything (tests; fresh binds start clean)."""
        self._metrics.clear()


#: The process-global registry the bridge and exporters default to.
REGISTRY = MetricsRegistry()
