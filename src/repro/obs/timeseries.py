"""Per-beaconing-period time-series sampling of key gauges.

A :class:`TelemetrySampler` hooks a ``BeaconingSimulation``'s period
listener (fired once at the end of every period — never on a message
path) and snapshots the headline rates and distributions: PCBs per
second, crypto operations per second, queue-delay p50/p99, inbox backlog
per AS.  Rates are computed against *host* wall-clock deltas between
period boundaries (``time.perf_counter``), which is what a throughput
investigation wants; simulated time is carried alongside.

Samples stream out through ``benchmarks/result_logger.py``'s validated
JSONL schema (:meth:`TelemetrySampler.to_records`) so the existing sweep
tooling — including ``plot_results.py`` and its SVG timeline — consumes
them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from repro.crypto.hashing import perf_counters


@dataclass
class TelemetrySample:
    """One period boundary's gauge snapshot.

    Attributes:
        period: Zero-based index of the period that just completed.
        time_ms: Simulated time of the period boundary.
        wall_s: Host wall-clock seconds since the sampler attached.
        values: Flat metric mapping (rates, distributions, backlogs).
    """

    period: int
    time_ms: float
    wall_s: float
    values: Dict[str, float] = field(default_factory=dict)


class TelemetrySampler:
    """Streams per-period snapshots from a beaconing simulation.

    Usage::

        sampler = TelemetrySampler(simulation).attach()
        simulation.run()
        records = sampler.to_records(scenario="beaconing_e2e", scale="medium")
    """

    def __init__(self, simulation, per_as_backlog: bool = True) -> None:
        self.simulation = simulation
        self.per_as_backlog = per_as_backlog
        self.samples: List[TelemetrySample] = []
        self._start_wall: Optional[float] = None
        self._last_wall: Optional[float] = None
        self._last_sent = 0
        self._last_revocations = 0
        self._last_crypto = 0
        self._last_delay_count = 0

    def attach(self) -> "TelemetrySampler":
        """Register on the simulation's period listener; returns self."""
        now = perf_counter()
        self._start_wall = now
        self._last_wall = now
        self._last_sent = self.simulation.collector.total_sent
        self._last_revocations = self.simulation.collector.total_revocations
        self._last_crypto = sum(perf_counters().values())
        self.simulation.add_period_listener(self.on_period_end)
        return self

    def on_period_end(self, now_ms: float) -> None:
        """Snapshot gauges at one period boundary (the listener callback)."""
        now_wall = perf_counter()
        if self._start_wall is None:  # attached manually without attach()
            self._start_wall = now_wall
            self._last_wall = now_wall
        elapsed = max(1e-9, now_wall - self._last_wall)

        simulation = self.simulation
        collector = simulation.collector
        sent = collector.total_sent
        revocations = collector.total_revocations
        crypto_ops = sum(perf_counters().values())
        delay_stats = collector.queue_delay_stats()

        values: Dict[str, float] = {
            "pcbs_sent": float(sent - self._last_sent),
            "pcbs_per_s": (sent - self._last_sent) / elapsed,
            "revocations": float(revocations - self._last_revocations),
            "crypto_ops_per_s": (crypto_ops - self._last_crypto) / elapsed,
            "queue_delay_p50_ms": float(delay_stats["p50"]),
            "queue_delay_p99_ms": float(delay_stats["p99"]),
            "queue_delays_serviced": float(delay_stats["count"] - self._last_delay_count),
            "scheduler_queue_size": float(simulation.scheduler.queue_size),
        }

        backlog_total = 0
        backlog_max = 0
        transport = simulation.transport
        for as_id in sorted(simulation.services):
            pending = transport.pending_messages(as_id)
            if pending:
                backlog_total += pending
                if pending > backlog_max:
                    backlog_max = pending
                if self.per_as_backlog:
                    values[f"inbox_backlog_as_{as_id}"] = float(pending)
        values["inbox_backlog_total"] = float(backlog_total)
        values["inbox_backlog_max"] = float(backlog_max)

        self.samples.append(
            TelemetrySample(
                period=len(self.samples),
                time_ms=now_ms,
                wall_s=now_wall - self._start_wall,
                values=values,
            )
        )
        self._last_wall = now_wall
        self._last_sent = sent
        self._last_revocations = revocations
        self._last_crypto = crypto_ops
        self._last_delay_count = int(delay_stats["count"])

    def to_records(
        self,
        grid: str = "telemetry",
        scenario: str = "beaconing",
        policy: str = "telemetry",
        scale: str = "unspecified",
        seed: int = 0,
        schema: int = 1,
    ) -> List[Dict]:
        """Return the samples as ``result_logger``-schema JSONL records."""
        records = []
        for sample in self.samples:
            metrics = {
                "period": sample.period,
                "time_ms": sample.time_ms,
                "wall_s": sample.wall_s,
            }
            metrics.update(sample.values)
            records.append(
                {
                    "schema": schema,
                    "grid": grid,
                    "scenario": scenario,
                    "policy": policy,
                    "scale": scale,
                    "seed": seed,
                    "metrics": metrics,
                }
            )
        return records

    def timeline(self, metric: str) -> List[tuple]:
        """Return ``(time_ms, value)`` points of one sampled metric."""
        return [
            (sample.time_ms, sample.values.get(metric, 0.0)) for sample in self.samples
        ]
