"""Phase-attributed profiling spans.

A span names one *phase* of simulation work (``"crypto.verify"``,
``"fabric.drain"``, ...).  While a span is open, wall time accrues to the
phase; nested spans subtract their elapsed time from the parent's
*exclusive* (self) time, so the self times of all phases partition the
measured wall clock — summing them yields the attribution coverage that
``benchmarks/profile_simulation.py`` asserts on.

Design constraints (in priority order):

1. **Disabled-by-default, near-zero cost when off.**  The module-global
   :data:`ENABLED` flag is checked *at the call site* (``if
   spans.ENABLED:``) before any span machinery runs: a disabled hot seam
   costs one module-attribute load and a branch — no object allocation,
   no function call.  The zero-allocation test in
   ``tests/test_observatory.py`` pins this.
2. **Never perturb simulated behaviour.**  Spans read the host's
   ``perf_counter`` only; they never touch the scheduler, RNGs or
   collectors, so golden traces are bit-identical with telemetry on.
3. **Reentrancy.**  The same phase may nest inside itself (a recursive
   drain); self/total accounting stays correct because frames are
   per-entry, not per-name.

Two instrumentation idioms are supported:

* guarded push/pop for hot seams (no allocation when disabled)::

      frame = spans.push("fabric.send") if spans.ENABLED else None
      try:
          ...
      finally:
          if frame is not None:
              spans.pop(frame)

* the :class:`span` context manager for cool seams (once per period)::

      with spans.span("sim.originate"):
          ...

* :func:`add` for leaf phases whose duration is measured externally
  (e.g. one HMAC): records elapsed time directly, still crediting the
  enclosing span's child time.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

#: Master switch.  Checked by every instrumented seam *before* calling
#: into this module; flip it via :func:`enable` / :func:`disable`.
ENABLED = False


class PhaseStat:
    """Accumulated timing of one phase.

    Attributes:
        calls: Completed span entries (or :func:`add` observations).
        self_s: Exclusive wall seconds — time inside this phase but
            outside any nested span.  Self times across phases are
            disjoint; their sum is the attributed share of wall time.
        total_s: Inclusive wall seconds, nested spans included.  Totals
            of nested phases overlap, so they do *not* sum to wall time.
    """

    __slots__ = ("calls", "self_s", "total_s")

    def __init__(self) -> None:
        self.calls = 0
        self.self_s = 0.0
        self.total_s = 0.0


#: phase name -> accumulated stats.
_stats: Dict[str, PhaseStat] = {}
#: Open frames, innermost last.  A frame is ``[name, start_s, child_s]``
#: (a mutable list, not a class: pushing one must be as cheap as possible).
_stack: List[list] = []


def enable() -> None:
    """Turn span recording on (accumulated stats are kept)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn span recording off and abandon any open frames."""
    global ENABLED
    ENABLED = False
    _stack.clear()


def reset() -> None:
    """Drop all accumulated stats and open frames."""
    _stats.clear()
    _stack.clear()


def push(name: str) -> list:
    """Open a span frame for ``name``; returns the frame to pass to :func:`pop`."""
    frame = [name, perf_counter(), 0.0]
    _stack.append(frame)
    return frame


def pop(frame: list) -> None:
    """Close ``frame``, crediting its elapsed time to its phase.

    Tolerates a stack cleared by :func:`disable`/:func:`reset` between
    push and pop (the frame is simply gone) and unwinds frames leaked
    above ``frame`` by an exception path that skipped their pops.
    """
    end = perf_counter()
    while _stack:
        top = _stack.pop()
        if top is frame:
            _record(top, end)
            return
    # The stack was cleared underneath us; nothing to attribute.


def _record(frame: list, end_s: float) -> None:
    name, start_s, child_s = frame
    elapsed = end_s - start_s
    stat = _stats.get(name)
    if stat is None:
        stat = _stats[name] = PhaseStat()
    stat.calls += 1
    stat.total_s += elapsed
    self_s = elapsed - child_s
    if self_s > 0.0:
        stat.self_s += self_s
    if _stack:
        _stack[-1][2] += elapsed


def add(name: str, elapsed_s: float, count: int = 1) -> None:
    """Record ``elapsed_s`` seconds of leaf work under phase ``name``.

    For externally timed leaves (one signature, one hash): cheaper than a
    push/pop pair and still subtracts the time from the enclosing span's
    self time.
    """
    stat = _stats.get(name)
    if stat is None:
        stat = _stats[name] = PhaseStat()
    stat.calls += count
    stat.total_s += elapsed_s
    stat.self_s += elapsed_s
    if _stack:
        _stack[-1][2] += elapsed_s


class span:
    """Context manager form: ``with spans.span("sim.originate"): ...``.

    Checks :data:`ENABLED` at entry, so a disabled run pays only the
    (one-per-use) object allocation — use it at cool seams; hot seams use
    the guarded push/pop idiom from the module docstring.
    """

    __slots__ = ("name", "_frame")

    def __init__(self, name: str) -> None:
        self.name = name
        self._frame: Optional[list] = None

    def __enter__(self) -> "span":
        if ENABLED:
            self._frame = push(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._frame is not None:
            pop(self._frame)
            self._frame = None
        return False


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def snapshot() -> Dict[str, Dict[str, float]]:
    """Return ``{phase: {calls, self_s, total_s}}`` for all recorded phases."""
    return {
        name: {"calls": stat.calls, "self_s": stat.self_s, "total_s": stat.total_s}
        for name, stat in sorted(_stats.items())
    }


def attributed_s(stats: Optional[Dict[str, Dict[str, float]]] = None) -> float:
    """Return the summed exclusive time of all phases (disjoint by design)."""
    if stats is not None:
        return sum(stat["self_s"] for stat in stats.values())
    return sum(stat.self_s for stat in _stats.values())


def coverage(
    wall_s: float, stats: Optional[Dict[str, Dict[str, float]]] = None
) -> float:
    """Return the fraction of ``wall_s`` attributed to phases (0.0–1.0+)."""
    if wall_s <= 0.0:
        return 0.0
    return attributed_s(stats) / wall_s


def attribution_table(
    wall_s: Optional[float] = None,
    stats: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Render the per-phase time-attribution table as printable text.

    Phases are sorted by exclusive time, descending.  With ``wall_s``
    given, a ``self %`` column (share of that wall clock), an
    ``unattributed`` row and a coverage footer are included — the view
    ``run_benchmarks.py --profile`` and ``profile_simulation.py`` print.
    Pass ``stats`` (a :func:`snapshot` dict) to render saved data instead
    of the live accumulator.
    """
    if stats is None:
        stats = snapshot()
    rows = sorted(stats.items(), key=lambda item: -item[1]["self_s"])
    header = f"{'phase':<22} {'calls':>10} {'self s':>9} {'self %':>7} {'total s':>9}"
    lines = [header, "-" * len(header)]

    def fmt(name: str, calls: str, self_s: float, total_s: Optional[float]) -> str:
        share = f"{100.0 * self_s / wall_s:6.1f}%" if wall_s else f"{'':>7}"
        total = f"{total_s:9.3f}" if total_s is not None else f"{'':>9}"
        return f"{name:<22} {calls:>10} {self_s:9.3f} {share} {total}"

    for name, stat in rows:
        lines.append(fmt(name, str(int(stat["calls"])), stat["self_s"], stat["total_s"]))
    if wall_s:
        unattributed = max(0.0, wall_s - attributed_s(stats))
        lines.append(fmt("(unattributed)", "-", unattributed, None))
        lines.append("-" * len(header))
        lines.append(
            f"attributed {attributed_s(stats):.3f}s of {wall_s:.3f}s wall "
            f"({100.0 * coverage(wall_s, stats):.1f}% coverage)"
        )
    return "\n".join(lines)
