"""The simulation observatory: metrics registry, profiling spans, telemetry.

Three pillars, all **disabled or inert by default**:

* :mod:`repro.obs.registry` — typed Counter/Gauge/Histogram handles in a
  process-global named registry (:data:`REGISTRY`); one ``snapshot()``
  returns whole-system state.  :mod:`repro.obs.bridge` binds the repo's
  pre-existing scattered counters into it as poll-time callback gauges.
* :mod:`repro.obs.spans` — phase-attributed profiling spans behind a
  module-global flag; hot seams pay one attribute check when disabled.
* :mod:`repro.obs.timeseries` + :mod:`repro.obs.exporters` — per-period
  gauge sampling streamed to JSONL (``result_logger`` schema), a
  Prometheus-text exporter, and (via ``benchmarks/plot_results.py``) an
  SVG timeline.

See ``docs/observability.md`` for the span taxonomy and how to read the
attribution table.
"""

from repro.obs import spans
from repro.obs.bridge import bind_crypto, bind_simulation, bind_traffic_engine
from repro.obs.exporters import (
    parse_prometheus_text,
    prometheus_text,
    registry_samples,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileReservoir,
)
from repro.obs.timeseries import TelemetrySample, TelemetrySampler

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileReservoir",
    "TelemetrySample",
    "TelemetrySampler",
    "bind_crypto",
    "bind_simulation",
    "bind_traffic_engine",
    "parse_prometheus_text",
    "prometheus_text",
    "registry_samples",
    "spans",
]
