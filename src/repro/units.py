"""Physical units and conversion helpers used throughout the library.

The whole code base sticks to a single set of units:

* time and latency are expressed in **milliseconds** (float),
* bandwidth is expressed in **megabits per second** (float),
* distances are expressed in **kilometres** (float).

The helpers in this module make conversions explicit at call sites instead
of scattering magic constants around the code.
"""

from __future__ import annotations

#: Speed of light in vacuum, kilometres per millisecond.
SPEED_OF_LIGHT_KM_PER_MS = 299.792458

#: Effective propagation speed in optical fibre (roughly two thirds of c),
#: kilometres per millisecond.  This matches the common 4.9 microseconds per
#: kilometre rule of thumb used to estimate propagation delay from distance.
FIBER_SPEED_KM_PER_MS = SPEED_OF_LIGHT_KM_PER_MS * 2.0 / 3.0

#: Milliseconds in one second.
MS_PER_SECOND = 1000.0

#: Milliseconds in one minute.
MS_PER_MINUTE = 60.0 * MS_PER_SECOND

#: Milliseconds in one hour.
MS_PER_HOUR = 60.0 * MS_PER_MINUTE


def seconds(value: float) -> float:
    """Convert seconds to the library's millisecond unit."""
    return float(value) * MS_PER_SECOND


def minutes(value: float) -> float:
    """Convert minutes to the library's millisecond unit."""
    return float(value) * MS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to the library's millisecond unit."""
    return float(value) * MS_PER_HOUR


def milliseconds(value: float) -> float:
    """Identity helper that documents a value as milliseconds."""
    return float(value)


def ms_to_seconds(value_ms: float) -> float:
    """Convert a millisecond value to seconds."""
    return float(value_ms) / MS_PER_SECOND


def fiber_delay_ms(distance_km: float) -> float:
    """Return the propagation delay over ``distance_km`` of optical fibre.

    The paper estimates link propagation delay from the great-circle
    distance between the two link endpoints; this helper performs the
    distance-to-delay conversion with the standard fibre refraction factor.
    """
    if distance_km < 0.0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return float(distance_km) / FIBER_SPEED_KM_PER_MS


def gbps(value: float) -> float:
    """Convert gigabits per second to the library's Mbit/s unit."""
    return float(value) * 1000.0


def mbps(value: float) -> float:
    """Identity helper that documents a value as Mbit/s."""
    return float(value)
