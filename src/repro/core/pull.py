"""Pull-based routing and the pull-based disjointness (PD) orchestration.

Pull-based routing (paper §IV-B) reverses the direction of path discovery:
the *source* of data traffic originates PCBs that name a target AS; the
PCBs propagate through the network like ordinary beacons until they reach
the target, which terminates them and returns them to the origin.

Its flagship use in the paper is the **pull-based disjointness (PD)**
procedure (§VIII-B): an AS iteratively grows a set of link-disjoint paths
to a target by repeatedly originating pull-based, on-demand PCBs whose
embedded algorithm avoids every link already present in the collected set;
each iteration contributes the first beacon returned by the target.
:class:`PullBasedDisjointnessOrchestrator` implements that loop on top of a
control service; the per-hop algorithm itself is
:class:`~repro.algorithms.pull_disjoint.LinkAvoidingAlgorithm`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.algorithms.registry import encode_link_avoiding_payload
from repro.core.beacon import Beacon
from repro.core.control_service import IrecControlService
from repro.exceptions import ConfigurationError
from repro.topology.entities import LinkID


class PullState(enum.Enum):
    """Lifecycle of a pull-based disjointness run."""

    IDLE = "idle"
    WAITING = "waiting"
    DONE = "done"
    EXHAUSTED = "exhausted"


@dataclass
class PullIteration:
    """Bookkeeping of one PD iteration."""

    index: int
    algorithm_id: str
    started_at_ms: float
    avoid_links: Tuple[LinkID, ...]
    accepted_beacon: Optional[Beacon] = None


@dataclass
class PullBasedDisjointnessOrchestrator:
    """Origin-side loop of the PD procedure.

    The orchestrator is driven externally: after each beaconing period the
    simulation (or the application) calls :meth:`advance`, which inspects
    the control service's returned pull beacons, closes the current
    iteration if one of them satisfies the avoid set, and starts the next
    iteration until :attr:`desired_paths` disjoint paths have been collected
    or :attr:`max_iterations` is reached.

    Attributes:
        service: The origin AS's control service.
        target_as: The AS to which disjoint paths are sought.
        desired_paths: Number of link-disjoint paths to collect (20 in the
            paper's setup).
        paths_per_origination: How many interfaces to originate the pull
            beacons on per iteration (``None`` means all interfaces).
        max_iterations: Safety bound on the number of iterations.
    """

    service: IrecControlService
    target_as: int
    desired_paths: int = 20
    paths_per_origination: Optional[int] = None
    max_iterations: int = 64
    seed_paths: Sequence[Beacon] = ()

    state: PullState = PullState.IDLE
    collected: List[Beacon] = field(default_factory=list)
    iterations: List[PullIteration] = field(default_factory=list)
    _used_links: Set[LinkID] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.desired_paths < 1:
            raise ConfigurationError(f"desired_paths must be positive, got {self.desired_paths}")
        if self.target_as == self.service.as_id:
            raise ConfigurationError("the target AS must differ from the origin AS")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, now_ms: float) -> None:
        """Seed the collected set and originate the first iteration."""
        for beacon in self.seed_paths:
            self._accept(beacon)
        if len(self.collected) >= self.desired_paths:
            self.state = PullState.DONE
            return
        self._begin_iteration(now_ms)

    def advance(self, now_ms: float) -> PullState:
        """Check for returned beacons and, if possible, start the next iteration.

        Returns:
            The orchestrator's state after processing.
        """
        if self.state is not PullState.WAITING:
            return self.state

        current = self.iterations[-1]
        returned = self.service.pull_results_for(algorithm_id=current.algorithm_id)
        for beacon, _received_at in returned:
            if current.accepted_beacon is not None:
                break
            if self._is_disjoint(beacon):
                current.accepted_beacon = beacon
                self._accept(beacon)

        if current.accepted_beacon is None:
            # Nothing usable yet; keep waiting (the caller decides when to
            # give up by inspecting the iteration count and timestamps).
            return self.state

        if len(self.collected) >= self.desired_paths:
            self.state = PullState.DONE
        elif len(self.iterations) >= self.max_iterations:
            self.state = PullState.EXHAUSTED
        else:
            self._begin_iteration(now_ms)
        return self.state

    def abort_iteration(self, now_ms: float) -> PullState:
        """Give up on the current iteration and start the next one (or stop).

        The paper's PD keeps iterating until the desired number of disjoint
        paths is found; in sparse regions of the topology an iteration may
        never return a disjoint beacon, so the driver can call this after a
        timeout to move on.
        """
        if self.state is not PullState.WAITING:
            return self.state
        if len(self.iterations) >= self.max_iterations:
            self.state = PullState.EXHAUSTED
            return self.state
        self._begin_iteration(now_ms)
        return self.state

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _begin_iteration(self, now_ms: float) -> None:
        index = len(self.iterations)
        algorithm_id = f"pd-{self.service.as_id}-{self.target_as}-{index}"
        avoid = tuple(sorted(self._used_links))
        payload = encode_link_avoiding_payload(avoid, paths_per_interface=1)
        self.service.publish_algorithm(algorithm_id, payload)

        interfaces = None
        if self.paths_per_origination is not None:
            interfaces = self.service.view.interface_ids()[: self.paths_per_origination]
        self.service.originate_pull(
            target_as=self.target_as,
            now_ms=now_ms,
            algorithm_id=algorithm_id,
            interfaces=interfaces,
        )
        self.iterations.append(
            PullIteration(
                index=index,
                algorithm_id=algorithm_id,
                started_at_ms=now_ms,
                avoid_links=avoid,
            )
        )
        self.state = PullState.WAITING

    def _is_disjoint(self, beacon: Beacon) -> bool:
        return not any(link in self._used_links for link in beacon.links())

    def _accept(self, beacon: Beacon) -> None:
        self.collected.append(beacon)
        self._used_links.update(beacon.links())

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def disjoint_path_count(self) -> int:
        """Return the number of collected paths."""
        return len(self.collected)

    def used_links(self) -> Set[LinkID]:
        """Return the links covered by the collected paths."""
        return set(self._used_links)
