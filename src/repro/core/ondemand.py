"""On-demand algorithm management (paper §IV-C).

The :class:`OnDemandAlgorithmManager` is the piece of an on-demand RAC that
turns the algorithm *reference* found in a PCB (identifier + payload hash)
into an executable :class:`~repro.algorithms.base.RoutingAlgorithm`:

1. the payload is fetched from the beacon's origin AS through the
   deployment's transport (the origin is always reachable — at worst over
   the path contained in the PCB itself),
2. the payload hash is verified against the hash announced in the PCB,
   whose integrity is in turn protected by the origin's signature,
3. the payload is decoded into an algorithm object; restricted-Python
   payloads additionally pass sandbox validation, and
4. both the payload (in the fetcher) and the decoded algorithm are cached
   per ``(origin AS, algorithm id, hash)`` so the work happens once per
   origin and algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algorithms.base import RoutingAlgorithm
from repro.algorithms.registry import AlgorithmCatalog, decode_payload, default_catalog
from repro.core.algorithm_registry import AlgorithmFetcher
from repro.core.beacon import Beacon
from repro.exceptions import AlgorithmError


@dataclass
class OnDemandAlgorithmManager:
    """Fetch, verify, decode and cache on-demand algorithms for one RAC."""

    fetcher: AlgorithmFetcher
    catalog: AlgorithmCatalog = field(default_factory=default_catalog)
    cache_enabled: bool = True
    _algorithms: Dict[Tuple[int, str, str], RoutingAlgorithm] = field(default_factory=dict)

    def resolve(self, beacon: Beacon) -> RoutingAlgorithm:
        """Return the executable algorithm referenced by ``beacon``.

        Raises:
            AlgorithmError: If the beacon has no algorithm extension or the
                payload cannot be decoded.
            AlgorithmIntegrityError: If the fetched payload fails hash
                verification.
        """
        extension = beacon.extensions.algorithm
        if extension is None:
            raise AlgorithmError("beacon does not carry an algorithm extension")
        key = (beacon.origin_as, extension.algorithm_id, extension.code_hash)
        if self.cache_enabled:
            cached = self._algorithms.get(key)
            if cached is not None:
                return cached

        payload = self.fetcher.fetch(
            origin_as=beacon.origin_as,
            algorithm_id=extension.algorithm_id,
            expected_hash=extension.code_hash,
        )
        algorithm = decode_payload(payload, catalog=self.catalog)
        if self.cache_enabled:
            self._algorithms[key] = algorithm
        return algorithm

    def cached_algorithm_count(self) -> int:
        """Return how many distinct algorithms are currently cached."""
        return len(self._algorithms)

    def clear(self) -> None:
        """Drop the decoded-algorithm cache (the payload cache is separate)."""
        self._algorithms.clear()
