"""The IREC control service: one AS's complete control plane.

The control service wires together the intra-AS components of §V — ingress
gateway, routing algorithm containers and egress gateway — and exposes the
handlers the transport invokes (beacon delivery, pull returns, algorithm
fetches) as well as the operations the beaconing process drives
(origination and periodic RAC rounds).

It replaces the legacy SCION control service of one AS; the legacy baseline
lives in :mod:`repro.scion.legacy` and implements the same transport-facing
interface, which is what makes mixed (backward-compatibility) deployments
possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RoutingAlgorithm
from repro.core.algorithm_registry import AlgorithmFetcher, AlgorithmRepository
from repro.core.beacon import Beacon, BeaconBuilder, DEFAULT_VALIDITY_MS
from repro.core.databases import (
    EgressDatabase,
    IngressDatabase,
    PathService,
    RegisteredPath,
)
from repro.core.egress import EgressGateway
from repro.core.extensions import ExtensionSet
from repro.core.ingress import IngressGateway
from repro.core.interface_groups import (
    InterfaceGroupAssignment,
    InterfaceGroupingPolicy,
    SingleGroupPolicy,
)
from repro.core.local_view import LocalTopologyView
from repro.core.messages import (
    ControlMessage,
    PathQueryMessage,
    PathQueryResponse,
    PathRegistrationMessage,
    PCBMessage,
    PullReturnMessage,
)
from repro.core.ondemand import OnDemandAlgorithmManager
from repro.core.query import DEFAULT_CACHE_CAPACITY, PathQuery, PathQueryFrontend
from repro.core.rac import (
    RACConfig,
    RACExecutionReport,
    RACSelection,
    RoutingAlgorithmContainer,
)
from repro.core.revocation import (
    DEFAULT_DEDUP_WINDOW_MS,
    RevocationMessage,
    RevocationState,
    bounce_if_revoked as _bounce_if_revoked,
    handle_revocation as _handle_revocation,
    originate_revocation as _originate_revocation,
)
from repro.core.transport import ControlPlaneTransport
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import ConfigurationError, SimulationError
from repro.topology.entities import LinkID, normalize_link_id


@dataclass(frozen=True)
class ControlServiceConfig:
    """Deployment knobs of one IREC control service.

    Attributes:
        verify_signatures: Whether the ingress gateway verifies PCB
            signature chains (disable only for very large simulations).
        beacon_validity_ms: Lifetime of originated beacons.
        registration_limit: Per-(criteria, origin, interface-group) cap of
            the path service — 20 in the paper's simulations.
        originate_with_groups: Whether originated beacons carry the
            interface-group extension.
        expiry_margin_ms: Shared expiry horizon of the AS's three stores
            (ingress database, egress database, path service): entries
            expiring within the margin are dropped together, so a beacon
            never survives in one store after another dropped it.
        revocation_dedup_window_ms: How long the service remembers
            processed revocation ``(origin, sequence)`` keys.
        query_cache_capacity: LRU bound of the path-query frontend's
            materialized-response cache.
        register_down_segments: When enabled, every path this AS registers
            locally is additionally announced back along the segment as a
            ``register_at_origin`` path-registration message, so the
            origin (core) AS learns it as a down-segment on message
            arrival.  Off by default — the extra messages would change
            pinned traces.
    """

    verify_signatures: bool = True
    beacon_validity_ms: float = DEFAULT_VALIDITY_MS
    registration_limit: int = 20
    originate_with_groups: bool = True
    expiry_margin_ms: float = 0.0
    revocation_dedup_window_ms: float = DEFAULT_DEDUP_WINDOW_MS
    query_cache_capacity: int = DEFAULT_CACHE_CAPACITY
    register_down_segments: bool = False


def purge_link_state(as_id, ingress_database, path_service, link_id: LinkID) -> Tuple[int, int]:
    """Remove beacons/paths crossing ``link_id`` from one AS's databases.

    Shared between the IREC and the legacy control service (both expose the
    same database surface).  For a stored (non-terminated) beacon the link it
    arrived over — last entry's egress interface to the local ingress
    interface — is part of its path as seen locally, so it counts in
    addition to the beacon's interior links.  Control-service databases
    resolve the removal through their link indexes in O(matches); databases
    built without a ``local_as`` fall back to a predicate scan.

    Returns:
        ``(ingress_removed, paths_removed)`` counts.
    """
    failed = normalize_link_id(*link_id)
    ingress_removed = ingress_database.remove_crossing_link(failed, arrival_as=as_id)
    paths_removed = path_service.remove_crossing_link(failed)
    return ingress_removed, paths_removed


def purge_as_state(ingress_database, path_service, gone_as: int) -> Tuple[int, int]:
    """Remove beacons/paths whose AS path crosses ``gone_as``.

    Returns:
        ``(ingress_removed, paths_removed)`` counts.
    """
    ingress_removed = ingress_database.remove_crossing_as(gone_as)
    paths_removed = path_service.remove_crossing_as(gone_as)
    return ingress_removed, paths_removed


# ----------------------------------------------------------------------
# unified message dispatch (shared by the IREC and legacy services)
# ----------------------------------------------------------------------
def handle_path_registration(
    service, message: PathRegistrationMessage, now_ms: float
) -> bool:
    """Register a remotely offered path at ``service``'s path service.

    The registration is re-stamped with the *arrival* time: a path that
    reaches this AS now is fresh now, which is the timestamp contract the
    convergence collector's sub-period recovery detection relies on.
    Expired segments are dropped (the offer outlived its path).

    ``register_at_origin`` messages are down-segment announcements: a
    transit AS on the segment forwards the message one hop toward the
    origin (out its own reverse/ingress interface of the segment) without
    registering, and only the origin AS registers it — registration is
    driven entirely by message arrival.
    """
    path = message.path
    if path.segment.is_expired(now_ms):
        return False
    if message.register_at_origin and path.segment.origin_as != service.as_id:
        for entry in path.segment.entries:
            if entry.as_id == service.as_id:
                if entry.ingress_interface is None:
                    return False
                service.transport.send_message(
                    service.as_id, entry.ingress_interface, message
                )
                return True
        # Not on the segment's path: a misrouted announcement, drop it.
        return False
    return service.path_service.register(
        RegisteredPath(
            segment=path.segment,
            criteria_tags=path.criteria_tags,
            registered_at_ms=now_ms,
        )
    )


def handle_path_query(
    service, message: PathQueryMessage, on_interface: int, now_ms: float
) -> PathQueryResponse:
    """Serve a remote path query through ``service``'s query frontend.

    The response echoes the request's ``(origin_as, sequence)`` so the
    requester can correlate it, and travels back over the interface the
    query arrived on.  A locally dispatched query (``on_interface < 0``)
    gets its response returned instead of sent.
    """
    result = service.query_frontend.query(message.query, now_ms=now_ms)
    response = PathQueryResponse(
        origin_as=service.as_id,
        sequence=service.next_message_sequence(),
        created_at_ms=now_ms,
        query=message.query,
        paths=result.paths,
        cache_hit=result.cache_hit,
        request_origin=message.origin_as,
        request_sequence=message.sequence,
    )
    if on_interface >= 0:
        service.transport.send_message(service.as_id, on_interface, response)
    return response


def dispatch_message(service, message: ControlMessage, on_interface: int, now_ms: float):
    """Dispatch one typed control message to ``service``'s handler.

    The single entry point the transport fabric invokes for every
    delivered message, replacing the per-type ``receive_beacon`` /
    ``on_revocation`` transport forks.  Duck-typed over both control
    service flavours.
    """
    if isinstance(message, PCBMessage):
        return service.receive_beacon(
            message.beacon, on_interface=on_interface, now_ms=now_ms
        )
    if isinstance(message, RevocationMessage):
        return service.on_revocation(message, on_interface=on_interface, now_ms=now_ms)
    if isinstance(message, PathRegistrationMessage):
        return handle_path_registration(service, message, now_ms)
    if isinstance(message, PullReturnMessage):
        return service.receive_returned_beacon(message.beacon, now_ms=now_ms)
    if isinstance(message, PathQueryMessage):
        return handle_path_query(service, message, on_interface, now_ms)
    if isinstance(message, PathQueryResponse):
        return service.receive_query_response(message, now_ms=now_ms)
    raise SimulationError(f"unsupported control message {message!r}")


def dispatch_batch(service, entries: Sequence[Tuple[ControlMessage, int]], now_ms: float):
    """Dispatch one drained inbox batch in arrival order.

    Messages are processed exactly as per-message dispatch would — same
    order, same ``now_ms`` (every entry of a batch arrived at the same
    scheduler tick) — so database state and withdrawal timestamps are
    identical to ``batch_size=1`` delivery.  The batch enables one
    amortization per-message delivery cannot see: several copies of the
    *same* beacon arriving together (parallel links, simultaneous
    neighbours) pay one admission — signature-chain probe included — and
    the remaining copies take the duplicate fast path, since an identical
    digest means a byte-identical beacon whose admission verdict cannot
    differ and whose database insert would be refused as a duplicate
    anyway.

    Returns:
        Per-entry handler results, in entry order.
    """
    results = []
    append = results.append
    accepted_digests = None
    # Kind strings instead of isinstance checks: this loop is the flood
    # fast path (one call per delivered message network-wide).
    for message, on_interface in entries:
        kind = message.kind
        if kind == "revocation":
            append(service.on_revocation(message, on_interface=on_interface, now_ms=now_ms))
        elif kind == "pcb":
            digest = message.beacon.digest()
            if accepted_digests is not None and digest in accepted_digests:
                stats = service.ingress.stats
                stats.received += 1
                stats.duplicates += 1
                append(False)
                continue
            accepted = service.receive_beacon(
                message.beacon, on_interface=on_interface, now_ms=now_ms
            )
            if accepted:
                if accepted_digests is None:
                    accepted_digests = set()
                accepted_digests.add(digest)
            append(accepted)
        else:
            append(dispatch_message(service, message, on_interface, now_ms))
    return results


@dataclass
class RoundReport:
    """Outcome of one beaconing round at one AS."""

    as_id: int
    now_ms: float
    rac_reports: List[RACExecutionReport] = field(default_factory=list)
    propagated: int = 0
    registered: int = 0

    @property
    def total_processing_ms(self) -> float:
        """Return the summed RAC processing latency of the round."""
        return sum(report.total_ms for report in self.rac_reports)


class IrecControlService:
    """The control plane of one IREC-enabled AS."""

    def __init__(
        self,
        view: LocalTopologyView,
        key_store: KeyStore,
        transport: ControlPlaneTransport,
        grouping_policy: Optional[InterfaceGroupingPolicy] = None,
        config: Optional[ControlServiceConfig] = None,
    ) -> None:
        self.view = view
        self.config = config or ControlServiceConfig()
        self.transport = transport
        self.key_store = key_store

        signer = Signer(as_id=view.as_id, key_store=key_store)
        verifier = Verifier(key_store=key_store)
        self.builder = BeaconBuilder(as_id=view.as_id, signer=signer)
        self.ingress = IngressGateway(
            as_id=view.as_id,
            verifier=verifier,
            database=IngressDatabase(
                expiry_margin_ms=self.config.expiry_margin_ms,
                local_as=view.as_id,
            ),
            verify_signatures=self.config.verify_signatures,
        )
        self.egress = EgressGateway(
            view=view,
            builder=self.builder,
            transport=transport,
            database=EgressDatabase(expiry_margin_ms=self.config.expiry_margin_ms),
            path_service=PathService(
                max_paths_per_key=self.config.registration_limit,
                expiry_margin_ms=self.config.expiry_margin_ms,
            ),
            beacon_validity_ms=self.config.beacon_validity_ms,
        )
        self.racs: List[RoutingAlgorithmContainer] = []
        self.repository = AlgorithmRepository(as_id=view.as_id)
        self.pull_results: List[Tuple[Beacon, float]] = []
        #: The serving tier end hosts query instead of touching the path
        #: service directly; subscribes itself to the service's
        #: invalidation hook.  The simulation attaches its scheduler as
        #: the frontend's clock.
        self.query_frontend = PathQueryFrontend(
            self.egress.path_service, capacity=self.config.query_cache_capacity
        )
        #: Responses to queries this AS sent, as ``(response, arrived_ms)``.
        self.query_responses: List[Tuple[PathQueryResponse, float]] = []
        if self.config.register_down_segments:
            self.egress.collect_registered = True
        self.revocations = RevocationState(
            dedup_window_ms=self.config.revocation_dedup_window_ms
        )
        #: Envelope sequence numbers of non-revocation messages this
        #: service originates (revocations keep their own counter: their
        #: (origin, sequence) pairs are the flood's dedup identity).
        self._message_sequence = itertools.count(1)
        #: Optional ``(message, removed_counts, now_ms)`` callback invoked
        #: after a revocation withdrew local state; the beaconing driver
        #: fans it out to its revocation listeners (e.g. the traffic
        #: engine, which breaks flows when the withdrawal *arrives*).
        self.on_withdrawal = None
        policy = grouping_policy or SingleGroupPolicy()
        self.grouping: InterfaceGroupAssignment = policy.assign(view.as_info)

    # ------------------------------------------------------------------
    # identity and wiring
    # ------------------------------------------------------------------
    @property
    def as_id(self) -> int:
        """Return the local AS identifier."""
        return self.view.as_id

    @property
    def path_service(self) -> PathService:
        """Return the AS's path service."""
        return self.egress.path_service

    def add_static_rac(
        self,
        rac_id: str,
        algorithm: RoutingAlgorithm,
        max_paths_per_interface: int = 20,
        registration_limit: Optional[int] = None,
        use_interface_groups: bool = True,
        use_targets: bool = True,
    ) -> RoutingAlgorithmContainer:
        """Create, register and return a static RAC running ``algorithm``."""
        config = RACConfig(
            rac_id=rac_id,
            on_demand=False,
            max_paths_per_interface=max_paths_per_interface,
            registration_limit=registration_limit
            if registration_limit is not None
            else self.config.registration_limit,
            use_interface_groups=use_interface_groups,
            use_targets=use_targets,
        )
        rac = RoutingAlgorithmContainer(config=config, algorithm=algorithm)
        self.racs.append(rac)
        return rac

    def add_on_demand_rac(
        self,
        rac_id: str,
        max_paths_per_interface: int = 20,
        registration_limit: Optional[int] = None,
        cache_enabled: bool = True,
    ) -> RoutingAlgorithmContainer:
        """Create, register and return an on-demand RAC."""
        fetcher = AlgorithmFetcher(
            transport=lambda origin_as, algorithm_id: self.transport.fetch_algorithm(
                self.as_id, origin_as, algorithm_id
            ),
            cache_enabled=cache_enabled,
        )
        manager = OnDemandAlgorithmManager(fetcher=fetcher, cache_enabled=cache_enabled)
        config = RACConfig(
            rac_id=rac_id,
            on_demand=True,
            max_paths_per_interface=max_paths_per_interface,
            registration_limit=registration_limit
            if registration_limit is not None
            else self.config.registration_limit,
        )
        rac = RoutingAlgorithmContainer(config=config, on_demand_manager=manager)
        self.racs.append(rac)
        return rac

    def remove_rac(self, rac_id: str) -> bool:
        """Remove the RAC with ``rac_id``; return whether one was removed.

        Hot-swapping an algorithm (dynamic scenarios) is remove + add: the
        replacement RAC starts from fresh algorithm state, as a freshly
        deployed container would.
        """
        remaining = [rac for rac in self.racs if rac.config.rac_id != rac_id]
        removed = len(remaining) != len(self.racs)
        self.racs = remaining
        return removed

    def set_policies(self, policies: Sequence) -> None:
        """Replace the ingress gateway's admission policies atomically."""
        self.ingress.policies = list(policies)

    # ------------------------------------------------------------------
    # dynamic-topology invalidation
    # ------------------------------------------------------------------
    def invalidate_link(self, link_id: LinkID) -> Tuple[int, int]:
        """Withdraw all state crossing a failed inter-domain link.

        Models the control plane's reaction to a revocation: beacons whose
        path crosses the link are dropped from the ingress database (so the
        next RAC round re-selects on the surviving candidates and the egress
        gateway re-registers paths from them), registered paths crossing it
        are withdrawn from the path service, and returned pull beacons over
        it are discarded before an orchestrator can consume them.

        Returns:
            ``(ingress_removed, paths_removed)`` counts.
        """
        failed = normalize_link_id(*link_id)
        if self.pull_results:
            self.pull_results = [
                (beacon, at_ms)
                for beacon, at_ms in self.pull_results
                if failed not in beacon.link_set()
            ]
        return purge_link_state(self.as_id, self.ingress.database, self.path_service, failed)

    def invalidate_as(self, gone_as: int) -> Tuple[int, int]:
        """Withdraw all state whose AS path crosses a departed AS."""
        if self.pull_results:
            self.pull_results = [
                (beacon, at_ms)
                for beacon, at_ms in self.pull_results
                if not beacon.contains_as(gone_as)
            ]
        return purge_as_state(self.ingress.database, self.path_service, gone_as)

    # ------------------------------------------------------------------
    # revocation control-plane traffic
    # ------------------------------------------------------------------
    def originate_revocation(
        self,
        now_ms: float,
        failed_link: Optional[LinkID] = None,
        failed_as: Optional[int] = None,
        failed_links: Sequence[LinkID] = (),
        failed_ases: Sequence[int] = (),
        ttl_ms: Optional[float] = None,
        max_hops: Optional[int] = None,
    ) -> RevocationMessage:
        """Originate, apply and flood a signed revocation for a local failure.

        Called (by the beaconing driver) on the ASes adjacent to a failed
        element; the message then propagates hop-by-hop via
        :meth:`on_revocation` at every other AS.  Several simultaneously
        failed elements batch into one message via ``failed_links`` /
        ``failed_ases``; ``ttl_ms`` and ``max_hops`` bound the message's
        lifetime and propagation radius.
        """
        return _originate_revocation(
            self,
            now_ms,
            failed_link=failed_link,
            failed_as=failed_as,
            failed_links=tuple(failed_links),
            failed_ases=tuple(failed_ases),
            ttl_ms=ttl_ms,
            max_hops=max_hops,
        )

    def on_revocation(
        self, revocation: RevocationMessage, on_interface: int, now_ms: float
    ) -> bool:
        """Handle a revocation delivered by a neighbouring AS.

        Deduplicates by ``(origin, sequence)``, verifies the origin
        signature (when signature checking is enabled), withdraws matching
        state via :meth:`invalidate_link` / :meth:`invalidate_as` and
        re-forwards the message to the other neighbours.
        """
        return _handle_revocation(self, revocation, on_interface, now_ms)

    def set_revocation_forwarding(self, enabled: bool) -> None:
        """Toggle re-forwarding of received revocations (Byzantine knob).

        With forwarding disabled the service still applies withdrawals
        locally but silently swallows the flood — the
        :class:`~repro.simulation.events.ForwardingSuppression` behaviour.
        """
        self.revocations.suppress_forwarding = not enabled

    # ------------------------------------------------------------------
    # transport-facing handlers
    # ------------------------------------------------------------------
    def on_message(self, message: ControlMessage, on_interface: int, now_ms: float):
        """Handle one typed control message — the unified fabric entry point."""
        return dispatch_message(self, message, on_interface, now_ms)

    def on_message_batch(
        self, entries: Sequence[Tuple[ControlMessage, int]], now_ms: float
    ):
        """Handle one drained inbox batch (see :func:`dispatch_batch`)."""
        return dispatch_batch(self, entries, now_ms)

    def send_path_registration(
        self, egress_interface: int, path: RegisteredPath, now_ms: float
    ) -> PathRegistrationMessage:
        """Offer ``path`` to the neighbouring AS's path service.

        Builds a :class:`PathRegistrationMessage` on the shared envelope
        and sends it through the fabric: the offer pays per-hop latency,
        can be lost on a failed link and is counted like every other
        control message.
        """
        message = PathRegistrationMessage(
            origin_as=self.as_id,
            sequence=next(self._message_sequence),
            created_at_ms=now_ms,
            path=path,
        )
        self.transport.send_message(self.as_id, egress_interface, message)
        return message

    def next_message_sequence(self) -> int:
        """Return the next non-revocation envelope sequence number."""
        return next(self._message_sequence)

    def send_path_query(
        self, egress_interface: int, query: PathQuery, now_ms: float
    ) -> PathQueryMessage:
        """Ask the neighbour over ``egress_interface`` for paths.

        The answer arrives later as a :class:`PathQueryResponse` through
        the fabric and lands in :attr:`query_responses`.
        """
        message = PathQueryMessage(
            origin_as=self.as_id,
            sequence=next(self._message_sequence),
            created_at_ms=now_ms,
            query=query,
        )
        self.transport.send_message(self.as_id, egress_interface, message)
        return message

    def receive_query_response(
        self, response: PathQueryResponse, now_ms: float
    ) -> None:
        """Handle the answer to a query this AS sent earlier."""
        self.query_responses.append((response, now_ms))

    def receive_beacon(self, beacon: Beacon, on_interface: int, now_ms: float) -> bool:
        """Handle a PCB delivered by a neighbouring AS.

        Negative caching: a beacon crossing an element this service
        withdrew inside the dedup window is bounced — the cached
        revocation is re-sent toward the sender instead of admitting the
        resurrected path (the emptiness check keeps the common path one
        attribute load).
        """
        revocations = self.revocations
        if (
            revocations.revoked_links or revocations.revoked_ases
        ) and _bounce_if_revoked(self, beacon, on_interface, now_ms):
            return False
        return self.ingress.receive(beacon, on_interface=on_interface, now_ms=now_ms)

    def receive_returned_beacon(self, beacon: Beacon, now_ms: float) -> None:
        """Handle a pull-based PCB returned by its target AS."""
        if beacon.origin_as != self.as_id:
            raise ConfigurationError(
                f"AS {self.as_id} received a returned beacon originated by AS {beacon.origin_as}"
            )
        self.pull_results.append((beacon, now_ms))

    def serve_algorithm(self, algorithm_id: str) -> bytes:
        """Serve a published on-demand algorithm payload."""
        return self.repository.fetch(algorithm_id)

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------
    def publish_algorithm(self, algorithm_id: str, payload: bytes) -> str:
        """Publish an on-demand payload; return its hash for PCB extensions."""
        return self.repository.publish(algorithm_id, payload)

    def originate(self, now_ms: float) -> List[Beacon]:
        """Originate the periodic (push) beacons of this AS.

        One beacon is created per local interface; when interface groups
        are enabled, each beacon carries the group of its interface.
        """
        originated: List[Beacon] = []
        attached = set(self.view.interface_ids())
        for group_id in self.grouping.group_ids():
            extensions = ExtensionSet()
            if self.config.originate_with_groups:
                extensions = extensions.with_interface_group(group_id)
            # Only interfaces with an attached inter-domain link can carry
            # beacons; provisioned-but-unused interfaces are skipped.
            members = [m for m in self.grouping.members(group_id) if m in attached]
            if not members:
                continue
            originated.extend(
                self.egress.originate(now_ms=now_ms, interfaces=members, extensions=extensions)
            )
        return originated

    def originate_pull(
        self,
        target_as: int,
        now_ms: float,
        algorithm_id: Optional[str] = None,
        interfaces: Optional[Sequence[int]] = None,
    ) -> List[Beacon]:
        """Originate pull-based beacons towards ``target_as``.

        When ``algorithm_id`` names a payload previously published through
        :meth:`publish_algorithm`, the beacons additionally carry the
        on-demand algorithm extension (the combination §IV-C prescribes for
        source-side criteria, property P4).
        """
        extensions = ExtensionSet().with_target(target_as)
        if algorithm_id is not None:
            extensions = extensions.with_algorithm(
                algorithm_id, self.repository.hash_of(algorithm_id)
            )
        return self.egress.originate(now_ms=now_ms, interfaces=interfaces, extensions=extensions)

    # ------------------------------------------------------------------
    # periodic processing
    # ------------------------------------------------------------------
    def run_round(self, now_ms: float) -> RoundReport:
        """Run every RAC, propagate and register its selections, expire state."""
        report = RoundReport(as_id=self.as_id, now_ms=now_ms)
        all_selections: List[RACSelection] = []
        for rac in self.racs:
            selections, rac_report = rac.process(
                database=self.ingress.database,
                egress_interfaces=self.view.interface_ids(),
                intra_latency_ms=self.view.intra_latency_ms,
                local_as=self.as_id,
            )
            report.rac_reports.append(rac_report)
            all_selections.extend(selections)

        report.propagated = self.egress.propagate(all_selections)
        report.registered = self.egress.register(all_selections, now_ms=now_ms)
        if self.config.register_down_segments:
            # Announce each freshly registered path back along the segment:
            # the message hops toward the origin, which registers it as a
            # down-segment on arrival (see handle_path_registration).
            for path, arrival_interface in self.egress.take_registered():
                if arrival_interface is None:
                    continue
                announcement = PathRegistrationMessage(
                    origin_as=self.as_id,
                    sequence=next(self._message_sequence),
                    created_at_ms=now_ms,
                    path=path,
                    register_at_origin=True,
                )
                self.transport.send_message(self.as_id, arrival_interface, announcement)
        self.ingress.expire(now_ms)
        self.egress.expire(now_ms)
        return report

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def registered_paths_to(self, origin_as: int):
        """Return the registered paths towards ``origin_as``."""
        return self.path_service.paths_to(origin_as)

    def pull_results_for(self, algorithm_id: Optional[str] = None) -> List[Tuple[Beacon, float]]:
        """Return returned pull beacons, optionally filtered by algorithm id."""
        if algorithm_id is None:
            return list(self.pull_results)
        return [
            (beacon, at_ms)
            for beacon, at_ms in self.pull_results
            if beacon.algorithm_id == algorithm_id
        ]
