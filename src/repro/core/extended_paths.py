"""Extended-path optimization helpers (paper §IV-E).

When an AS optimizes *received* paths it ignores its own internal network,
even though the intra-AS latency between the beacon's ingress interface and
the candidate egress interface can flip the preference between two paths
(Figure 4) — formally, the criterion is not isotone under path extension.
IREC therefore optimizes **extended paths**: each received path's metrics
are extended with the intra-AS metrics towards the egress interface before
comparison.

The RAC makes this possible by giving algorithms an intra-AS latency oracle
(see :class:`repro.algorithms.base.ExecutionContext`); the helpers in this
module compute extended metric values and quantify how often extension
changes the decision, which the ablation benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.algorithms.base import CandidateBeacon, IntraLatencyOracle


@dataclass(frozen=True)
class ExtendedMetrics:
    """Metrics of one candidate after extension towards an egress interface."""

    received_latency_ms: float
    intra_latency_ms: float
    bandwidth_mbps: float
    hop_count: int

    @property
    def extended_latency_ms(self) -> float:
        """Return the latency of the extended path."""
        return self.received_latency_ms + self.intra_latency_ms


def extend_candidate(
    candidate: CandidateBeacon,
    egress_interface: int,
    intra_latency_ms: IntraLatencyOracle,
) -> ExtendedMetrics:
    """Compute the extended metrics of ``candidate`` towards ``egress_interface``."""
    beacon = candidate.beacon
    intra = 0.0
    if candidate.ingress_interface is not None:
        intra = intra_latency_ms(candidate.ingress_interface, egress_interface)
    return ExtendedMetrics(
        received_latency_ms=beacon.total_latency_ms(),
        intra_latency_ms=intra,
        bandwidth_mbps=beacon.bottleneck_bandwidth_mbps(),
        hop_count=beacon.hop_count,
    )


def best_received(
    candidates: Sequence[CandidateBeacon],
) -> Optional[CandidateBeacon]:
    """Return the lowest-latency candidate judged on received paths only."""
    if not candidates:
        return None
    return min(candidates, key=lambda candidate: candidate.beacon.total_latency_ms())


def best_extended(
    candidates: Sequence[CandidateBeacon],
    egress_interface: int,
    intra_latency_ms: IntraLatencyOracle,
) -> Optional[CandidateBeacon]:
    """Return the lowest-latency candidate judged on extended paths."""
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda candidate: extend_candidate(
            candidate, egress_interface, intra_latency_ms
        ).extended_latency_ms,
    )


def extension_changes_decision(
    candidates: Sequence[CandidateBeacon],
    egress_interface: int,
    intra_latency_ms: IntraLatencyOracle,
) -> Tuple[bool, Optional[CandidateBeacon], Optional[CandidateBeacon]]:
    """Report whether extended-path optimization picks a different beacon.

    Returns:
        A triple ``(changed, received_choice, extended_choice)``; ``changed``
        is ``True`` when the two selections differ (the Figure-4 situation).
    """
    received_choice = best_received(candidates)
    extended_choice = best_extended(candidates, egress_interface, intra_latency_ms)
    if received_choice is None or extended_choice is None:
        return (False, received_choice, extended_choice)
    changed = received_choice.beacon.digest() != extended_choice.beacon.digest()
    return (changed, received_choice, extended_choice)
