"""Sandboxed execution of on-demand algorithm payloads.

On-demand RACs execute algorithms received from *other* ASes, so the paper
runs them as WebAssembly modules inside Wasmtime with strict runtime and
memory limits (§V-C, §VII-A).  The reproduction keeps the same three
guarantees with Python-native machinery:

* **Validation** — a payload written as restricted Python is parsed into an
  AST and checked against an allow-list of syntax nodes; imports, attribute
  access to dunder names, ``exec``/``eval``, file access and the like are
  rejected before anything runs (:func:`validate_restricted_source`).
* **Resource bounding** — execution is metered: the scoring expression is
  evaluated through a small interpreter budgeted by node-evaluation count
  and wall-clock time; exceeding either budget aborts the execution with
  :class:`~repro.exceptions.SandboxResourceError`.
* **Isolation** — the payload only sees the explicit beacon-metric
  environment passed to it (latency, bandwidth, hop count, …); there is no
  access to the process' globals, the file system or the network.

The module also provides :class:`SandboxRuntime`, whose ``setup`` step is
the measured analogue of "Wasmtime environment setup" in Figure 6.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
    select_per_interface,
)
from repro.exceptions import SandboxResourceError, SandboxViolationError

#: Default budget on the number of AST nodes evaluated per beacon scoring.
DEFAULT_STEP_BUDGET = 10_000

#: Default wall-clock budget per algorithm execution, in milliseconds.
DEFAULT_TIME_BUDGET_MS = 1_000.0

#: Maximum accepted payload size in bytes (paper: "the RAC only allows
#: executables up to a certain size limit").
MAX_PAYLOAD_BYTES = 64 * 1024

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp,
    ast.BinOp,
    ast.UnaryOp,
    ast.IfExp,
    ast.Compare,
    ast.Call,
    ast.Name,
    ast.Load,
    ast.Constant,
    ast.Tuple,
    ast.List,
    ast.And,
    ast.Or,
    ast.Not,
    ast.USub,
    ast.UAdd,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
)

_ALLOWED_FUNCTIONS = {"min", "max", "abs", "round", "len"}

_SAFE_BUILTINS = {"min": min, "max": max, "abs": abs, "round": round, "len": len}


def validate_restricted_source(source: str) -> ast.Expression:
    """Parse and validate a restricted-Python scoring expression.

    The expression computes a numeric *score* for one candidate beacon
    (lower is better) from the variables ``latency_ms``, ``bandwidth_mbps``,
    ``hop_count``, ``intra_latency_ms`` and ``egress_interface``.

    Raises:
        SandboxViolationError: If the source is not a single expression or
            uses disallowed constructs.
    """
    if len(source.encode("utf-8")) > MAX_PAYLOAD_BYTES:
        raise SandboxViolationError(
            f"payload exceeds the {MAX_PAYLOAD_BYTES}-byte size limit"
        )
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError as exc:
        raise SandboxViolationError(f"payload is not a valid expression: {exc}") from exc

    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise SandboxViolationError(
                f"forbidden construct {type(node).__name__} in algorithm payload"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCTIONS:
                raise SandboxViolationError("only min/max/abs/round/len calls are allowed")
            if node.keywords:
                raise SandboxViolationError("keyword arguments are not allowed in payloads")
        if isinstance(node, ast.Name) and node.id.startswith("__"):
            raise SandboxViolationError("dunder names are not allowed in payloads")
        if isinstance(node, ast.Constant) and isinstance(node.value, str) and len(node.value) > 256:
            raise SandboxViolationError("string constants in payloads are limited to 256 chars")
    return tree


@dataclass
class MeteredEvaluator:
    """Evaluates a validated expression under a step budget."""

    tree: ast.Expression
    step_budget: int = DEFAULT_STEP_BUDGET
    _steps: int = 0

    def evaluate(self, variables: Dict[str, float]) -> float:
        """Evaluate the expression over ``variables``.

        Raises:
            SandboxResourceError: If the step budget is exhausted.
            SandboxViolationError: If an unknown name is referenced.
        """
        self._steps = 0
        value = self._eval(self.tree.body, variables)
        return float(value)

    def _charge(self) -> None:
        self._steps += 1
        if self._steps > self.step_budget:
            raise SandboxResourceError(
                f"algorithm exceeded its step budget of {self.step_budget}"
            )

    def _eval(self, node: ast.AST, variables: Dict[str, float]):
        self._charge()
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in variables:
                return variables[node.id]
            if node.id in _SAFE_BUILTINS:
                return _SAFE_BUILTINS[node.id]
            raise SandboxViolationError(f"unknown name {node.id!r} in algorithm payload")
        if isinstance(node, (ast.Tuple, ast.List)):
            return [self._eval(element, variables) for element in node.elts]
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, variables)
            if isinstance(node.op, ast.USub):
                return -operand
            if isinstance(node.op, ast.UAdd):
                return +operand
            return not operand
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, variables)
            right = self._eval(node.right, variables)
            return self._binary(node.op, left, right)
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result = True
                for value_node in node.values:
                    result = self._eval(value_node, variables)
                    if not result:
                        return result
                return result
            result = False
            for value_node in node.values:
                result = self._eval(value_node, variables)
                if result:
                    return result
            return result
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, variables)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, variables)
                if not self._compare(op, left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.IfExp):
            condition = self._eval(node.test, variables)
            return self._eval(node.body if condition else node.orelse, variables)
        if isinstance(node, ast.Call):
            function = self._eval(node.func, variables)
            arguments = [self._eval(argument, variables) for argument in node.args]
            return function(*arguments)
        raise SandboxViolationError(f"unsupported node {type(node).__name__}")

    @staticmethod
    def _binary(op: ast.operator, left, right):
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.Div):
            return left / right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.Pow):
            if abs(right) > 64:
                raise SandboxResourceError("exponent too large in algorithm payload")
            return left ** right
        raise SandboxViolationError(f"unsupported operator {type(op).__name__}")

    @staticmethod
    def _compare(op: ast.cmpop, left, right) -> bool:
        if isinstance(op, ast.Eq):
            return left == right
        if isinstance(op, ast.NotEq):
            return left != right
        if isinstance(op, ast.Lt):
            return left < right
        if isinstance(op, ast.LtE):
            return left <= right
        if isinstance(op, ast.Gt):
            return left > right
        if isinstance(op, ast.GtE):
            return left >= right
        raise SandboxViolationError(f"unsupported comparison {type(op).__name__}")


@dataclass
class RestrictedPythonAlgorithm(RoutingAlgorithm):
    """A routing algorithm defined by a restricted-Python scoring expression.

    The expression is evaluated once per (candidate, egress interface) pair
    with the candidate's metrics bound to local variables; candidates are
    ranked by ascending score.  A score of ``float("inf")`` (or any score
    above :attr:`rejection_threshold`) excludes the candidate, which is how
    payloads express hard constraints.
    """

    source: str = "latency_ms"
    paths_per_interface: int = 1
    step_budget: int = DEFAULT_STEP_BUDGET
    time_budget_ms: float = DEFAULT_TIME_BUDGET_MS
    rejection_threshold: float = 1e17
    name: str = "restricted-python"

    def __post_init__(self) -> None:
        self._tree = validate_restricted_source(self.source)
        self._evaluator = MeteredEvaluator(tree=self._tree, step_budget=self.step_budget)

    def execute(self, context: ExecutionContext) -> ExecutionResult:
        """Rank candidates by the payload's score, per egress interface."""
        deadline = time.perf_counter() + self.time_budget_ms / 1000.0

        def score(
            candidate: CandidateBeacon, egress_interface: int, ctx: ExecutionContext
        ) -> Tuple[float]:
            if time.perf_counter() > deadline:
                raise SandboxResourceError(
                    f"algorithm exceeded its time budget of {self.time_budget_ms} ms"
                )
            return (self.score_candidate(candidate, egress_interface, ctx),)

        def admit(
            candidate: CandidateBeacon, egress_interface: int, ctx: ExecutionContext
        ) -> bool:
            return score(candidate, egress_interface, ctx)[0] < self.rejection_threshold

        bounded = ExecutionContext(
            local_as=context.local_as,
            candidates=context.candidates,
            egress_interfaces=context.egress_interfaces,
            max_paths_per_interface=min(
                self.paths_per_interface, context.max_paths_per_interface
            ),
            intra_latency_ms=context.intra_latency_ms,
            parameters=context.parameters,
        )
        return select_per_interface(bounded, score, admit=admit)

    def score_candidate(
        self, candidate: CandidateBeacon, egress_interface: int, context: ExecutionContext
    ) -> float:
        """Evaluate the payload expression for one candidate."""
        beacon = candidate.beacon
        intra = 0.0
        if candidate.ingress_interface is not None:
            intra = context.intra_latency_ms(candidate.ingress_interface, egress_interface)
        variables = {
            "latency_ms": beacon.total_latency_ms(),
            "bandwidth_mbps": beacon.bottleneck_bandwidth_mbps(),
            "hop_count": float(beacon.hop_count),
            "intra_latency_ms": intra,
            "egress_interface": float(egress_interface),
            "inf": float("inf"),
        }
        return self._evaluator.evaluate(variables)

    def describe(self) -> str:
        return f"restricted python payload ({len(self.source)} chars)"


@dataclass
class SandboxStats:
    """Accumulated sandbox setup cost (the Figure-6 "WASM setup" analogue)."""

    setups: int = 0
    elapsed_ms: float = 0.0

    def record(self, elapsed_ms: float) -> None:
        """Record one sandbox setup."""
        self.setups += 1
        self.elapsed_ms += elapsed_ms

    def reset(self) -> None:
        """Zero all counters."""
        self.setups = 0
        self.elapsed_ms = 0.0


@dataclass
class SandboxRuntime:
    """Creates fresh, isolated execution environments for payloads.

    ``setup`` re-validates the payload and rebuilds the metered evaluator,
    mirroring the per-execution Wasmtime environment setup the paper
    measures; its cost is accumulated in :attr:`stats`.
    """

    step_budget: int = DEFAULT_STEP_BUDGET
    time_budget_ms: float = DEFAULT_TIME_BUDGET_MS
    modelled_setup_ms: float = 0.0
    stats: SandboxStats = field(default_factory=SandboxStats)

    def setup(self, algorithm: RoutingAlgorithm) -> Tuple[RoutingAlgorithm, float]:
        """Prepare ``algorithm`` for one sandboxed execution.

        Restricted-Python algorithms are re-validated and re-instantiated;
        other algorithm kinds (declarative criteria sets, builtins) only pay
        the modelled setup cost, since they carry no executable code.

        Returns:
            The (possibly re-created) algorithm and the setup cost in ms.
        """
        start = time.perf_counter()
        prepared = algorithm
        if isinstance(algorithm, RestrictedPythonAlgorithm):
            prepared = RestrictedPythonAlgorithm(
                source=algorithm.source,
                paths_per_interface=algorithm.paths_per_interface,
                step_budget=self.step_budget,
                time_budget_ms=self.time_budget_ms,
            )
        elapsed_ms = (time.perf_counter() - start) * 1000.0 + self.modelled_setup_ms
        self.stats.record(elapsed_ms)
        return prepared, elapsed_ms
