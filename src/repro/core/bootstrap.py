"""Bootstrapping connectivity (paper §IX, "future work" extension).

A disconnected or newly-joining AS wants connectivity on the order of a
single round trip rather than a full beaconing period.  The paper sketches
two mechanisms, both implemented here:

* **Path pulling from neighbours** — the ingress gateway of the joining AS
  asks the egress gateways of its neighbours for paths they already
  registered; if a neighbour has none, the request recurses one level
  further (:class:`NeighborPathCache` and :func:`bootstrap_paths`).

* **Rapid propagation** — a dedicated RAC that is notified as soon as a new
  PCB arrives and forwards it straight to the egress gateway, without
  waiting for the periodic optimization round.  To keep this scalable the
  RAC forwards at most one (possibly sub-optimal) PCB per origin AS and
  rate-limit interval (:class:`RapidPropagationRAC`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.beacon import Beacon
from repro.core.control_service import IrecControlService
from repro.core.databases import RegisteredPath, StoredBeacon
from repro.core.rac import RACSelection
from repro.exceptions import ConfigurationError
from repro.units import seconds


@dataclass
class RapidPropagationRAC:
    """Forward the first PCB of every origin immediately upon arrival.

    The container is not driven by the periodic round; instead the control
    service (or a test) calls :meth:`on_beacon_arrival` for every freshly
    accepted PCB.  The returned selections can be handed directly to the
    egress gateway's ``propagate``.

    Attributes:
        rac_id: Criteria tag used for the forwarded beacons.
        rate_limit_ms: Minimum simulated time between two rapid forwards for
            the same origin AS (the paper's per-origin guarantee interval).
    """

    rac_id: str = "rapid"
    rate_limit_ms: float = seconds(10)
    _last_forward_ms: Dict[int, float] = field(default_factory=dict)
    forwarded: int = 0
    suppressed: int = 0

    def on_beacon_arrival(
        self,
        stored: StoredBeacon,
        egress_interfaces: Sequence[int],
        now_ms: float,
    ) -> List[RACSelection]:
        """Decide whether to rapid-forward ``stored`` and on which interfaces."""
        origin = stored.beacon.origin_as
        last = self._last_forward_ms.get(origin)
        if last is not None and now_ms - last < self.rate_limit_ms:
            self.suppressed += 1
            return []
        self._last_forward_ms[origin] = now_ms
        self.forwarded += 1
        return [
            RACSelection(
                stored=stored,
                egress_interfaces=list(egress_interfaces),
                criteria_tag=self.rac_id,
            )
        ]

    def reset(self) -> None:
        """Forget the per-origin rate-limit state."""
        self._last_forward_ms.clear()
        self.forwarded = 0
        self.suppressed = 0


@dataclass
class NeighborPathCache:
    """Answer path requests from (re-)connecting neighbours.

    Wraps a control service and serves the registered paths of its path
    service, which is exactly what the paper's recursive path-request
    mechanism queries at each hop.
    """

    service: IrecControlService

    def paths_to(self, origin_as: int, limit: int = 5) -> List[RegisteredPath]:
        """Return up to ``limit`` registered paths towards ``origin_as``."""
        paths = self.service.path_service.paths_to(origin_as)
        paths.sort(key=lambda path: (path.segment.hop_count, path.segment.total_latency_ms()))
        return paths[: max(0, limit)]


def bootstrap_paths(
    joining_service: IrecControlService,
    neighbor_caches: Sequence[NeighborPathCache],
    wanted_origins: Sequence[int],
    max_depth: int = 2,
    limit_per_origin: int = 3,
    cache_resolver: Optional[object] = None,
) -> Dict[int, List[RegisteredPath]]:
    """Collect paths for a joining AS by querying neighbours recursively.

    The joining AS first asks its direct neighbours; for origins that remain
    unresolved, the request recurses to the neighbours' neighbours (the
    paper's "the process continues recursively"), up to ``max_depth``
    levels.

    Args:
        joining_service: Control service of the (re-)connecting AS; only
            used to exclude its own AS from the requested origins.
        neighbor_caches: Caches of the directly connected neighbours.
        wanted_origins: Origin ASes the joining AS wants paths towards.
        max_depth: How many levels of neighbours to query (1 = direct
            neighbours only).
        limit_per_origin: Maximum number of paths collected per origin.
        cache_resolver: Callable ``(as_id) -> Sequence[NeighborPathCache]``
            returning the caches of that AS's own neighbours; required only
            when ``max_depth`` is greater than one.

    Returns:
        Mapping from origin AS to the collected registered paths (possibly
        empty when no queried neighbour knows the origin).
    """
    if max_depth < 1:
        raise ConfigurationError(f"max_depth must be at least 1, got {max_depth}")

    result: Dict[int, List[RegisteredPath]] = {
        origin: [] for origin in wanted_origins if origin != joining_service.as_id
    }
    visited: Set[int] = {joining_service.as_id}
    frontier: List[NeighborPathCache] = list(neighbor_caches)

    def unresolved() -> List[int]:
        return [origin for origin, paths in result.items() if len(paths) < limit_per_origin]

    for depth in range(max_depth):
        pending = unresolved()
        if not pending or not frontier:
            break
        next_frontier: List[NeighborPathCache] = []
        for cache in frontier:
            if cache.service.as_id in visited:
                continue
            visited.add(cache.service.as_id)
            for origin in pending:
                collected = result[origin]
                if len(collected) >= limit_per_origin:
                    continue
                digests = {p.segment.digest() for p in collected}
                for path in cache.paths_to(origin, limit=limit_per_origin):
                    if len(collected) >= limit_per_origin:
                        break
                    if path.segment.digest() not in digests:
                        collected.append(path)
                        digests.add(path.segment.digest())
            if depth + 1 < max_depth and cache_resolver is not None:
                next_frontier.extend(cache_resolver(cache.service.as_id))
        frontier = next_frontier
    return result


@dataclass
class BootstrapReport:
    """Summary of a bootstrap attempt (used by tests and examples)."""

    origins_requested: int
    origins_resolved: int
    paths_collected: int

    @property
    def coverage(self) -> float:
        """Return the fraction of requested origins with at least one path."""
        if self.origins_requested == 0:
            return 1.0
        return self.origins_resolved / self.origins_requested


def summarize_bootstrap(paths_by_origin: Dict[int, List[RegisteredPath]]) -> BootstrapReport:
    """Summarize the output of :func:`bootstrap_paths`."""
    resolved = sum(1 for paths in paths_by_origin.values() if paths)
    total = sum(len(paths) for paths in paths_by_origin.values())
    return BootstrapReport(
        origins_requested=len(paths_by_origin),
        origins_resolved=resolved,
        paths_collected=total,
    )
