"""The tiered standardization model (paper §VI).

IREC categorizes its architectural features by how critical they are to
global connectivity and how often they are expected to change:

* **stable** features (PCB format, the three IREC extensions, the RAC ↔
  algorithm interface, one default connectivity algorithm) are standardized
  once,
* **beta** features (elementary metrics and the globally preferred
  algorithms for them) live on public append-only lists, and
* **nightly** features (arbitrary application-specific criteria) are never
  standardized — on-demand routing replaces standardization for them.

The :class:`StandardizationRegistry` models those lists; it is used by the
examples to show how a deployment grows new metrics and algorithms without
touching stable features, and by tests to assert the append-only rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.algebra import MetricDefinition
from repro.exceptions import ConfigurationError


class FeatureTier(enum.Enum):
    """Standardization tier of a feature."""

    STABLE = "stable"
    BETA = "beta"
    NIGHTLY = "nightly"


@dataclass(frozen=True)
class Feature:
    """One architectural feature and its tier."""

    name: str
    tier: FeatureTier
    description: str = ""


#: The stable features enumerated in §VI.
STABLE_FEATURES: Tuple[Feature, ...] = (
    Feature("pcb-format", FeatureTier.STABLE, "basic PCB format, compatible with legacy SCION"),
    Feature("pcb-extensions", FeatureTier.STABLE, "target / algorithm / interface-group extensions"),
    Feature("rac-interface", FeatureTier.STABLE, "standardized RAC-algorithm interface"),
    Feature("default-algorithm", FeatureTier.STABLE, "single algorithm guaranteeing connectivity"),
)


@dataclass
class StandardizationRegistry:
    """Append-only registries of beta metrics and algorithms.

    Attributes:
        default_algorithm: Name of the stable connectivity algorithm (the
            paper suggests basing it on the legacy SCION selection).
    """

    default_algorithm: str = "20sp"
    _metrics: Dict[str, MetricDefinition] = field(default_factory=dict)
    _beta_algorithms: List[str] = field(default_factory=list)
    _nightly_algorithms: List[str] = field(default_factory=list)

    def features(self) -> Tuple[Feature, ...]:
        """Return every known feature with its tier."""
        beta = tuple(
            Feature(f"metric:{name}", FeatureTier.BETA, "elementary metric") for name in self._metrics
        ) + tuple(
            Feature(f"algorithm:{name}", FeatureTier.BETA, "beta algorithm")
            for name in self._beta_algorithms
        )
        nightly = tuple(
            Feature(f"algorithm:{name}", FeatureTier.NIGHTLY, "on-demand algorithm")
            for name in self._nightly_algorithms
        )
        return STABLE_FEATURES + beta + nightly

    # ------------------------------------------------------------------
    # beta tier: append-only lists
    # ------------------------------------------------------------------
    def publish_metric(self, metric: MetricDefinition) -> None:
        """Append a metric to the public metric list.

        Raises:
            ConfigurationError: If a different definition is already
                published under the same name (the list is append-only).
        """
        existing = self._metrics.get(metric.name)
        if existing is not None and existing != metric:
            raise ConfigurationError(
                f"metric {metric.name!r} is already published with a different definition"
            )
        self._metrics[metric.name] = metric

    def metric(self, name: str) -> Optional[MetricDefinition]:
        """Return the published metric named ``name``, if any."""
        return self._metrics.get(name)

    def metrics(self) -> Tuple[str, ...]:
        """Return the published metric names, sorted."""
        return tuple(sorted(self._metrics))

    def publish_beta_algorithm(self, name: str) -> None:
        """Append an algorithm to the beta list (idempotent)."""
        if name not in self._beta_algorithms:
            self._beta_algorithms.append(name)

    def beta_algorithms(self) -> Tuple[str, ...]:
        """Return the beta algorithm names in publication order."""
        return tuple(self._beta_algorithms)

    # ------------------------------------------------------------------
    # nightly tier
    # ------------------------------------------------------------------
    def record_nightly_algorithm(self, name: str) -> None:
        """Record an on-demand algorithm sighting (purely informational)."""
        if name not in self._nightly_algorithms:
            self._nightly_algorithms.append(name)

    def nightly_algorithms(self) -> Tuple[str, ...]:
        """Return the recorded nightly algorithm names."""
        return tuple(self._nightly_algorithms)

    def tier_of(self, feature_name: str) -> Optional[FeatureTier]:
        """Return the tier of ``feature_name``, if it is known."""
        for feature in self.features():
            if feature.name == feature_name:
                return feature.tier
        return None
