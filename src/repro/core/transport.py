"""Control-plane transport abstraction.

Control services interact across AS boundaries through one typed message
fabric (:mod:`repro.core.messages`): PCBs, revocations, path
registrations, pull returns and path queries are all
:class:`~repro.core.messages.ControlMessage`\\ s delivered through the
services' ``on_message`` dispatch.  ``return_beacon_to_origin`` remains on
the protocol as a back-compat shim: it frames the returned beacon as a
typed :class:`~repro.core.messages.PullReturnMessage` (the message travels
the beacon's own multi-hop reverse path in one step, not a single link)
and dispatches it like every other message.  Fetching an on-demand
algorithm payload stays a synchronous round trip.  The transport is
abstracted behind a small protocol so that

* the discrete-event simulation can deliver messages with realistic link
  delays, per-AS inboxes and batched drains, and count propagated messages
  per interface and period (Figure 8c),
* unit tests can use :class:`LoopbackTransport`, which delivers
  synchronously to in-process control services, and
* the micro-benchmarks can run a single control service with a
  :class:`NullTransport` that swallows messages.

``send_beacon`` and ``send_revocation`` are kept as thin wrappers over
:meth:`send_message` — existing callers (the egress gateway, the
revocation flood) stay source-compatible while every message rides the
same fabric underneath.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Protocol, Tuple

from repro.core.beacon import Beacon
from repro.core.messages import ControlMessage, PCBMessage, PullReturnMessage
from repro.exceptions import SimulationError, UnknownASError


class ControlPlaneTransport(Protocol):
    """The inter-AS operations a control service relies on."""

    def send_message(
        self, sender_as: int, egress_interface: int, message: ControlMessage
    ) -> None:
        """Deliver ``message`` over the link attached to ``egress_interface``."""

    def send_beacon(self, sender_as: int, egress_interface: int, beacon: Beacon) -> None:
        """Deliver ``beacon`` over the link attached to ``egress_interface``."""

    def return_beacon_to_origin(self, sender_as: int, beacon: Beacon) -> None:
        """Return a terminated pull-based ``beacon`` to its origin AS."""

    def fetch_algorithm(self, requester_as: int, origin_as: int, algorithm_id: str) -> bytes:
        """Fetch an on-demand algorithm payload from ``origin_as``."""

    def send_revocation(self, sender_as: int, egress_interface: int, revocation) -> None:
        """Deliver ``revocation`` over the link attached to ``egress_interface``."""


@dataclass
class NullTransport:
    """A transport that records outgoing messages but delivers nothing.

    Used by micro-benchmarks that exercise a single AS in isolation.
    """

    sent: List[Tuple[int, int, Beacon]] = field(default_factory=list)
    returned: List[Tuple[int, Beacon]] = field(default_factory=list)
    revoked: List[Tuple[int, int, object]] = field(default_factory=list)
    messages: List[Tuple[int, int, ControlMessage]] = field(default_factory=list)
    payloads: Dict[Tuple[int, str], bytes] = field(default_factory=dict)

    def send_message(
        self, sender_as: int, egress_interface: int, message: ControlMessage
    ) -> None:
        """Record the typed message without delivering it."""
        self.messages.append((sender_as, egress_interface, message))
        if isinstance(message, PCBMessage):
            self.sent.append((sender_as, egress_interface, message.beacon))
        elif message.kind == "revocation":
            self.revoked.append((sender_as, egress_interface, message))

    def send_beacon(self, sender_as: int, egress_interface: int, beacon: Beacon) -> None:
        """Record the send without delivering it."""
        self.send_message(
            sender_as,
            egress_interface,
            PCBMessage(
                origin_as=beacon.origin_as,
                sequence=len(self.messages) + 1,
                created_at_ms=0.0,
                beacon=beacon,
            ),
        )

    def return_beacon_to_origin(self, sender_as: int, beacon: Beacon) -> None:
        """Record the return, typed, without delivering it."""
        self.returned.append((sender_as, beacon))
        self.messages.append(
            (
                sender_as,
                -1,
                PullReturnMessage(
                    origin_as=sender_as,
                    sequence=len(self.messages) + 1,
                    created_at_ms=0.0,
                    beacon=beacon,
                ),
            )
        )

    def fetch_algorithm(self, requester_as: int, origin_as: int, algorithm_id: str) -> bytes:
        """Serve a payload from the locally configured table."""
        try:
            return self.payloads[(origin_as, algorithm_id)]
        except KeyError:
            raise SimulationError(
                f"no payload configured for ({origin_as}, {algorithm_id!r})"
            ) from None

    def send_revocation(self, sender_as: int, egress_interface: int, revocation) -> None:
        """Record the revocation without delivering it."""
        self.send_message(sender_as, egress_interface, revocation)


@dataclass
class LoopbackTransport:
    """Synchronous in-process delivery between registered control services.

    Control services register themselves under their AS identifier; sending
    a message looks up the link's far end in the shared topology and invokes
    the destination service's ``on_message`` dispatch immediately.  Time is
    whatever the caller passes via :attr:`clock`.
    """

    topology: "object"  # repro.topology.graph.Topology; kept loose to avoid import cycles
    clock: Callable[[], float] = lambda: 0.0
    services: Dict[int, "object"] = field(default_factory=dict)
    sent_count: int = 0
    revocations_sent: int = 0
    _sequence: "itertools.count" = field(default_factory=lambda: itertools.count(1))

    def register(self, service: "object") -> None:
        """Register a control service (anything with ``as_id`` and handlers)."""
        self.services[service.as_id] = service

    def send_message(
        self, sender_as: int, egress_interface: int, message: ControlMessage
    ) -> None:
        """Deliver ``message`` synchronously to the far end of the link."""
        link = self.topology.link_of_interface((sender_as, egress_interface))
        remote_as, remote_interface = link.other_end((sender_as, egress_interface))
        service = self.services.get(remote_as)
        if service is None:
            raise UnknownASError(remote_as)
        if isinstance(message, PCBMessage):
            self.sent_count += 1
        elif message.kind == "revocation":
            self.revocations_sent += 1
        if message.needs_hop_tracking():
            message = message.with_hop(remote_as)
        service.on_message(message, on_interface=remote_interface, now_ms=self.clock())

    def send_beacon(self, sender_as: int, egress_interface: int, beacon: Beacon) -> None:
        """Deliver ``beacon`` synchronously to the far end of the link."""
        self.send_message(
            sender_as,
            egress_interface,
            PCBMessage(
                origin_as=beacon.origin_as,
                sequence=next(self._sequence),
                created_at_ms=self.clock(),
                beacon=beacon,
            ),
        )

    def return_beacon_to_origin(self, sender_as: int, beacon: Beacon) -> None:
        """Deliver a returned pull-based beacon to its origin's control service.

        Back-compat shim over the typed fabric: the beacon is framed as a
        :class:`PullReturnMessage` and handed to the origin's ``on_message``
        dispatch, which routes it to ``receive_returned_beacon``.
        """
        service = self.services.get(beacon.origin_as)
        if service is None:
            raise UnknownASError(beacon.origin_as)
        message = PullReturnMessage(
            origin_as=sender_as,
            sequence=next(self._sequence),
            created_at_ms=self.clock(),
            beacon=beacon,
        )
        service.on_message(message, on_interface=-1, now_ms=self.clock())

    def fetch_algorithm(self, requester_as: int, origin_as: int, algorithm_id: str) -> bytes:
        """Fetch a payload directly from the origin's control service."""
        service = self.services.get(origin_as)
        if service is None:
            raise UnknownASError(origin_as)
        return service.serve_algorithm(algorithm_id)

    def send_revocation(self, sender_as: int, egress_interface: int, revocation) -> None:
        """Deliver ``revocation`` synchronously to the far end of the link."""
        self.send_message(sender_as, egress_interface, revocation)
