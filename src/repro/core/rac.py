"""Routing algorithm containers (RACs, paper §V-C).

A RAC provides the execution environment for one routing algorithm.  In a
typically periodic pattern it requests candidate PCBs from the ingress
gateway (bucketed by origin AS and, when enabled, interface group and
target AS), hands them — together with intra-AS topology information — to
its algorithm, and forwards the per-egress-interface optimal sets to the
egress gateway.

Two RAC types exist:

* **static RACs** always run the algorithm configured by their AS, and
* **on-demand RACs** run the algorithm referenced in the PCBs of the bucket
  they are processing: they fetch the payload from the origin AS (caching
  it), verify its hash against the PCB extension and execute it inside a
  sandbox with strict resource limits.

Every execution is instrumented: the container records sandbox-setup, IPC
and algorithm-execution time separately, which is exactly the decomposition
Figure 6 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import (
    CandidateBeacon,
    ExecutionContext,
    ExecutionResult,
    RoutingAlgorithm,
)
from repro.core.beacon import Beacon
from repro.core.databases import BucketKey, IngressDatabase, StoredBeacon
from repro.core.ipc import IPCChannel
from repro.core.ondemand import OnDemandAlgorithmManager
from repro.core.sandbox import SandboxRuntime
from repro.exceptions import AlgorithmError, RACError, SandboxError
import time


@dataclass(frozen=True)
class RACConfig:
    """Configuration of one RAC.

    Attributes:
        rac_id: Identifier of the container (also used as the criteria tag
            when registering paths).
        on_demand: Whether this container runs on-demand algorithms.
        max_paths_per_interface: The maximally allowed size of the optimal
            set returned per egress interface.
        registration_limit: How many of the selected beacons (per origin AS
            and interface group) are registered at the path service.
        use_interface_groups: Whether candidate buckets are split per
            interface group (§IV-D); when disabled, groups are merged.
        use_targets: Whether pull-based buckets (with a target extension)
            are processed; static RACs without pull support skip them.
    """

    rac_id: str
    on_demand: bool = False
    max_paths_per_interface: int = 20
    registration_limit: int = 20
    use_interface_groups: bool = True
    use_targets: bool = True

    def __post_init__(self) -> None:
        if not self.rac_id:
            raise RACError("rac_id must be non-empty")
        if self.max_paths_per_interface < 1:
            raise RACError(
                f"max_paths_per_interface must be positive, got {self.max_paths_per_interface}"
            )
        if self.registration_limit < 0:
            raise RACError(
                f"registration_limit must be non-negative, got {self.registration_limit}"
            )


@dataclass
class RACSelection:
    """One beacon selected by a RAC, with the interfaces it is optimal for."""

    stored: StoredBeacon
    egress_interfaces: List[int]
    criteria_tag: str

    @property
    def beacon(self) -> Beacon:
        """Return the underlying beacon."""
        return self.stored.beacon


@dataclass
class RACExecutionReport:
    """Timing and volume report of one RAC processing round (Figure 6/7)."""

    rac_id: str
    buckets: int = 0
    candidates: int = 0
    selections: int = 0
    setup_ms: float = 0.0
    ipc_ms: float = 0.0
    execution_ms: float = 0.0
    skipped_buckets: int = 0
    failed_buckets: int = 0

    @property
    def total_ms(self) -> float:
        """Return the total processing latency of the round."""
        return self.setup_ms + self.ipc_ms + self.execution_ms

    def throughput_pcbs_per_second(self) -> float:
        """Return the candidate-processing throughput of the round."""
        if self.total_ms <= 0.0:
            return 0.0
        return self.candidates / (self.total_ms / 1000.0)


@dataclass
class RoutingAlgorithmContainer:
    """The RAC itself.

    Attributes:
        config: Static configuration.
        algorithm: The algorithm of a static RAC; must be ``None`` for
            on-demand RACs.
        on_demand_manager: Fetches, verifies and decodes on-demand payloads;
            required when :attr:`RACConfig.on_demand` is set.
        sandbox: Sandbox runtime used to prepare algorithm executions.
        ipc: Gateway ↔ RAC channel model.
    """

    config: RACConfig
    algorithm: Optional[RoutingAlgorithm] = None
    on_demand_manager: Optional[OnDemandAlgorithmManager] = None
    sandbox: SandboxRuntime = field(default_factory=SandboxRuntime)
    ipc: IPCChannel = field(default_factory=IPCChannel)

    def __post_init__(self) -> None:
        if self.config.on_demand:
            if self.on_demand_manager is None:
                raise RACError(f"on-demand RAC {self.config.rac_id} needs an algorithm manager")
        elif self.algorithm is None:
            raise RACError(f"static RAC {self.config.rac_id} needs an algorithm")

    # ------------------------------------------------------------------
    # bucket handling
    # ------------------------------------------------------------------
    def relevant_buckets(self, database: IngressDatabase) -> List[BucketKey]:
        """Return the ingress-database buckets this RAC is responsible for."""
        buckets = []
        for bucket in database.bucket_keys():
            _origin, _group, target, algorithm_id = bucket
            if self.config.on_demand != (algorithm_id is not None):
                continue
            if target is not None and not self.config.use_targets:
                continue
            buckets.append(bucket)
        if self.config.use_interface_groups:
            return buckets
        # Merge buckets that differ only in the interface group.
        merged: Dict[Tuple, BucketKey] = {}
        for bucket in buckets:
            origin, _group, target, algorithm_id = bucket
            merged.setdefault((origin, target, algorithm_id), bucket)
        return list(merged.values())

    def candidates_for(
        self, database: IngressDatabase, bucket: BucketKey
    ) -> List[StoredBeacon]:
        """Return the stored beacons of ``bucket`` (group-merged if configured)."""
        if self.config.use_interface_groups:
            return database.beacons_in_bucket(bucket)
        origin, _group, target, algorithm_id = bucket
        result = []
        for other in database.bucket_keys():
            if (other[0], other[2], other[3]) == (origin, target, algorithm_id):
                result.extend(database.beacons_in_bucket(other))
        return result

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def process(
        self,
        database: IngressDatabase,
        egress_interfaces: Tuple[int, ...],
        intra_latency_ms,
        local_as: int,
    ) -> Tuple[List[RACSelection], RACExecutionReport]:
        """Run the RAC over every relevant bucket of the ingress database.

        Returns:
            The selections to hand to the egress gateway, and the timing
            report of the round.
        """
        report = RACExecutionReport(rac_id=self.config.rac_id)
        selections: List[RACSelection] = []
        for bucket in self.relevant_buckets(database):
            stored_beacons = self.candidates_for(database, bucket)
            if not stored_beacons:
                continue
            try:
                bucket_selections = self._process_bucket(
                    stored_beacons, egress_interfaces, intra_latency_ms, local_as, report
                )
            except (AlgorithmError, SandboxError):
                report.failed_buckets += 1
                continue
            selections.extend(bucket_selections)
            report.buckets += 1
        report.selections = sum(len(s.egress_interfaces) for s in selections)
        return selections, report

    def _process_bucket(
        self,
        stored_beacons: List[StoredBeacon],
        egress_interfaces: Tuple[int, ...],
        intra_latency_ms,
        local_as: int,
        report: RACExecutionReport,
    ) -> List[RACSelection]:
        """Process one candidate bucket end to end."""
        algorithm = self._resolve_algorithm(stored_beacons)
        prepared, setup_ms = self.sandbox.setup(algorithm)
        report.setup_ms += setup_ms

        candidates = tuple(
            CandidateBeacon(
                beacon=stored.beacon, ingress_interface=stored.received_on_interface
            )
            for stored in stored_beacons
        )
        report.candidates += len(candidates)
        _wire, marshal_ms = self.ipc.marshal_beacons([c.beacon for c in candidates])
        report.ipc_ms += marshal_ms

        context = ExecutionContext(
            local_as=local_as,
            candidates=candidates,
            egress_interfaces=tuple(egress_interfaces),
            max_paths_per_interface=self.config.max_paths_per_interface,
            intra_latency_ms=intra_latency_ms,
        )
        start = time.perf_counter()
        result = prepared.execute(context)
        report.execution_ms += (time.perf_counter() - start) * 1000.0

        flat = [
            (interface, beacon)
            for interface, beacons in result.selections.items()
            for beacon in beacons
        ]
        report.ipc_ms += self.ipc.transfer_results(flat)
        return self._merge_result(stored_beacons, result, prepared)

    def _resolve_algorithm(self, stored_beacons: List[StoredBeacon]) -> RoutingAlgorithm:
        """Return the algorithm to run for this bucket."""
        if not self.config.on_demand:
            assert self.algorithm is not None  # enforced in __post_init__
            return self.algorithm
        assert self.on_demand_manager is not None  # enforced in __post_init__
        reference_beacon = stored_beacons[0].beacon
        if reference_beacon.extensions.algorithm is None:
            raise AlgorithmError("on-demand bucket contains a beacon without algorithm extension")
        return self.on_demand_manager.resolve(reference_beacon)

    def _merge_result(
        self,
        stored_beacons: List[StoredBeacon],
        result: ExecutionResult,
        algorithm: RoutingAlgorithm,
    ) -> List[RACSelection]:
        """Convert an execution result into per-beacon selections."""
        by_digest: Dict[str, StoredBeacon] = {
            stored.beacon.digest(): stored for stored in stored_beacons
        }
        merged: Dict[str, RACSelection] = {}
        for egress_interface, beacons in result.selections.items():
            for beacon in beacons:
                digest = beacon.digest()
                stored = by_digest.get(digest)
                if stored is None:
                    # The algorithm fabricated a beacon that was not among
                    # the candidates; refuse to propagate it.
                    raise AlgorithmError(
                        f"algorithm {algorithm.name} returned an unknown beacon"
                    )
                selection = merged.get(digest)
                if selection is None:
                    selection = RACSelection(
                        stored=stored, egress_interfaces=[], criteria_tag=self.config.rac_id
                    )
                    merged[digest] = selection
                if egress_interface not in selection.egress_interfaces:
                    selection.egress_interfaces.append(egress_interface)
        return list(merged.values())
