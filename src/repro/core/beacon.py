"""Path-construction beacons (PCBs).

A beacon records one inter-domain path from its **origin AS** to the AS
currently holding it, at the granularity of (AS, ingress interface, egress
interface) hops, together with per-hop static performance metadata and a
signature chain: every AS signs the entry it appends, over everything that
precedes it (paper §III).

Beacons are immutable.  Propagating a beacon to a neighbour produces a new
beacon with one more :class:`ASEntry`; registering a beacon at the local
path service produces a *terminated* beacon whose last entry has no egress
interface.  The :class:`BeaconBuilder` owned by each AS's egress gateway is
the only component that creates or extends beacons, which keeps the signing
logic in one place.

Fast-path invariants
--------------------

Beacons and their entries are **immutable**, which makes every derived
value cacheable: canonical encodings, the SHA-256 digest (the canonical
identity used for deduplication everywhere), the prefix-digest chain and
the accumulated path metrics are all computed at most once per object and
memoized in the instance ``__dict__`` (dataclass equality and hashing only
consider declared fields, so the memos are invisible to comparisons).
Because :class:`ASEntry` objects are shared between a beacon and every
beacon derived from it via :meth:`Beacon.with_entry`, extending a beacon
re-encodes only the appended entry — the parent's per-entry encodings are
cache hits — so building an ``L``-hop beacon costs ``O(L)`` entry encodings
in total instead of ``O(L²)``.

The digest is defined as ``sha256(header | entry_0 | … | entry_{L-1})`` and
is computed via an incrementally-updated hash state whose intermediate
snapshots form the :meth:`Beacon.prefix_digests` chain: element ``i`` is
the digest the beacon had when entry ``i`` was its last entry.  The ingress
gateway keys its verified-prefix cache on this chain, so both dedup and
incremental re-verification come out of one pass over the encoding.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.crypto.hashing import beacon_digest, count_crypto_op
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import BeaconError, LoopError
from repro.core.extensions import ExtensionSet
from repro.core.staticinfo import StaticInfo
from repro.topology.entities import InterfaceID, LinkID, normalize_link_id

#: Default beacon validity: SCION caps PCB lifetimes with a global upper
#: bound; we use six hours of simulated time.
DEFAULT_VALIDITY_MS = 6.0 * 60.0 * 60.0 * 1000.0

_beacon_sequence = itertools.count(1)


def _memo(obj, key: str, compute):
    """Return ``obj.__dict__[key]``, computing and storing it on first use.

    The single memoization primitive of the beacon fast path.  It works on
    frozen dataclasses because writing to the instance ``__dict__``
    bypasses the frozen ``__setattr__``, and stays invisible to dataclass
    equality/hashing, which only consider declared fields.
    """
    cached = obj.__dict__.get(key)
    if cached is None:
        cached = compute()
        obj.__dict__[key] = cached
    return cached


@dataclass(frozen=True)
class ASEntry:
    """One AS hop of a beacon.

    Attributes:
        as_id: The AS that appended this entry.
        ingress_interface: Local interface on which the beacon was received;
            ``None`` for the origin entry.
        egress_interface: Local interface over which the beacon was (or will
            be) propagated; ``None`` for a terminal entry created at
            registration time.
        static_info: Per-hop performance metadata.
        signature: Signature of ``as_id`` over the beacon prefix ending in
            this entry.
    """

    as_id: int
    ingress_interface: Optional[int]
    egress_interface: Optional[int]
    static_info: StaticInfo = field(default_factory=StaticInfo)
    signature: bytes = b""

    def encode_unsigned(self) -> str:
        """Return the canonical encoding of the entry without its signature.

        The encoding is memoized: entries are immutable, so it is computed
        at most once per entry object.
        """
        return _memo(
            self,
            "_encoded_unsigned",
            lambda: (
                f"entry(as={self.as_id},in={self.ingress_interface},"
                f"out={self.egress_interface},{self.static_info.encode()})"
            ),
        )

    def encode(self) -> str:
        """Return the canonical encoding including the signature (memoized)."""
        return _memo(
            self, "_encoded", lambda: f"{self.encode_unsigned()}sig({self.signature.hex()})"
        )


@dataclass(frozen=True)
class Beacon:
    """An immutable path-construction beacon.

    Attributes:
        origin_as: AS that originated the beacon.
        created_at_ms: Simulated creation timestamp in milliseconds.
        validity_ms: Lifetime after which the beacon expires.
        entries: AS entries from the origin to the current holder.
        extensions: IREC extensions set by the origin AS.
        beacon_id: Monotonic identifier, unique within one process; used
            only for diagnostics, never for protocol decisions.
    """

    origin_as: int
    created_at_ms: float
    entries: Tuple[ASEntry, ...]
    extensions: ExtensionSet = field(default_factory=ExtensionSet)
    validity_ms: float = DEFAULT_VALIDITY_MS
    beacon_id: int = field(default_factory=lambda: next(_beacon_sequence))

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------
    @property
    def hop_count(self) -> int:
        """Return the number of AS entries (AS-level path length)."""
        return len(self.entries)

    @property
    def last_entry(self) -> ASEntry:
        """Return the most recently appended entry."""
        if not self.entries:
            raise BeaconError("beacon has no entries")
        return self.entries[-1]

    @property
    def last_as(self) -> int:
        """Return the AS that appended the last entry."""
        return self.last_entry.as_id

    @property
    def origin_interface(self) -> Optional[int]:
        """Return the egress interface of the origin entry."""
        if not self.entries:
            return None
        return self.entries[0].egress_interface

    @property
    def is_terminated(self) -> bool:
        """Return whether the beacon has been terminated (registered)."""
        return bool(self.entries) and self.entries[-1].egress_interface is None

    @property
    def target_as(self) -> Optional[int]:
        """Return the pull-based target AS, if any."""
        return self.extensions.target.target_as if self.extensions.target else None

    @property
    def algorithm_id(self) -> Optional[str]:
        """Return the on-demand algorithm identifier, if any."""
        return self.extensions.algorithm.algorithm_id if self.extensions.algorithm else None

    @property
    def interface_group_id(self) -> Optional[int]:
        """Return the origin interface-group identifier, if any."""
        if self.extensions.interface_group is None:
            return None
        return self.extensions.interface_group.group_id

    def as_path(self) -> Tuple[int, ...]:
        """Return the sequence of AS identifiers from the origin onwards."""
        return _memo(self, "_as_path", lambda: tuple(entry.as_id for entry in self.entries))

    def contains_as(self, as_id: int) -> bool:
        """Return whether ``as_id`` already appears on the beacon's path."""
        return as_id in _memo(self, "_as_set", lambda: frozenset(self.as_path()))

    def links(self) -> Tuple[LinkID, ...]:
        """Return the inter-domain links traversed, as normalised link ids.

        The link between consecutive entries ``i`` and ``i + 1`` connects
        the egress interface of entry ``i`` with the ingress interface of
        entry ``i + 1``.  The tuple is memoized: link-state checks run on
        every in-flight delivery of a dynamic scenario and revocation
        purges probe it per stored beacon, so the walk must not repeat.
        """

        def compute() -> Tuple[LinkID, ...]:
            result: List[LinkID] = []
            for previous, current in zip(self.entries, self.entries[1:]):
                if previous.egress_interface is None or current.ingress_interface is None:
                    raise BeaconError("interior beacon entries must specify both interfaces")
                a: InterfaceID = (previous.as_id, previous.egress_interface)
                b: InterfaceID = (current.as_id, current.ingress_interface)
                result.append(normalize_link_id(a, b))
            return tuple(result)

        return _memo(self, "_links", compute)

    def link_set(self) -> frozenset:
        """Return :meth:`links` as a memoized frozenset for containment checks."""
        return _memo(self, "_link_set", lambda: frozenset(self.links()))

    def interfaces(self) -> Tuple[InterfaceID, ...]:
        """Return every (AS, interface) pair that appears on the beacon."""
        result: List[InterfaceID] = []
        for entry in self.entries:
            if entry.ingress_interface is not None:
                result.append((entry.as_id, entry.ingress_interface))
            if entry.egress_interface is not None:
                result.append((entry.as_id, entry.egress_interface))
        return tuple(result)

    # ------------------------------------------------------------------
    # accumulated metrics
    # ------------------------------------------------------------------
    def total_latency_ms(self) -> float:
        """Return the accumulated latency from the origin to the holder.

        Sums every entry's intra-AS latency and every traversed link's
        latency.  For a non-terminated beacon the last entry's egress link
        latency is included, i.e. the value is the latency up to the ingress
        interface of the *next* AS (the one about to receive the beacon),
        matching what that AS observes when optimizing received paths.

        The value is memoized — beacons are immutable, so the walk over the
        entries happens at most once per beacon object.
        """
        return _memo(
            self,
            "_total_latency_ms",
            lambda: sum(entry.static_info.hop_latency_ms for entry in self.entries),
        )

    def bottleneck_bandwidth_mbps(self) -> float:
        """Return the bottleneck (minimum) link bandwidth along the path (memoized)."""

        def compute() -> float:
            bandwidths = [
                entry.static_info.link_bandwidth_mbps
                for entry in self.entries
                if entry.static_info.link_bandwidth_mbps is not None
            ]
            return min(bandwidths) if bandwidths else float("inf")

        return _memo(self, "_bottleneck_bandwidth_mbps", compute)

    # ------------------------------------------------------------------
    # lifecycle and integrity
    # ------------------------------------------------------------------
    def is_expired(self, now_ms: float) -> bool:
        """Return whether the beacon has passed its validity horizon."""
        return now_ms >= self.created_at_ms + self.validity_ms

    def expires_at_ms(self) -> float:
        """Return the absolute simulated expiry time."""
        return self.created_at_ms + self.validity_ms

    def header_encoding(self) -> str:
        """Return the canonical encoding of the beacon header (memoized)."""
        return _memo(
            self,
            "_header_encoding",
            lambda: (
                f"pcb(origin={self.origin_as},created={self.created_at_ms:.3f},"
                f"validity={self.validity_ms:.3f},{self.extensions.encode()})"
            ),
        )

    def _entry_encodings(self) -> Tuple[str, ...]:
        """Return the cached full encodings of all entries.

        Each element comes from :meth:`ASEntry.encode`, which memoizes on
        the entry object itself; since entries are shared with every beacon
        derived through :meth:`with_entry`, only entries never encoded
        before (typically just the newly-appended one) do real work.
        """
        return _memo(
            self,
            "_entry_encodings_cache",
            lambda: tuple(entry.encode() for entry in self.entries),
        )

    def signed_prefix(self, upto: int) -> bytes:
        """Return the byte string signed by the AS that appended entry ``upto``.

        The signed material covers the header, all fully-encoded previous
        entries (including their signatures) and the unsigned encoding of
        entry ``upto`` itself, which chains the signatures together.
        """
        if not 0 <= upto < len(self.entries):
            raise BeaconError(f"entry index {upto} out of range")
        parts = [self.header_encoding()]
        parts.extend(self._entry_encodings()[:upto])
        parts.append(self.entries[upto].encode_unsigned())
        return "|".join(parts).encode("utf-8")

    def encode(self) -> bytes:
        """Return the full canonical encoding (used for hashing/dedup, memoized)."""

        def compute() -> bytes:
            count_crypto_op("beacon_encode")
            parts = [self.header_encoding()]
            parts.extend(self._entry_encodings())
            return "|".join(parts).encode("utf-8")

        return _memo(self, "_encoded", compute)

    def prefix_digests(self) -> Tuple[str, ...]:
        """Return the digest chain of the beacon's prefixes (memoized).

        Element ``i`` is the SHA-256 hex digest of
        ``header | entry_0 | … | entry_i`` — i.e. exactly the
        :meth:`digest` the beacon had when entry ``i`` was its last entry.
        The whole chain is produced in one pass by snapshotting an
        incrementally-updated hash state, so it costs one traversal of the
        encoding regardless of the hop count.  The ingress gateway keys its
        verified-prefix cache on these values.
        """
        def compute() -> Tuple[str, ...]:
            count_crypto_op("beacon_digest")
            state = hashlib.sha256(self.header_encoding().encode("utf-8"))
            digests: List[str] = []
            for encoded_entry in self._entry_encodings():
                state.update(b"|")
                state.update(encoded_entry.encode("utf-8"))
                digests.append(state.copy().hexdigest())
            return tuple(digests)

        return _memo(self, "_prefix_digests", compute)

    def digest(self) -> str:
        """Return the SHA-256 hex digest of the full encoding (memoized)."""
        return _memo(
            self,
            "_digest",
            lambda: self.prefix_digests()[-1] if self.entries else beacon_digest(self.encode()),
        )

    def verify(self, verifier: Verifier) -> None:
        """Verify the complete signature chain.

        Raises:
            SignatureError: If any entry's signature is invalid.
            BeaconError: If the beacon has no entries.
        """
        self.verify_suffix(verifier, first_entry=0)

    def verify_suffix(self, verifier: Verifier, first_entry: int) -> None:
        """Verify the signatures of entries ``first_entry`` onwards.

        The signed prefixes are built from one growing buffer instead of
        being re-joined from scratch per entry, and the per-entry encodings
        are cache hits, so the string work is linear in the encoding size.
        Skipping already-verified prefixes is only sound when the caller
        knows the prefix ending at ``first_entry - 1`` was verified against
        the same key material — that is what the ingress gateway's
        verified-prefix cache establishes.

        Raises:
            SignatureError: If any checked entry's signature is invalid.
            BeaconError: If the beacon has no entries or ``first_entry`` is
                out of range.
        """
        if not self.entries:
            raise BeaconError("cannot verify a beacon without entries")
        if not 0 <= first_entry <= len(self.entries):
            raise BeaconError(f"entry index {first_entry} out of range")
        encodings = self._entry_encodings()
        prefix_parts = [self.header_encoding()]
        prefix_parts.extend(encodings[:first_entry])
        prefix = "|".join(prefix_parts)
        for index in range(first_entry, len(self.entries)):
            entry = self.entries[index]
            signed = f"{prefix}|{entry.encode_unsigned()}".encode("utf-8")
            verifier.verify(entry.as_id, signed, entry.signature)
            prefix = f"{prefix}|{encodings[index]}"

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_entry(self, entry: ASEntry) -> "Beacon":
        """Return a new beacon with ``entry`` appended (no loop allowed)."""
        if self.is_terminated:
            raise BeaconError("cannot extend a terminated beacon")
        if self.contains_as(entry.as_id):
            raise LoopError(
                f"AS {entry.as_id} already on path {self.as_path()}; refusing to create a loop"
            )
        return replace(self, entries=self.entries + (entry,), beacon_id=next(_beacon_sequence))


@dataclass
class BeaconBuilder:
    """Creates, extends and terminates beacons on behalf of one AS.

    The builder encapsulates the signing logic: entries are first appended
    unsigned, then the signature over the correctly chained prefix is
    computed and substituted in.  It is owned by the AS's egress gateway.
    """

    as_id: int
    signer: Signer

    def originate(
        self,
        egress_interface: int,
        created_at_ms: float,
        static_info: Optional[StaticInfo] = None,
        extensions: Optional[ExtensionSet] = None,
        validity_ms: float = DEFAULT_VALIDITY_MS,
    ) -> Beacon:
        """Create a fresh beacon leaving this AS over ``egress_interface``."""
        entry = ASEntry(
            as_id=self.as_id,
            ingress_interface=None,
            egress_interface=egress_interface,
            static_info=static_info or StaticInfo(),
        )
        beacon = Beacon(
            origin_as=self.as_id,
            created_at_ms=created_at_ms,
            entries=(entry,),
            extensions=extensions or ExtensionSet(),
            validity_ms=validity_ms,
        )
        return self._sign_last_entry(beacon)

    def extend(
        self,
        beacon: Beacon,
        ingress_interface: int,
        egress_interface: int,
        static_info: Optional[StaticInfo] = None,
    ) -> Beacon:
        """Append this AS's hop to ``beacon`` for propagation."""
        entry = ASEntry(
            as_id=self.as_id,
            ingress_interface=ingress_interface,
            egress_interface=egress_interface,
            static_info=static_info or StaticInfo(),
        )
        return self._sign_last_entry(beacon.with_entry(entry))

    def terminate(
        self,
        beacon: Beacon,
        ingress_interface: int,
        static_info: Optional[StaticInfo] = None,
    ) -> Beacon:
        """Append a terminal (no-egress) entry, producing a registrable segment."""
        entry = ASEntry(
            as_id=self.as_id,
            ingress_interface=ingress_interface,
            egress_interface=None,
            static_info=static_info or StaticInfo(),
        )
        return self._sign_last_entry(beacon.with_entry(entry))

    def _sign_last_entry(self, beacon: Beacon) -> Beacon:
        """Replace the last entry with a signed copy."""
        index = len(beacon.entries) - 1
        signature = self.signer.sign(beacon.signed_prefix(index))
        signed_entry = replace(beacon.entries[index], signature=signature)
        entries = beacon.entries[:index] + (signed_entry,)
        return replace(beacon, entries=entries)


def dedupe_beacons(beacons: Iterable[Beacon]) -> List[Beacon]:
    """Return ``beacons`` with exact duplicates (by digest) removed.

    Order is preserved; the first occurrence of each digest wins.
    """
    seen = set()
    result: List[Beacon] = []
    for beacon in beacons:
        digest = beacon.digest()
        if digest not in seen:
            seen.add(digest)
            result.append(beacon)
    return result


def beacons_per_origin(beacons: Sequence[Beacon]) -> dict:
    """Group beacons by origin AS (helper shared by stores and algorithms)."""
    grouped: dict = {}
    for beacon in beacons:
        grouped.setdefault(beacon.origin_as, []).append(beacon)
    return grouped
