"""Admission policies for the ingress gateway.

The ingress gateway "verifies the included signatures and whether the path
constructed by the PCB complies with the local AS' policies" (paper §V-B).
Signature, expiry and loop checks are built into the gateway; this module
provides the configurable policy layer on top:

* :class:`MaxPathLengthPolicy` — reject beacons whose AS path is too long,
* :class:`OriginFilterPolicy` — allow- or deny-list of origin ASes,
* :class:`AvoidASPolicy` — reject beacons traversing specific ASes
  (geopolitical or compliance avoidance),
* :class:`ValleyFreePolicy` — enforce Gao-Rexford export semantics on the
  neighbour the beacon was received from, and
* :class:`CompositePolicy` — combine several policies.

Every policy is a callable ``(beacon, local_as) -> None`` that raises
:class:`~repro.exceptions.PolicyViolationError` to reject, matching the
``AdmissionPolicy`` signature of :mod:`repro.core.ingress`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.core.beacon import Beacon
from repro.exceptions import ConfigurationError, PolicyViolationError
from repro.topology.entities import Relationship
from repro.topology.graph import Topology


@dataclass(frozen=True)
class MaxPathLengthPolicy:
    """Reject beacons whose AS-level path exceeds a maximum length."""

    max_hops: int = 16

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ConfigurationError(f"max_hops must be positive, got {self.max_hops}")

    def __call__(self, beacon: Beacon, _local_as: int) -> None:
        if beacon.hop_count > self.max_hops:
            raise PolicyViolationError(
                f"path length {beacon.hop_count} exceeds the local maximum of {self.max_hops}"
            )


@dataclass(frozen=True)
class OriginFilterPolicy:
    """Allow- or deny-list on the beacon's origin AS.

    Exactly one of ``allowed`` and ``denied`` should be non-empty; if both
    are given the allow-list is applied first, then the deny-list.
    """

    allowed: FrozenSet[int] = frozenset()
    denied: FrozenSet[int] = frozenset()

    def __call__(self, beacon: Beacon, _local_as: int) -> None:
        if self.allowed and beacon.origin_as not in self.allowed:
            raise PolicyViolationError(
                f"origin AS {beacon.origin_as} is not in the local allow-list"
            )
        if beacon.origin_as in self.denied:
            raise PolicyViolationError(f"origin AS {beacon.origin_as} is deny-listed")


@dataclass(frozen=True)
class AvoidASPolicy:
    """Reject beacons whose path traverses any of the avoided ASes."""

    avoided: FrozenSet[int] = frozenset()

    def __call__(self, beacon: Beacon, _local_as: int) -> None:
        on_path = set(beacon.as_path()) & self.avoided
        if on_path:
            raise PolicyViolationError(
                f"path traverses avoided ASes {sorted(on_path)}"
            )


@dataclass
class ValleyFreePolicy:
    """Enforce Gao-Rexford semantics on the propagating neighbour.

    A beacon received from a neighbour is only admissible if that neighbour
    was allowed to export it to the local AS: paths learned from the
    neighbour's providers or peers may only flow "downhill" to its
    customers.  The check needs the business relationships around the
    neighbour, so the policy holds a reference to the (local view of the)
    topology.

    The check is conservative: if the beacon's previous hop cannot be
    determined (e.g. the neighbour originated it), the beacon is accepted.
    """

    topology: Topology

    def __call__(self, beacon: Beacon, local_as: int) -> None:
        if beacon.hop_count < 2:
            return  # originated by the direct neighbour: always exportable
        neighbor_as = beacon.last_as
        received_from = beacon.entries[-2].as_id
        try:
            allowed = self.topology.export_allowed(
                received_from=received_from, via=neighbor_as, to_as=local_as
            )
        except Exception as exc:  # unknown adjacency: treat as violation
            raise PolicyViolationError(
                f"cannot validate export from AS {neighbor_as}: {exc}"
            ) from exc
        if not allowed:
            raise PolicyViolationError(
                f"AS {neighbor_as} may not export a path learned from AS {received_from} "
                f"to AS {local_as} under valley-free routing"
            )


@dataclass
class CompositePolicy:
    """Apply several policies in order; the first violation wins."""

    policies: Tuple[object, ...] = ()

    def __call__(self, beacon: Beacon, local_as: int) -> None:
        for policy in self.policies:
            policy(beacon, local_as)

    def and_also(self, policy: object) -> "CompositePolicy":
        """Return a new composite with ``policy`` appended."""
        return CompositePolicy(policies=self.policies + (policy,))


def standard_policies(
    topology: Optional[Topology] = None,
    max_hops: int = 16,
    denied_origins: Iterable[int] = (),
    avoided_ases: Iterable[int] = (),
) -> CompositePolicy:
    """Build the composite policy a typical AS deploys.

    Args:
        topology: When given, valley-free enforcement is included.
        max_hops: Maximum admissible AS-path length.
        denied_origins: Origin ASes to reject outright.
        avoided_ases: ASes whose transit must be avoided.
    """
    policies: list = [MaxPathLengthPolicy(max_hops=max_hops)]
    denied = frozenset(int(a) for a in denied_origins)
    if denied:
        policies.append(OriginFilterPolicy(denied=denied))
    avoided = frozenset(int(a) for a in avoided_ases)
    if avoided:
        policies.append(AvoidASPolicy(avoided=avoided))
    if topology is not None:
        policies.append(ValleyFreePolicy(topology=topology))
    return CompositePolicy(policies=tuple(policies))
