"""IREC's PCB extensions (paper §IV-F).

IREC adds three optional extensions to the SCION PCB format, all set by the
origin AS:

* :class:`TargetExtension` — pull-based routing (§IV-B): the beacon is
  addressed to a single target AS, which returns it to the origin.
* :class:`AlgorithmExtension` — on-demand routing (§IV-C): the beacon
  carries the identifier and implementation hash of the routing algorithm
  that every on-path AS should execute for it.
* :class:`InterfaceGroupExtension` — flexible optimization granularity
  (§IV-D): the beacon is tagged with the interface group of its origin
  interface so that downstream ASes optimize per group.

At most one extension of each kind may be present on a beacon; the
:class:`ExtensionSet` container enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ExtensionError


@dataclass(frozen=True)
class TargetExtension:
    """Pull-based routing extension naming the beacon's target AS."""

    target_as: int

    def encode(self) -> str:
        """Return the canonical encoding used for signing."""
        return f"target({self.target_as})"


@dataclass(frozen=True)
class AlgorithmExtension:
    """On-demand routing extension carrying an algorithm reference.

    Attributes:
        algorithm_id: Identifier under which the origin AS published the
            algorithm (resolvable through the origin's algorithm registry).
        code_hash: Hex digest of the algorithm payload.  RACs verify the
            fetched payload against this hash; the hash itself is protected
            by the origin AS's signature over the beacon.
    """

    algorithm_id: str
    code_hash: str

    def __post_init__(self) -> None:
        if not self.algorithm_id:
            raise ExtensionError("algorithm_id must be non-empty")
        if not self.code_hash:
            raise ExtensionError("code_hash must be non-empty")

    def encode(self) -> str:
        """Return the canonical encoding used for signing."""
        return f"algorithm({self.algorithm_id},{self.code_hash})"


@dataclass(frozen=True)
class InterfaceGroupExtension:
    """Flexible-granularity extension naming the origin interface group."""

    group_id: int

    def __post_init__(self) -> None:
        if self.group_id < 0:
            raise ExtensionError(f"group_id must be non-negative, got {self.group_id}")

    def encode(self) -> str:
        """Return the canonical encoding used for signing."""
        return f"ifgroup({self.group_id})"


@dataclass(frozen=True)
class ExtensionSet:
    """The (at most one of each kind) extensions attached to a beacon."""

    target: Optional[TargetExtension] = None
    algorithm: Optional[AlgorithmExtension] = None
    interface_group: Optional[InterfaceGroupExtension] = None

    def encode(self) -> str:
        """Return the canonical encoding used for signing."""
        parts = []
        if self.target is not None:
            parts.append(self.target.encode())
        if self.algorithm is not None:
            parts.append(self.algorithm.encode())
        if self.interface_group is not None:
            parts.append(self.interface_group.encode())
        return "ext[" + ";".join(parts) + "]"

    @property
    def is_pull_based(self) -> bool:
        """Return whether the beacon uses pull-based routing."""
        return self.target is not None

    @property
    def is_on_demand(self) -> bool:
        """Return whether the beacon uses on-demand routing."""
        return self.algorithm is not None

    def with_target(self, target_as: int) -> "ExtensionSet":
        """Return a copy with the target extension set.

        Raises:
            ExtensionError: If a target extension is already present.
        """
        if self.target is not None:
            raise ExtensionError("beacon already carries a target extension")
        return ExtensionSet(
            target=TargetExtension(target_as=target_as),
            algorithm=self.algorithm,
            interface_group=self.interface_group,
        )

    def with_algorithm(self, algorithm_id: str, code_hash: str) -> "ExtensionSet":
        """Return a copy with the algorithm extension set.

        Raises:
            ExtensionError: If an algorithm extension is already present.
        """
        if self.algorithm is not None:
            raise ExtensionError("beacon already carries an algorithm extension")
        return ExtensionSet(
            target=self.target,
            algorithm=AlgorithmExtension(algorithm_id=algorithm_id, code_hash=code_hash),
            interface_group=self.interface_group,
        )

    def with_interface_group(self, group_id: int) -> "ExtensionSet":
        """Return a copy with the interface-group extension set.

        Raises:
            ExtensionError: If an interface-group extension is already present.
        """
        if self.interface_group is not None:
            raise ExtensionError("beacon already carries an interface-group extension")
        return ExtensionSet(
            target=self.target,
            algorithm=self.algorithm,
            interface_group=InterfaceGroupExtension(group_id=group_id),
        )
