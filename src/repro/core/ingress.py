"""The ingress gateway (paper §V-B).

The ingress gateway is the entry point of every PCB into an AS: it verifies
the signature chain, checks the beacon against the local AS's admission
policy (expiry, loops, optionally more restrictive rules), stores accepted
beacons in the ingress database and periodically removes (soon-to-be)
expired ones.

Signature verification is the dominant per-PCB cost, and most of it is
redundant: a beacon that arrives here is usually a one-entry extension of a
beacon whose prefix this AS verified in an earlier period (or over a
parallel link).  The gateway therefore keeps a **verified-prefix cache**
keyed by the beacon's prefix-digest chain (see
:meth:`repro.core.beacon.Beacon.prefix_digests`): when the digest of a
prefix is in the cache, an identical byte string was verified against the
same key store before, so only the entries *after* that prefix need their
signatures checked.  This turns the per-AS verification cost of a
re-received L-hop extension from O(L) HMACs into O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.beacon import Beacon
from repro.core.databases import IngressDatabase, StoredBeacon
from repro.crypto.signer import Verifier
from repro.exceptions import (
    BeaconError,
    ExpiredBeaconError,
    PolicyViolationError,
    SignatureError,
)

#: An admission policy inspects a beacon and raises
#: :class:`PolicyViolationError` to reject it.
AdmissionPolicy = Callable[[Beacon, int], None]


@dataclass
class VerifiedPrefixCache:
    """Remembers beacon prefixes whose signature chains already verified.

    Entries are the hex digests of verified prefixes (a prefix of a valid
    beacon is itself a validly signed beacon, so every element of a
    verified beacon's :meth:`~repro.core.beacon.Beacon.prefix_digests`
    chain may be cached).  The cache is bounded: when full, the oldest
    entries are evicted in insertion order, which approximates LRU well
    enough here because beacon lifetimes are bounded anyway.

    The cache is sound to share only among verifiers backed by the same key
    store; each ingress gateway owns exactly one.
    """

    max_entries: int = 65536
    _digests: Dict[str, None] = field(default_factory=dict)

    def __contains__(self, digest: str) -> bool:
        return digest in self._digests

    def __len__(self) -> int:
        return len(self._digests)

    def add(self, digest: str) -> None:
        """Mark ``digest`` as the digest of a verified prefix.

        A non-positive ``max_entries`` disables the cache entirely (every
        verification stays a full one).
        """
        if self.max_entries <= 0 or digest in self._digests:
            return
        while self._digests and len(self._digests) >= self.max_entries:
            self._digests.pop(next(iter(self._digests)))
        self._digests[digest] = None

    def clear(self) -> None:
        """Drop every cached prefix."""
        self._digests.clear()


@dataclass
class IngressStats:
    """Counters kept by the ingress gateway for diagnostics and benchmarks."""

    received: int = 0
    accepted: int = 0
    duplicates: int = 0
    rejected_signature: int = 0
    rejected_policy: int = 0
    rejected_expired: int = 0
    #: Beacons verified entirely from scratch vs. via a cached prefix.
    full_verifications: int = 0
    incremental_verifications: int = 0
    #: Individual entry signatures actually checked (HMAC operations).
    signatures_checked: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.received = 0
        self.accepted = 0
        self.duplicates = 0
        self.rejected_signature = 0
        self.rejected_policy = 0
        self.rejected_expired = 0
        self.full_verifications = 0
        self.incremental_verifications = 0
        self.signatures_checked = 0


@dataclass
class IngressGateway:
    """Receives, validates and stores incoming PCBs for one AS.

    Attributes:
        as_id: The local AS.
        verifier: Signature verifier backed by the deployment's key store.
        database: The ingress database shared with the AS's RACs.
        policies: Additional admission policies applied after the built-in
            signature, expiry and loop checks.
        verify_signatures: Signature verification can be disabled for
            large-scale simulations where cryptography dominates runtime
            without affecting the studied behaviour.
        verified_prefixes: Cache of already-verified signature-chain
            prefixes (see :class:`VerifiedPrefixCache`).
    """

    as_id: int
    verifier: Verifier
    database: IngressDatabase = field(default_factory=IngressDatabase)
    policies: List[AdmissionPolicy] = field(default_factory=list)
    verify_signatures: bool = True
    stats: IngressStats = field(default_factory=IngressStats)
    verified_prefixes: VerifiedPrefixCache = field(default_factory=VerifiedPrefixCache)

    def use_verifier(self, verifier: Verifier) -> None:
        """Replace the gateway's verifier (e.g. after a key-store rotation).

        The verified-prefix cache only proves that prefixes verified against
        the *previous* verifier's key store, so it is invalidated: keeping it
        would let a beacon signed under the old keys skip re-verification
        under the new ones.
        """
        self.verifier = verifier
        self.verified_prefixes.clear()

    def receive(self, beacon: Beacon, on_interface: int, now_ms: float) -> bool:
        """Process one incoming beacon.

        Returns:
            ``True`` if the beacon was accepted and stored, ``False`` if it
            was a duplicate or rejected.
        """
        self.stats.received += 1
        try:
            self._admit(beacon, now_ms)
        except SignatureError:
            self.stats.rejected_signature += 1
            return False
        except ExpiredBeaconError:
            self.stats.rejected_expired += 1
            return False
        except PolicyViolationError:
            self.stats.rejected_policy += 1
            return False

        stored = StoredBeacon(
            beacon=beacon, received_on_interface=on_interface, received_at_ms=now_ms
        )
        if not self.database.insert(stored):
            self.stats.duplicates += 1
            return False
        self.stats.accepted += 1
        return True

    def _admit(self, beacon: Beacon, now_ms: float) -> None:
        """Run the built-in checks and every configured policy."""
        if not beacon.entries:
            raise PolicyViolationError("beacon has no entries")
        if beacon.is_expired(now_ms):
            raise ExpiredBeaconError(
                f"beacon from AS {beacon.origin_as} expired at {beacon.expires_at_ms():.0f} ms"
            )
        if beacon.is_terminated:
            raise PolicyViolationError("terminated beacons cannot be propagated further")
        if beacon.contains_as(self.as_id) and beacon.target_as != self.as_id:
            # A beacon that already contains the local AS would loop.  The
            # single exception is a pull-based beacon whose target is this
            # AS: it legitimately comes back to be returned to its origin.
            raise PolicyViolationError(
                f"beacon path {beacon.as_path()} already contains AS {self.as_id}"
            )
        if self.verify_signatures:
            try:
                self._verify(beacon)
            except BeaconError as exc:
                raise SignatureError(str(exc)) from exc
        for policy in self.policies:
            policy(beacon, self.as_id)

    def _verify(self, beacon: Beacon) -> None:
        """Verify ``beacon``, skipping entries covered by a cached prefix.

        The prefix-digest chain binds the complete beacon content (header,
        extensions, static info and all previous signatures), so a cache
        hit at prefix ``i`` proves that the byte-identical prefix passed
        full verification against this gateway's key store earlier; only
        entries ``i + 1 …`` still need their signatures checked.
        """
        chain = beacon.prefix_digests()
        first_unverified = 0
        for index in range(len(chain) - 1, -1, -1):
            if chain[index] in self.verified_prefixes:
                first_unverified = index + 1
                break
        if first_unverified >= len(chain):
            self.stats.incremental_verifications += 1
        else:
            beacon.verify_suffix(self.verifier, first_entry=first_unverified)
            self.stats.signatures_checked += len(chain) - first_unverified
            if first_unverified > 0:
                self.stats.incremental_verifications += 1
            else:
                self.stats.full_verifications += 1
        for digest in chain:
            self.verified_prefixes.add(digest)

    def expire(self, now_ms: float) -> int:
        """Remove expired beacons from the ingress database."""
        return self.database.remove_expired(now_ms)
