"""The ingress gateway (paper §V-B).

The ingress gateway is the entry point of every PCB into an AS: it verifies
the signature chain, checks the beacon against the local AS's admission
policy (expiry, loops, optionally more restrictive rules), stores accepted
beacons in the ingress database and periodically removes (soon-to-be)
expired ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.beacon import Beacon
from repro.core.databases import IngressDatabase, StoredBeacon
from repro.crypto.signer import Verifier
from repro.exceptions import (
    BeaconError,
    ExpiredBeaconError,
    PolicyViolationError,
    SignatureError,
)

#: An admission policy inspects a beacon and raises
#: :class:`PolicyViolationError` to reject it.
AdmissionPolicy = Callable[[Beacon, int], None]


@dataclass
class IngressStats:
    """Counters kept by the ingress gateway for diagnostics and benchmarks."""

    received: int = 0
    accepted: int = 0
    duplicates: int = 0
    rejected_signature: int = 0
    rejected_policy: int = 0
    rejected_expired: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.received = 0
        self.accepted = 0
        self.duplicates = 0
        self.rejected_signature = 0
        self.rejected_policy = 0
        self.rejected_expired = 0


@dataclass
class IngressGateway:
    """Receives, validates and stores incoming PCBs for one AS.

    Attributes:
        as_id: The local AS.
        verifier: Signature verifier backed by the deployment's key store.
        database: The ingress database shared with the AS's RACs.
        policies: Additional admission policies applied after the built-in
            signature, expiry and loop checks.
        verify_signatures: Signature verification can be disabled for
            large-scale simulations where cryptography dominates runtime
            without affecting the studied behaviour.
    """

    as_id: int
    verifier: Verifier
    database: IngressDatabase = field(default_factory=IngressDatabase)
    policies: List[AdmissionPolicy] = field(default_factory=list)
    verify_signatures: bool = True
    stats: IngressStats = field(default_factory=IngressStats)

    def receive(self, beacon: Beacon, on_interface: int, now_ms: float) -> bool:
        """Process one incoming beacon.

        Returns:
            ``True`` if the beacon was accepted and stored, ``False`` if it
            was a duplicate or rejected.
        """
        self.stats.received += 1
        try:
            self._admit(beacon, now_ms)
        except SignatureError:
            self.stats.rejected_signature += 1
            return False
        except ExpiredBeaconError:
            self.stats.rejected_expired += 1
            return False
        except PolicyViolationError:
            self.stats.rejected_policy += 1
            return False

        stored = StoredBeacon(
            beacon=beacon, received_on_interface=on_interface, received_at_ms=now_ms
        )
        if not self.database.insert(stored):
            self.stats.duplicates += 1
            return False
        self.stats.accepted += 1
        return True

    def _admit(self, beacon: Beacon, now_ms: float) -> None:
        """Run the built-in checks and every configured policy."""
        if not beacon.entries:
            raise PolicyViolationError("beacon has no entries")
        if beacon.is_expired(now_ms):
            raise ExpiredBeaconError(
                f"beacon from AS {beacon.origin_as} expired at {beacon.expires_at_ms():.0f} ms"
            )
        if beacon.is_terminated:
            raise PolicyViolationError("terminated beacons cannot be propagated further")
        if beacon.contains_as(self.as_id) and beacon.target_as != self.as_id:
            # A beacon that already contains the local AS would loop.  The
            # single exception is a pull-based beacon whose target is this
            # AS: it legitimately comes back to be returned to its origin.
            raise PolicyViolationError(
                f"beacon path {beacon.as_path()} already contains AS {self.as_id}"
            )
        if self.verify_signatures:
            try:
                beacon.verify(self.verifier)
            except BeaconError as exc:
                raise SignatureError(str(exc)) from exc
        for policy in self.policies:
            policy(beacon, self.as_id)

    def expire(self, now_ms: float) -> int:
        """Remove expired beacons from the ingress database."""
        return self.database.remove_expired(now_ms)
