"""Inter-process communication model between gateways and RACs.

The paper's implementation runs the ingress gateway, the egress gateway and
every RAC as separate processes communicating over gRPC with
Protobuf-marshalled PCBs; Figure 6 explicitly decomposes RAC processing
latency into (1) Wasmtime setup, (2) gRPC calls and (3) algorithm
execution.  To reproduce that decomposition the library funnels every
gateway↔RAC exchange through this module, which

* actually serializes and deserializes the beacons being exchanged (so the
  measured IPC cost scales with the candidate-set size, like Protobuf
  marshalling does), and
* optionally adds a configurable per-call and per-byte latency to model the
  network/RPC overhead of a multi-machine deployment.

The measured wall-clock time of each exchange is accumulated in an
:class:`IPCStats` object that the micro-benchmarks read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.beacon import Beacon


@dataclass
class IPCStats:
    """Accumulated cost of gateway ↔ RAC exchanges."""

    calls: int = 0
    bytes_transferred: int = 0
    elapsed_ms: float = 0.0
    modelled_latency_ms: float = 0.0

    def record(self, payload_bytes: int, elapsed_ms: float, modelled_ms: float) -> None:
        """Record one RPC exchange."""
        self.calls += 1
        self.bytes_transferred += payload_bytes
        self.elapsed_ms += elapsed_ms
        self.modelled_latency_ms += modelled_ms

    @property
    def total_ms(self) -> float:
        """Return measured plus modelled latency."""
        return self.elapsed_ms + self.modelled_latency_ms

    def reset(self) -> None:
        """Zero all counters."""
        self.calls = 0
        self.bytes_transferred = 0
        self.elapsed_ms = 0.0
        self.modelled_latency_ms = 0.0


@dataclass
class IPCChannel:
    """A gateway ↔ RAC channel with marshalling and a latency model.

    Attributes:
        per_call_latency_ms: Fixed modelled latency added per RPC, e.g. to
            emulate running the RAC on a different machine.  Defaults to
            zero (same-host deployment, like the paper's benchmark).
        per_kilobyte_latency_ms: Modelled latency per kilobyte of payload.
    """

    per_call_latency_ms: float = 0.0
    per_kilobyte_latency_ms: float = 0.0
    stats: IPCStats = field(default_factory=IPCStats)

    def marshal_beacons(self, beacons: Sequence[Beacon]) -> Tuple[List[bytes], float]:
        """Serialize ``beacons`` for transfer; return (wire form, elapsed ms)."""
        start = time.perf_counter()
        wire = [beacon.encode() for beacon in beacons]
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        payload = sum(len(b) for b in wire)
        modelled = self._modelled_latency(payload)
        self.stats.record(payload, elapsed_ms, modelled)
        return wire, elapsed_ms + modelled

    def transfer_results(self, selections: Sequence[Tuple[int, Beacon]]) -> float:
        """Model the RAC → egress gateway result transfer; return its cost in ms."""
        start = time.perf_counter()
        payload = 0
        for _egress_interface, beacon in selections:
            payload += len(beacon.encode()) + 8
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        modelled = self._modelled_latency(payload)
        self.stats.record(payload, elapsed_ms, modelled)
        return elapsed_ms + modelled

    def _modelled_latency(self, payload_bytes: int) -> float:
        return self.per_call_latency_ms + self.per_kilobyte_latency_ms * payload_bytes / 1024.0
