"""Interface groups: flexible optimization granularity (paper §IV-D).

SCION PCBs identify path origins at AS granularity, which is too coarse for
end-to-end optimality, while per-interface origination is too expensive.
IREC lets origin ASes partition their interfaces into **interface groups**;
PCBs are originated per group (from every member interface) and carry the
group identifier, and downstream ASes optimize per (origin AS, group).

The paper's simulations build groups geographically: any two interfaces of
the same group are at most 300 km (DOB300) or 2000 km (DOB2000) apart.
:class:`GeographicGroupingPolicy` implements that; :class:`ExplicitGrouping`
lets examples and tests assign groups by hand, and
:class:`SingleGroupPolicy` reproduces the plain AS-granularity behaviour
(every interface in group 0).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import ConfigurationError
from repro.topology.entities import ASInfo
from repro.topology.geo import cluster_by_distance


@dataclass(frozen=True)
class InterfaceGroupAssignment:
    """The group structure of one AS's interfaces.

    Attributes:
        as_id: The AS the assignment belongs to.
        groups: Mapping from group identifier to the member interface ids.
    """

    as_id: int
    groups: Dict[int, Tuple[int, ...]]

    def group_of(self, interface_id: int) -> int:
        """Return the group containing ``interface_id``.

        Raises:
            ConfigurationError: If the interface is not assigned to a group.
        """
        for group_id, members in self.groups.items():
            if interface_id in members:
                return group_id
        raise ConfigurationError(
            f"interface {interface_id} of AS {self.as_id} is not assigned to any group"
        )

    def group_ids(self) -> Tuple[int, ...]:
        """Return all group identifiers, sorted."""
        return tuple(sorted(self.groups))

    def members(self, group_id: int) -> Tuple[int, ...]:
        """Return the member interfaces of ``group_id``."""
        try:
            return self.groups[group_id]
        except KeyError:
            raise ConfigurationError(
                f"AS {self.as_id} has no interface group {group_id}"
            ) from None

    @property
    def num_groups(self) -> int:
        """Return the number of groups."""
        return len(self.groups)


class InterfaceGroupingPolicy(abc.ABC):
    """Strategy deciding how an AS partitions its interfaces into groups."""

    @abc.abstractmethod
    def assign(self, as_info: ASInfo) -> InterfaceGroupAssignment:
        """Return the group assignment for ``as_info``."""


@dataclass
class SingleGroupPolicy(InterfaceGroupingPolicy):
    """Every interface in one group — plain per-AS optimization granularity."""

    def assign(self, as_info: ASInfo) -> InterfaceGroupAssignment:
        """Assign all interfaces of ``as_info`` to group 0."""
        return InterfaceGroupAssignment(
            as_id=as_info.as_id, groups={0: tuple(sorted(as_info.interfaces))}
        )


@dataclass
class PerInterfaceGroupPolicy(InterfaceGroupingPolicy):
    """One group per interface — the fine-grained extreme of §IV-D."""

    def assign(self, as_info: ASInfo) -> InterfaceGroupAssignment:
        """Assign every interface of ``as_info`` to its own group."""
        groups = {
            index: (interface_id,)
            for index, interface_id in enumerate(sorted(as_info.interfaces))
        }
        return InterfaceGroupAssignment(as_id=as_info.as_id, groups=groups)


@dataclass
class GeographicGroupingPolicy(InterfaceGroupingPolicy):
    """Group interfaces whose pairwise distance stays within a radius.

    Attributes:
        radius_km: Maximum distance between any two interfaces of a group
            (300 km and 2000 km in the paper's DOB300/DOB2000 experiments).
    """

    radius_km: float = 300.0

    def __post_init__(self) -> None:
        if self.radius_km < 0.0:
            raise ConfigurationError(f"radius must be non-negative, got {self.radius_km}")

    def assign(self, as_info: ASInfo) -> InterfaceGroupAssignment:
        """Cluster the interfaces of ``as_info`` by geographic distance."""
        labelled = [
            (interface.interface_id, interface.location) for interface in as_info
        ]
        clusters: List[List[object]] = cluster_by_distance(labelled, self.radius_km)
        groups = {
            group_id: tuple(sorted(int(member) for member in members))
            for group_id, members in enumerate(clusters)
        }
        return InterfaceGroupAssignment(as_id=as_info.as_id, groups=groups)


@dataclass
class ExplicitGrouping(InterfaceGroupingPolicy):
    """A hand-written group assignment (used by examples and tests)."""

    groups_by_as: Dict[int, Dict[int, Tuple[int, ...]]] = field(default_factory=dict)

    def assign(self, as_info: ASInfo) -> InterfaceGroupAssignment:
        """Return the configured assignment, defaulting to a single group."""
        configured = self.groups_by_as.get(as_info.as_id)
        if configured is None:
            return SingleGroupPolicy().assign(as_info)
        return InterfaceGroupAssignment(
            as_id=as_info.as_id,
            groups={int(gid): tuple(members) for gid, members in configured.items()},
        )
