"""The egress gateway (paper §V-D).

The egress gateway is responsible for everything that leaves the AS's
control plane:

* **PCB initialization** — originating fresh beacons on the AS's egress
  interfaces with static metadata, optional Target / Algorithm /
  InterfaceGroup extensions, and the origin's signature,
* **PCB propagation** — taking the per-egress-interface optimal beacons
  selected by the RACs, deduplicating them against the egress database
  (which only stores beacon hashes), extending them with the local AS entry
  (including intra-AS latency between ingress and egress interface and the
  egress link's metadata), signing and sending them to the corresponding
  neighbours,
* **pull return** — sending pull-based beacons whose target is the local AS
  back to their origin instead of propagating them, and
* **path registration** — terminating selected beacons and registering them
  at the local path service, tagged with the criteria they were optimized
  for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.beacon import Beacon, BeaconBuilder, DEFAULT_VALIDITY_MS
from repro.core.databases import EgressDatabase, PathService, RegisteredPath
from repro.core.extensions import ExtensionSet
from repro.core.local_view import LocalTopologyView
from repro.core.rac import RACSelection
from repro.core.transport import ControlPlaneTransport
from repro.exceptions import GatewayError, LoopError


@dataclass
class EgressStats:
    """Counters kept by the egress gateway."""

    originated: int = 0
    propagated: int = 0
    returned_to_origin: int = 0
    suppressed_duplicates: int = 0
    suppressed_loops: int = 0
    registered: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.originated = 0
        self.propagated = 0
        self.returned_to_origin = 0
        self.suppressed_duplicates = 0
        self.suppressed_loops = 0
        self.registered = 0


@dataclass
class EgressGateway:
    """Originates, propagates, returns and registers beacons for one AS."""

    view: LocalTopologyView
    builder: BeaconBuilder
    transport: ControlPlaneTransport
    database: EgressDatabase = field(default_factory=EgressDatabase)
    path_service: PathService = field(default_factory=PathService)
    beacon_validity_ms: float = DEFAULT_VALIDITY_MS
    stats: EgressStats = field(default_factory=EgressStats)
    #: When enabled, successful registrations are additionally collected as
    #: ``(path, arrival_interface)`` pairs until :meth:`take_registered`
    #: drains them — the down-segment announcement feed.  Off by default so
    #: the registration hot path stays allocation-free.
    collect_registered: bool = False
    _registered_feed: List[Tuple[RegisteredPath, Optional[int]]] = field(
        default_factory=list
    )

    def take_registered(self) -> List[Tuple[RegisteredPath, Optional[int]]]:
        """Drain and return the collected ``(path, arrival_interface)`` pairs."""
        drained = self._registered_feed
        self._registered_feed = []
        return drained

    @property
    def as_id(self) -> int:
        """Return the local AS identifier."""
        return self.view.as_id

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------
    def originate(
        self,
        now_ms: float,
        interfaces: Optional[Sequence[int]] = None,
        extensions: Optional[ExtensionSet] = None,
    ) -> List[Beacon]:
        """Originate one beacon per egress interface and send it.

        Args:
            now_ms: Current simulated time.
            interfaces: Interfaces to originate on; defaults to all local
                interfaces.
            extensions: Extensions to stamp on every originated beacon
                (e.g. a target for pull-based routing or an algorithm for
                on-demand routing).  The interface-group extension is the
                caller's responsibility (see the control service, which
                knows the grouping assignment).

        Returns:
            The originated beacons, in interface order.
        """
        selected = tuple(interfaces) if interfaces is not None else self.view.interface_ids()
        originated = []
        for interface_id in selected:
            static_info = self.view.static_info_for(None, interface_id)
            beacon = self.builder.originate(
                egress_interface=interface_id,
                created_at_ms=now_ms,
                static_info=static_info,
                extensions=extensions,
                validity_ms=self.beacon_validity_ms,
            )
            self.transport.send_beacon(self.as_id, interface_id, beacon)
            self.stats.originated += 1
            originated.append(beacon)
        return originated

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def propagate(self, selections: Iterable[RACSelection]) -> int:
        """Propagate RAC-selected beacons to the corresponding neighbours.

        Pull-based beacons whose target is the local AS are returned to
        their origin instead (once per beacon, regardless of how many RACs
        selected them).

        Returns:
            The number of PCBs actually sent to neighbours.
        """
        sent = 0
        for selection in selections:
            beacon = selection.beacon
            digest = beacon.digest()

            if beacon.target_as == self.as_id:
                self._return_to_origin(selection, digest)
                continue

            candidate_interfaces = self._loop_free_interfaces(
                beacon, selection.egress_interfaces
            )
            fresh = self.database.filter_new_interfaces(
                digest, candidate_interfaces, expires_at_ms=beacon.expires_at_ms()
            )
            for egress_interface in fresh:
                extended = self.builder.extend(
                    beacon,
                    ingress_interface=selection.stored.received_on_interface,
                    egress_interface=egress_interface,
                    static_info=self.view.static_info_for(
                        selection.stored.received_on_interface, egress_interface
                    ),
                )
                self.transport.send_beacon(self.as_id, egress_interface, extended)
                self.stats.propagated += 1
                sent += 1
        return sent

    def _loop_free_interfaces(
        self, beacon: Beacon, interfaces: Sequence[int]
    ) -> List[int]:
        """Drop egress interfaces whose neighbouring AS is already on the path."""
        result = []
        for interface_id in interfaces:
            neighbor_as, _neighbor_interface = self.view.neighbor_of(interface_id)
            if beacon.contains_as(neighbor_as):
                self.stats.suppressed_loops += 1
                continue
            result.append(interface_id)
        return result

    def _return_to_origin(self, selection: RACSelection, digest: str) -> None:
        """Terminate a pull beacon at its target and send it back to the origin."""
        already_returned = self.database.filter_new_interfaces(
            digest, [-1], expires_at_ms=selection.beacon.expires_at_ms()
        )
        if not already_returned:
            self.stats.suppressed_duplicates += 1
            return
        terminated = self.builder.terminate(
            selection.beacon,
            ingress_interface=selection.stored.received_on_interface,
            static_info=self.view.static_info_for(
                selection.stored.received_on_interface, None
            ),
        )
        self.transport.return_beacon_to_origin(self.as_id, terminated)
        self.stats.returned_to_origin += 1

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, selections: Iterable[RACSelection], now_ms: float) -> int:
        """Terminate and register selected beacons at the local path service.

        Each RAC's registrations are capped by its configured registration
        limit through the path service's per-(criteria, origin, group)
        quota.

        Returns:
            The number of paths newly registered (or merged).
        """
        registered = 0
        for selection in selections:
            beacon = selection.beacon
            if beacon.origin_as == self.as_id:
                continue
            try:
                segment = self.builder.terminate(
                    beacon,
                    ingress_interface=selection.stored.received_on_interface,
                    static_info=self.view.static_info_for(
                        selection.stored.received_on_interface, None
                    ),
                )
            except LoopError as exc:
                raise GatewayError(f"cannot terminate beacon for registration: {exc}") from exc
            path = RegisteredPath(
                segment=segment,
                criteria_tags=(selection.criteria_tag,),
                registered_at_ms=now_ms,
            )
            if self.path_service.register(path):
                self.stats.registered += 1
                registered += 1
                if self.collect_registered:
                    self._registered_feed.append(
                        (path, selection.stored.received_on_interface)
                    )
        return registered

    def expire(self, now_ms: float) -> Tuple[int, int]:
        """Expire outdated entries from the egress database and path service."""
        return (
            self.database.remove_expired(now_ms),
            self.path_service.remove_expired(now_ms),
        )
