"""Publication and retrieval of on-demand algorithm payloads.

An origin AS that uses on-demand routing publishes its algorithm payload
under an identifier; the PCBs it originates carry that identifier together
with the payload hash.  Any on-demand RAC that receives such a PCB fetches
the payload from the origin AS — reachable over the path contained in the
PCB itself — verifies the hash, caches the executable and runs it (paper
§IV-C, §V-C).

Two components implement this:

* :class:`AlgorithmRepository` — the per-AS publication store, exposed by
  the origin AS's control service, and
* :class:`AlgorithmFetcher` — the RAC-side client with hash verification
  and a cache keyed by ``(origin AS, algorithm id)`` so the payload is
  fetched only once per origin and identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.crypto.hashing import algorithm_hash
from repro.exceptions import AlgorithmIntegrityError, UnknownAlgorithmError
from repro.core.sandbox import MAX_PAYLOAD_BYTES


@dataclass
class AlgorithmRepository:
    """Payloads published by one origin AS."""

    as_id: int
    _payloads: Dict[str, bytes] = field(default_factory=dict)

    def publish(self, algorithm_id: str, payload: bytes) -> str:
        """Publish ``payload`` under ``algorithm_id`` and return its hash.

        Republishing the same identifier replaces the payload (the origin AS
        controls its own repository); the new hash must then be used in
        newly-originated PCBs.
        """
        if not algorithm_id:
            raise UnknownAlgorithmError(algorithm_id)
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise AlgorithmIntegrityError(
                f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte limit"
            )
        self._payloads[algorithm_id] = bytes(payload)
        return algorithm_hash(payload)

    def fetch(self, algorithm_id: str) -> bytes:
        """Return the payload published under ``algorithm_id``.

        Raises:
            UnknownAlgorithmError: If nothing is published under the id.
        """
        payload = self._payloads.get(algorithm_id)
        if payload is None:
            raise UnknownAlgorithmError(algorithm_id)
        return payload

    def hash_of(self, algorithm_id: str) -> str:
        """Return the hash of the payload published under ``algorithm_id``."""
        return algorithm_hash(self.fetch(algorithm_id))

    def published_ids(self) -> Tuple[str, ...]:
        """Return the published identifiers, sorted."""
        return tuple(sorted(self._payloads))

    def __contains__(self, algorithm_id: str) -> bool:
        return algorithm_id in self._payloads


#: Signature of the transport used to fetch a payload from a remote AS:
#: (origin_as, algorithm_id) -> payload bytes.
FetchTransport = Callable[[int, str], bytes]


@dataclass
class FetchRecord:
    """Diagnostic record of one remote fetch (used by tests and benchmarks)."""

    origin_as: int
    algorithm_id: str
    payload_bytes: int
    from_cache: bool


@dataclass
class AlgorithmFetcher:
    """RAC-side retrieval of on-demand payloads with verification and caching."""

    transport: FetchTransport
    cache_enabled: bool = True
    _cache: Dict[Tuple[int, str], bytes] = field(default_factory=dict)
    history: list = field(default_factory=list)

    def fetch(self, origin_as: int, algorithm_id: str, expected_hash: str) -> bytes:
        """Fetch, verify and cache the payload of ``(origin_as, algorithm_id)``.

        Args:
            origin_as: AS that published the payload.
            algorithm_id: Identifier under which it was published.
            expected_hash: Hash from the PCB's algorithm extension; the
                fetched payload must match it.

        Raises:
            AlgorithmIntegrityError: If the fetched payload does not hash to
                ``expected_hash`` (cached entries are re-verified too, so a
                poisoned cache cannot satisfy a different hash).
        """
        key = (origin_as, algorithm_id)
        cached = self._cache.get(key) if self.cache_enabled else None
        if cached is not None and algorithm_hash(cached) == expected_hash:
            self.history.append(
                FetchRecord(
                    origin_as=origin_as,
                    algorithm_id=algorithm_id,
                    payload_bytes=len(cached),
                    from_cache=True,
                )
            )
            return cached

        payload = self.transport(origin_as, algorithm_id)
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise AlgorithmIntegrityError(
                f"fetched payload of {len(payload)} bytes exceeds the size limit"
            )
        if algorithm_hash(payload) != expected_hash:
            raise AlgorithmIntegrityError(
                f"payload for algorithm {algorithm_id!r} from AS {origin_as} "
                "does not match the hash announced in the PCB"
            )
        if self.cache_enabled:
            self._cache[key] = payload
        self.history.append(
            FetchRecord(
                origin_as=origin_as,
                algorithm_id=algorithm_id,
                payload_bytes=len(payload),
                from_cache=False,
            )
        )
        return payload

    def remote_fetch_count(self) -> int:
        """Return how many fetches actually went over the transport."""
        return sum(1 for record in self.history if not record.from_cache)

    def clear_cache(self) -> None:
        """Drop every cached payload."""
        self._cache.clear()
