"""Path-query serving tier: typed queries, per-AS response cache.

End hosts (and the traffic engine's path re-selection) used to reach
directly into :class:`~repro.core.databases.PathService`.  This module
puts a production-shaped serving tier in front of it:

* :class:`PathQuery` — a frozen, typed query: "paths to ``origin_as``
  under this policy" (criteria tags, max-latency / min-bandwidth
  predicates, result limit).  Queries are hashable and carry a canonical
  ``policy_key`` so equivalent policies share one cache entry.
* :class:`PathQueryFrontend` — the per-AS frontend.  Lookups hit a
  bounded LRU of materialized responses keyed ``(origin_as,
  policy_key)``.  Entries are expiry-aware (they can never outlive the
  earliest member segment, honoring the service's ``expiry_margin_ms``)
  and are invalidated *precisely*: the frontend subscribes to
  ``PathService.add_invalidation_listener``, so revocation-driven
  withdrawal, expiry purge, and new registrations drop exactly the
  cached keys of the touched origin — never by scanning the cache.

The frontend is deliberately read-only over the path service and keeps
no simulated-time state of its own: a ``clock`` may be attached (the
simulation wires the scheduler in) but defaults to ``None``, in which
case lookups without an explicit ``now_ms`` behave like the historical
direct ``paths_to`` call at time zero.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Set, Tuple

from repro.core.beacon import _memo
from repro.core.databases import PathService, RegisteredPath
from repro.exceptions import ConfigurationError
from repro.obs import spans as _spans

#: Default bound on materialized responses kept per frontend.  Sized for
#: the simulated topologies (≤ a few hundred ASes × a handful of
#: policies); the LRU keeps the working set regardless.
DEFAULT_CACHE_CAPACITY = 1024


@dataclass(frozen=True)
class PathQuery:
    """A typed path lookup: paths to ``origin_as`` satisfying a policy.

    Attributes:
        origin_as: The origin (destination of the lookup) AS.
        required_tags: Criteria tags of which at least one must be on the
            path — the same any-of semantics as
            :class:`~repro.dataplane.endhost.PathSelectionPreference`.
        max_latency_ms: Keep only paths whose end-to-end propagation
            latency is at most this.
        min_bandwidth_mbps: Keep only paths whose bottleneck bandwidth is
            at least this.
        limit: Truncate the (service-ordered) result to this many paths.
    """

    origin_as: int
    required_tags: Tuple[str, ...] = ()
    max_latency_ms: Optional[float] = None
    min_bandwidth_mbps: Optional[float] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit <= 0:
            raise ConfigurationError(f"query limit must be positive, got {self.limit}")

    def policy_key(self) -> str:
        """Canonical string for the policy part (everything but origin).

        Tag order is normalized, so two queries asking the same thing
        share one cache entry.
        """
        return _memo(
            self,
            "_policy_key",
            lambda: "tags={};lat={};bw={};limit={}".format(
                ",".join(sorted(self.required_tags)),
                self.max_latency_ms,
                self.min_bandwidth_mbps,
                self.limit,
            ),
        )

    def cache_key(self) -> Tuple[int, str]:
        """The frontend cache key: ``(origin_as, policy_key)``."""
        return _memo(self, "_cache_key", lambda: (self.origin_as, self.policy_key()))

    def admits(self, path: RegisteredPath) -> bool:
        """Return whether ``path`` satisfies this query's policy."""
        if self.required_tags and not any(
            tag in path.criteria_tags for tag in self.required_tags
        ):
            return False
        if (
            self.max_latency_ms is not None
            and path.segment.total_latency_ms() > self.max_latency_ms
        ):
            return False
        if (
            self.min_bandwidth_mbps is not None
            and path.segment.bottleneck_bandwidth_mbps() < self.min_bandwidth_mbps
        ):
            return False
        return True


class QueryResult(NamedTuple):
    """One served lookup: the materialized paths and whether it was cached."""

    paths: Tuple[RegisteredPath, ...]
    cache_hit: bool


class _CacheEntry:
    """A materialized response plus the instant it stops being servable."""

    __slots__ = ("result", "valid_until_ms")

    def __init__(self, result: QueryResult, valid_until_ms: Optional[float]) -> None:
        self.result = result
        self.valid_until_ms = valid_until_ms


class PathQueryFrontend:
    """Per-AS query frontend over :class:`PathService` with an LRU cache.

    The cache-invalidation contract (see ``docs/path_service.md``):

    * a lookup never serves a cached entry past the earliest expiry of
      its member segments minus the service's ``expiry_margin_ms``;
    * any registration, merge, withdrawal, or expiry purge touching a
      digest with origin ``X`` drops every cached key for origin ``X``
      before the mutation returns — via the service's invalidation
      listener and the frontend's per-origin key index, never by scan.
    """

    def __init__(
        self,
        path_service: PathService,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        negative_ttl_ms: Optional[float] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"query cache capacity must be positive, got {capacity}")
        if negative_ttl_ms is not None and negative_ttl_ms <= 0:
            raise ConfigurationError(
                f"negative-cache TTL must be positive, got {negative_ttl_ms}"
            )
        self.path_service = path_service
        self.clock = clock
        self.capacity = capacity
        #: Lifetime of cached *empty* responses.  ``None`` (the default)
        #: keeps the historical behavior — an empty response stays cached
        #: until the origin is invalidated.  A TTL bounds how long a
        #: "no paths" answer can outlive a registration the invalidation
        #: listener missed (e.g. a frontend wired up after its service).
        self.negative_ttl_ms = negative_ttl_ms
        self._cache: "OrderedDict[Tuple[int, str], _CacheEntry]" = OrderedDict()
        #: Origin AS → cached keys for it: the indexed invalidation path.
        self._keys_by_origin: Dict[int, Set[Tuple[int, str]]] = {}
        #: Per-origin plain (no-policy) queries, so ``paths()`` doesn't
        #: rebuild a PathQuery per lookup on the hot path.
        self._plain_queries: Dict[int, PathQuery] = {}
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.expired_entries = 0
        self.negative_hits = 0
        self.negative_inserts = 0
        path_service.add_invalidation_listener(self._invalidate_origin)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def query(self, query: PathQuery, now_ms: Optional[float] = None) -> QueryResult:
        """Serve ``query``, from cache when a live entry exists."""
        frame = _spans.push("query.lookup") if _spans.ENABLED else None
        try:
            self.lookups += 1
            key = query.cache_key()
            entry = self._cache.get(key)
            if entry is not None:
                if now_ms is None:
                    now_ms = self.clock() if self.clock is not None else 0.0
                if entry.valid_until_ms is None or now_ms < entry.valid_until_ms:
                    self.hits += 1
                    if not entry.result.paths:
                        self.negative_hits += 1
                    self._cache.move_to_end(key)
                    return entry.result
                # Expired in cache: never serve it (satellite bugfix) —
                # drop and fall through to a fresh materialization.
                self.expired_entries += 1
                self._drop_key(key)
            self.misses += 1
            if now_ms is None:
                now_ms = self.clock() if self.clock is not None else 0.0
            return self._materialize(query, key, now_ms)
        finally:
            if frame is not None:
                _spans.pop(frame)

    def paths(self, origin_as: int, now_ms: Optional[float] = None) -> Tuple[RegisteredPath, ...]:
        """Serve the plain "all paths to ``origin_as``" lookup."""
        query = self._plain_queries.get(origin_as)
        if query is None:
            query = self._plain_queries[origin_as] = PathQuery(origin_as)
        return self.query(query, now_ms=now_ms).paths

    def _materialize(
        self, query: PathQuery, key: Tuple[int, str], now_ms: float
    ) -> QueryResult:
        margin = self.path_service.expiry_margin_ms
        horizon = now_ms + margin
        valid_until: Optional[float] = None
        paths: List[RegisteredPath] = []
        for path in self.path_service.paths_to(query.origin_as):
            if path.segment.is_expired(horizon):
                continue
            if not query.admits(path):
                continue
            paths.append(path)
            if query.limit is not None and len(paths) == query.limit:
                break
        for path in paths:
            expires = path.segment.expires_at_ms() - margin
            if valid_until is None or expires < valid_until:
                valid_until = expires
        members = tuple(paths)
        if not members:
            # An explicit negative entry: "no paths" is a first-class
            # cached answer (counted separately), optionally TTL-bounded.
            self.negative_inserts += 1
            if self.negative_ttl_ms is not None:
                ttl_until = now_ms + self.negative_ttl_ms
                if valid_until is None or ttl_until < valid_until:
                    valid_until = ttl_until
        # The entry stores a hit-labelled result so the (hot) hit path can
        # return it without allocating; only this cold path builds the
        # miss-labelled twin.
        result = QueryResult(members, False)
        self._cache[key] = _CacheEntry(QueryResult(members, True), valid_until)
        self._keys_by_origin.setdefault(query.origin_as, set()).add(key)
        if len(self._cache) > self.capacity:
            evicted_key, _ = self._cache.popitem(last=False)
            self.evictions += 1
            keys = self._keys_by_origin.get(evicted_key[0])
            if keys is not None:
                keys.discard(evicted_key)
                if not keys:
                    del self._keys_by_origin[evicted_key[0]]
        return result

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def _invalidate_origin(self, origin_as: int) -> None:
        """Drop every cached response for ``origin_as`` (indexed, no scan)."""
        keys = self._keys_by_origin.pop(origin_as, None)
        if not keys:
            return
        cache = self._cache
        for key in keys:
            if cache.pop(key, None) is not None:
                self.invalidations += 1

    def _drop_key(self, key: Tuple[int, str]) -> None:
        self._cache.pop(key, None)
        keys = self._keys_by_origin.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_by_origin[key[0]]

    def clear(self) -> None:
        """Drop every cached response (counters are kept)."""
        self._cache.clear()
        self._keys_by_origin.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def cache_hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def counters(self) -> Dict[str, float]:
        """The serving counters as one plain dict (observatory payload)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "expired_entries": self.expired_entries,
            "negative_hits": self.negative_hits,
            "negative_inserts": self.negative_inserts,
            "cache_size": len(self._cache),
            "hit_ratio": self.cache_hit_ratio,
        }
