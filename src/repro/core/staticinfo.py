"""Static-info metadata carried in PCB AS entries.

SCION PCBs may contain *static info extensions* with per-hop performance
metadata — link latency, link bandwidth, geolocation — which IREC's routing
algorithms consume to optimize paths on diverse criteria (paper §III,
§IV-A).  Each AS entry of a beacon carries one :class:`StaticInfo` record
describing:

* the intra-AS latency between the entry's ingress and egress interfaces,
* the latency and bandwidth of the inter-domain link attached to the
  entry's egress interface, and
* the geolocation of the egress interface (used for PoP-level evaluation
  and geographic interface grouping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.geo import GeoCoordinate


@dataclass(frozen=True)
class StaticInfo:
    """Per-hop performance metadata.

    Attributes:
        intra_latency_ms: Latency of the intra-AS path between the entry's
            ingress and egress interfaces; zero for origin and terminal
            entries (which have only one interface).
        link_latency_ms: Propagation latency of the inter-domain link
            attached to the entry's egress interface; zero for terminal
            entries, which have no egress link.
        link_bandwidth_mbps: Capacity of that link; ``None`` for terminal
            entries.
        egress_location: Geolocation of the egress interface, if shared.
        ingress_location: Geolocation of the ingress interface, if shared.
    """

    intra_latency_ms: float = 0.0
    link_latency_ms: float = 0.0
    link_bandwidth_mbps: Optional[float] = None
    egress_location: Optional[GeoCoordinate] = None
    ingress_location: Optional[GeoCoordinate] = None

    def __post_init__(self) -> None:
        if self.intra_latency_ms < 0.0:
            raise ValueError(f"intra latency must be non-negative: {self.intra_latency_ms}")
        if self.link_latency_ms < 0.0:
            raise ValueError(f"link latency must be non-negative: {self.link_latency_ms}")
        if self.link_bandwidth_mbps is not None and self.link_bandwidth_mbps <= 0.0:
            raise ValueError(f"link bandwidth must be positive: {self.link_bandwidth_mbps}")

    @property
    def hop_latency_ms(self) -> float:
        """Total latency contributed by this hop (intra-AS plus egress link)."""
        return self.intra_latency_ms + self.link_latency_ms

    def encode(self) -> str:
        """Return a canonical string used for signing and hashing."""
        egress = (
            f"{self.egress_location.latitude:.6f},{self.egress_location.longitude:.6f}"
            if self.egress_location is not None
            else "-"
        )
        ingress = (
            f"{self.ingress_location.latitude:.6f},{self.ingress_location.longitude:.6f}"
            if self.ingress_location is not None
            else "-"
        )
        bandwidth = (
            f"{self.link_bandwidth_mbps:.6f}" if self.link_bandwidth_mbps is not None else "-"
        )
        return (
            f"si(intra={self.intra_latency_ms:.6f},link={self.link_latency_ms:.6f},"
            f"bw={bandwidth},egeo={egress},igeo={ingress})"
        )
