"""Ingress and egress beacon databases.

The paper's intra-AS architecture stores received PCBs in an **ingress
database** (queried by RACs in buckets of one origin AS, interface group
and target) and tracks propagated PCBs in an **egress database** that only
keeps beacon hashes together with the egress interfaces each beacon was
already sent on, to deduplicate the output of multiple RACs while bounding
memory (paper §V-B, §V-D).  Both databases expire (soon-to-be) outdated
entries periodically.

The original implementation uses SQLite; the reproduction uses in-memory
indexed stores with identical semantics (insert, bucketed query, expiry,
dedup-by-hash), which is sufficient because the evaluation never exercises
persistence across process restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.beacon import Beacon
from repro.exceptions import GatewayError
from repro.obs import spans as _spans
from repro.topology.entities import LinkID, normalize_link_id

#: A bucket key: (origin AS, interface group id or None, target AS or None,
#: algorithm id or None).  RACs request candidates one bucket at a time.
BucketKey = Tuple[int, Optional[int], Optional[int], Optional[str]]


@dataclass(frozen=True)
class StoredBeacon:
    """A beacon at rest in the ingress database.

    Attributes:
        beacon: The verified beacon.
        received_on_interface: Local interface the beacon arrived on; this
            is what extended-path optimization and beacon termination need.
        received_at_ms: Simulated arrival time.
    """

    beacon: Beacon
    received_on_interface: int
    received_at_ms: float

    @property
    def bucket(self) -> BucketKey:
        """Return the bucket this beacon belongs to."""
        return (
            self.beacon.origin_as,
            self.beacon.interface_group_id,
            self.beacon.target_as,
            self.beacon.algorithm_id,
        )


@dataclass
class IngressDatabase:
    """Indexed store of received beacons.

    Beacons are deduplicated by digest: receiving the same beacon twice
    (e.g. over two parallel links) keeps only the first copy.

    Bucket membership is kept in insertion-ordered dicts used as sets, so
    expiry removes each digest from its bucket in O(1) instead of scanning
    a list, and buckets emptied by expiry are dropped from the index
    entirely.

    When ``local_as`` is set (control services set it; standalone
    micro-benchmark databases do not), every insert additionally indexes
    the beacon under the inter-domain links it traverses — including the
    link it *arrived* over, which is part of its path as seen locally —
    and under the ASes on its path.  Revocation-driven invalidation then
    removes exactly the matching beacons instead of scanning the whole
    store per revocation, which is what keeps a network-wide revocation
    flood affordable.
    """

    expiry_margin_ms: float = 0.0
    local_as: Optional[int] = None
    _by_digest: Dict[str, StoredBeacon] = field(default_factory=dict)
    #: Bucket → insertion-ordered set of digests (dict keys; values unused).
    _buckets: Dict[BucketKey, Dict[str, None]] = field(default_factory=dict)
    #: Link → digests of beacons crossing it (only when ``local_as`` set).
    _by_link: Dict[LinkID, Dict[str, None]] = field(default_factory=dict)
    #: AS → digests of beacons whose path contains it (only when ``local_as`` set).
    _by_as: Dict[int, Dict[str, None]] = field(default_factory=dict)

    def insert(self, stored: StoredBeacon) -> bool:
        """Insert a beacon; return ``False`` if it was already present."""
        digest = stored.beacon.digest()
        if digest in self._by_digest:
            return False
        self._by_digest[digest] = stored
        self._buckets.setdefault(stored.bucket, {})[digest] = None
        if self.local_as is not None:
            for link in self._links_of(stored):
                self._by_link.setdefault(link, {})[digest] = None
            for as_id in stored.beacon.as_path():
                self._by_as.setdefault(as_id, {})[digest] = None
        return True

    def _links_of(self, stored: StoredBeacon) -> Tuple[LinkID, ...]:
        """Return the links of a stored beacon, including its arrival link."""
        links = stored.beacon.links()
        last = stored.beacon.entries[-1]
        if last.egress_interface is None:
            return links
        arrival = normalize_link_id(
            (last.as_id, last.egress_interface),
            (self.local_as, stored.received_on_interface),
        )
        return links + (arrival,)

    def bucket_keys(self) -> Tuple[BucketKey, ...]:
        """Return all non-empty bucket keys, deterministically ordered."""
        return tuple(
            sorted(
                (key for key, digests in self._buckets.items() if digests),
                key=lambda key: (key[0], key[1] or -1, key[2] or -1, key[3] or ""),
            )
        )

    def beacons_in_bucket(self, bucket: BucketKey) -> List[StoredBeacon]:
        """Return the stored beacons of one bucket (insertion order)."""
        return [self._by_digest[d] for d in self._buckets.get(bucket, ()) if d in self._by_digest]

    def all_beacons(self) -> List[StoredBeacon]:
        """Return every stored beacon (insertion order within buckets)."""
        return list(self._by_digest.values())

    def get(self, digest: str) -> Optional[StoredBeacon]:
        """Return the stored beacon with ``digest``, if present."""
        return self._by_digest.get(digest)

    def remove_expired(self, now_ms: float) -> int:
        """Drop beacons that are expired (or about to expire); return the count."""
        horizon = now_ms + self.expiry_margin_ms
        return self._remove_digests(
            digest
            for digest, stored in self._by_digest.items()
            if stored.beacon.is_expired(horizon)
        )

    def remove_crossing_link(self, link_id: LinkID, arrival_as: Optional[int] = None) -> int:
        """Drop every beacon whose path (including its arrival link) crosses
        ``link_id``; return the count.

        The revocation fast path: with ``local_as`` set the removal comes
        out of the link index in O(matches).  Without it (standalone
        databases) a predicate scan runs, using ``arrival_as`` for the
        arrival-link check when provided.
        """
        failed = normalize_link_id(*link_id)
        if self.local_as is not None:
            return self._remove_digests(tuple(self._by_link.get(failed, ())))
        local_as = arrival_as

        def crosses(stored: StoredBeacon) -> bool:
            if failed in stored.beacon.link_set():
                return True
            if local_as is None:
                return False
            last = stored.beacon.entries[-1]
            if last.egress_interface is None:
                return False
            arrival = normalize_link_id(
                (last.as_id, last.egress_interface),
                (local_as, stored.received_on_interface),
            )
            return failed == arrival

        return self.remove_matching(crosses)

    def remove_crossing_as(self, gone_as: int) -> int:
        """Drop every beacon whose AS path contains ``gone_as``; return the count."""
        if self.local_as is not None:
            return self._remove_digests(tuple(self._by_as.get(gone_as, ())))
        return self.remove_matching(lambda stored: stored.beacon.contains_as(gone_as))

    def remove_matching(self, predicate: Callable[[StoredBeacon], bool]) -> int:
        """Drop every stored beacon satisfying ``predicate``; return the count.

        This is the invalidation primitive of the dynamic-scenario engine:
        when an inter-domain link fails (or an AS leaves), the control
        service removes every beacon whose path crosses the failed element
        so that RACs re-select on the changed topology instead of keeping
        stale candidates alive until their natural expiry.
        """
        return self._remove_digests(
            digest for digest, stored in self._by_digest.items() if predicate(stored)
        )

    def _remove_digests(self, digests: Iterable[str]) -> int:
        frame = _spans.push("db.invalidate") if _spans.ENABLED else None
        try:
            return self._remove_digests_inner(digests)
        finally:
            if frame is not None:
                _spans.pop(frame)

    def _remove_digests_inner(self, digests: Iterable[str]) -> int:
        removed = 0
        for digest in list(digests):
            stored = self._by_digest.pop(digest, None)
            if stored is None:
                continue
            removed += 1
            bucket_digests = self._buckets.get(stored.bucket)
            if bucket_digests is not None:
                bucket_digests.pop(digest, None)
                if not bucket_digests:
                    del self._buckets[stored.bucket]
            if self.local_as is not None:
                for link in self._links_of(stored):
                    members = self._by_link.get(link)
                    if members is not None:
                        members.pop(digest, None)
                        if not members:
                            del self._by_link[link]
                for as_id in stored.beacon.as_path():
                    members = self._by_as.get(as_id)
                    if members is not None:
                        members.pop(digest, None)
                        if not members:
                            del self._by_as[as_id]
        return removed

    def __len__(self) -> int:
        return len(self._by_digest)

    def __contains__(self, digest: str) -> bool:
        return digest in self._by_digest


@dataclass
class EgressRecord:
    """Egress-database entry: which interfaces a beacon hash was sent on."""

    expires_at_ms: float
    egress_interfaces: Set[int] = field(default_factory=set)


@dataclass
class EgressDatabase:
    """Hash-only store of already-propagated beacons.

    ``filter_new_interfaces`` is the deduplication primitive of the egress
    gateway: given a beacon and the egress interfaces the RACs selected it
    for, it returns only the interfaces the beacon has *not* been sent on
    yet, and records them (paper §V-D).

    ``expiry_margin_ms`` mirrors :class:`IngressDatabase`: expiry drops
    records that expire within the margin, so the three per-AS stores share
    one horizon and a beacon never survives here after the ingress database
    dropped it.
    """

    expiry_margin_ms: float = 0.0
    _records: Dict[str, EgressRecord] = field(default_factory=dict)

    def filter_new_interfaces(
        self, digest: str, interfaces: Iterable[int], expires_at_ms: float
    ) -> List[int]:
        """Return the not-yet-used interfaces for ``digest`` and record them."""
        record = self._records.get(digest)
        if record is None:
            record = EgressRecord(expires_at_ms=expires_at_ms)
            self._records[digest] = record
        record.expires_at_ms = max(record.expires_at_ms, expires_at_ms)
        fresh = [i for i in interfaces if i not in record.egress_interfaces]
        record.egress_interfaces.update(fresh)
        return fresh

    def interfaces_for(self, digest: str) -> Set[int]:
        """Return the interfaces ``digest`` was already propagated on."""
        record = self._records.get(digest)
        return set(record.egress_interfaces) if record is not None else set()

    def remove_expired(self, now_ms: float) -> int:
        """Drop records that are expired (or about to expire); return the count."""
        horizon = now_ms + self.expiry_margin_ms
        expired = [d for d, record in self._records.items() if record.expires_at_ms <= horizon]
        for digest in expired:
            del self._records[digest]
        return len(expired)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._records


@dataclass(frozen=True)
class RegisteredPath:
    """A path registered at the local path service.

    Attributes:
        segment: The terminated beacon describing the path from its origin
            AS to the registering AS.
        criteria_tags: Names of the criteria (RACs) the path was optimized
            for — the usability tagging of paper §V-D.
        registered_at_ms: Simulated time of the *first* registration.
        last_registered_at_ms: Simulated time of the most recent
            (re-)registration; re-registering a known segment merges tags
            but still refreshes this timestamp, so convergence measurement
            can see *when* a path came back rather than only that it is
            present at the next period-boundary probe.
    """

    segment: Beacon
    criteria_tags: Tuple[str, ...]
    registered_at_ms: float
    last_registered_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.segment.is_terminated:
            raise GatewayError("only terminated beacons can be registered as paths")
        if self.last_registered_at_ms is None:
            object.__setattr__(self, "last_registered_at_ms", self.registered_at_ms)


@dataclass
class PathService:
    """The per-AS path service end hosts query for paths.

    Registration enforces the per-(criteria, origin, interface-group) limit
    the paper uses in its simulations (20 paths); re-registration of an
    already-known segment merges the criteria tags instead of consuming
    quota.

    Registered segments are additionally indexed by the inter-domain links
    they traverse and the ASes on their path, so revocation-driven
    withdrawal (:meth:`remove_crossing_link` / :meth:`remove_crossing_as`)
    costs O(matching paths) instead of a full scan per revocation.

    ``expiry_margin_ms`` mirrors :class:`IngressDatabase`: expiry drops
    paths whose segment expires within the margin, keeping all per-AS
    stores on one horizon.

    Mutations that touch a digest (registration, merge, withdrawal, expiry
    purge) notify the registered invalidation listeners with the affected
    origin AS — the hook the query-frontend cache uses to invalidate
    precisely instead of scanning.
    """

    max_paths_per_key: int = 20
    expiry_margin_ms: float = 0.0
    _by_digest: Dict[str, RegisteredPath] = field(default_factory=dict)
    _quota: Dict[Tuple[str, int, Optional[int]], int] = field(default_factory=dict)
    #: Which quota keys each stored digest actually consumed a slot of, so
    #: removal releases exactly what registration took (merged criteria
    #: tags do not consume — and therefore do not release — extra slots).
    _consumed: Dict[str, Tuple[Tuple[str, int, Optional[int]], ...]] = field(
        default_factory=dict
    )
    #: Link → digests of registered segments crossing it.
    _by_link: Dict[LinkID, Dict[str, None]] = field(default_factory=dict)
    #: AS → digests of registered segments whose path contains it.
    _by_as: Dict[int, Dict[str, None]] = field(default_factory=dict)
    #: Origin AS → digests of registered segments starting there, in
    #: insertion order (dict-as-ordered-set), so ``paths_to`` is indexed
    #: instead of a full ``_by_digest`` scan.  Merges replace the record
    #: in ``_by_digest`` without moving it, so per-origin insertion order
    #: equals the scan's filtered order and results are identical.
    _by_origin: Dict[int, Dict[str, None]] = field(default_factory=dict)
    #: Terminal (registering) AS → digests ending there: the index down-
    #: segment registration at core ASes serves destination queries from.
    _by_terminal: Dict[int, Dict[str, None]] = field(default_factory=dict)
    _invalidation_listeners: List[Callable[[int], None]] = field(default_factory=list)

    def add_invalidation_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(origin_as)`` whenever a digest with that origin
        is registered, merged, withdrawn, or purged by expiry."""
        self._invalidation_listeners.append(listener)

    def _notify_invalidation(self, origin_as: int) -> None:
        for listener in self._invalidation_listeners:
            listener(origin_as)

    def register(self, path: RegisteredPath) -> bool:
        """Register ``path``; return whether it was accepted (or merged)."""
        digest = path.segment.digest()
        existing = self._by_digest.get(digest)
        if existing is not None:
            merged_tags = tuple(sorted(set(existing.criteria_tags) | set(path.criteria_tags)))
            # Re-registration keeps the original registration time but
            # refreshes the last-registered timestamp: recovery detection
            # uses it to date a path's return sub-period instead of waiting
            # for the next period-boundary probe.
            self._by_digest[digest] = RegisteredPath(
                segment=existing.segment,
                criteria_tags=merged_tags,
                registered_at_ms=existing.registered_at_ms,
                last_registered_at_ms=max(
                    existing.last_registered_at_ms or existing.registered_at_ms,
                    path.last_registered_at_ms or path.registered_at_ms,
                ),
            )
            if self._invalidation_listeners:
                self._notify_invalidation(existing.segment.origin_as)
            return True

        consumed = []
        for tag in path.criteria_tags:
            key = (tag, path.segment.origin_as, path.segment.interface_group_id)
            used = self._quota.get(key, 0)
            if used < self.max_paths_per_key:
                self._quota[key] = used + 1
                consumed.append(key)
        if not consumed:
            return False
        self._by_digest[digest] = path
        self._consumed[digest] = tuple(consumed)
        for link in path.segment.links():
            self._by_link.setdefault(link, {})[digest] = None
        for as_id in path.segment.as_path():
            self._by_as.setdefault(as_id, {})[digest] = None
        origin_as = path.segment.origin_as
        self._by_origin.setdefault(origin_as, {})[digest] = None
        self._by_terminal.setdefault(path.segment.last_as, {})[digest] = None
        if self._invalidation_listeners:
            self._notify_invalidation(origin_as)
        return True

    def paths_to(self, origin_as: int) -> List[RegisteredPath]:
        """Return every registered path whose origin is ``origin_as``.

        Indexed through ``_by_origin`` — O(matching paths), never a scan —
        and order-identical to the historical ``_by_digest`` filter.
        """
        by_digest = self._by_digest
        return [by_digest[d] for d in self._by_origin.get(origin_as, ())]

    def down_paths_to(self, terminal_as: int) -> List[RegisteredPath]:
        """Return every registered segment *ending* at ``terminal_as``.

        At a core AS that accepts down-segment registrations
        (``register_at_origin`` path-registration messages), this is the
        destination-keyed view: segments usable to reach ``terminal_as``.
        """
        by_digest = self._by_digest
        return [by_digest[d] for d in self._by_terminal.get(terminal_as, ())]

    def get(self, digest: str) -> Optional[RegisteredPath]:
        """Return the registered path with segment ``digest``, if present.

        The traffic engine revalidates its active flow assignments with
        this: a path withdrawn by the dynamic-scenario engine (or expired)
        must stop carrying traffic at the next round.
        """
        return self._by_digest.get(digest)

    def latest_registration_ms(self, origin_as: int) -> Optional[float]:
        """Return the most recent (re-)registration time towards ``origin_as``.

        ``None`` when no path to that origin is registered.  A staleness
        query: merges refresh ``last_registered_at_ms``, so this tells how
        recently the control plane confirmed *any* path to the origin.
        (Recovery dating uses first-registration times of usable paths
        instead — see ``BeaconingSimulation._latest_usable_registration``.)
        """
        by_digest = self._by_digest
        times = [
            by_digest[d].last_registered_at_ms
            for d in self._by_origin.get(origin_as, ())
            if by_digest[d].last_registered_at_ms is not None
        ]
        return max(times) if times else None

    def paths_with_tag(self, tag: str) -> List[RegisteredPath]:
        """Return every registered path optimized for criteria ``tag``."""
        return [p for p in self._by_digest.values() if tag in p.criteria_tags]

    def all_paths(self) -> List[RegisteredPath]:
        """Return every registered path."""
        return list(self._by_digest.values())

    def remove_expired(self, now_ms: float) -> int:
        """Drop paths whose segments are expired (or about to); return the count."""
        horizon = now_ms + self.expiry_margin_ms
        return self._remove_digests(
            digest
            for digest, path in self._by_digest.items()
            if path.segment.is_expired(horizon)
        )

    def remove_crossing_link(self, link_id: LinkID) -> int:
        """Withdraw every path crossing ``link_id``; return the count.

        Indexed (O(matching paths)): the revocation fast path.
        """
        failed = normalize_link_id(*link_id)
        return self._remove_digests(tuple(self._by_link.get(failed, ())))

    def remove_crossing_as(self, gone_as: int) -> int:
        """Withdraw every path whose AS path contains ``gone_as``."""
        return self._remove_digests(tuple(self._by_as.get(gone_as, ())))

    def remove_matching(self, predicate: Callable[[RegisteredPath], bool]) -> int:
        """Drop every registered path satisfying ``predicate``; return the count.

        Used by the dynamic-scenario engine to withdraw paths crossing a
        failed link (or a departed AS) immediately instead of waiting for
        segment expiry.
        """
        return self._remove_digests(
            digest for digest, path in self._by_digest.items() if predicate(path)
        )

    def _remove_digests(self, digests: Iterable[str]) -> int:
        """Remove paths by digest, releasing exactly the quota they consumed."""
        frame = _spans.push("db.invalidate") if _spans.ENABLED else None
        try:
            return self._remove_digests_inner(digests)
        finally:
            if frame is not None:
                _spans.pop(frame)

    def _remove_digests_inner(self, digests: Iterable[str]) -> int:
        removed = 0
        touched_origins: Dict[int, None] = {}
        for digest in list(digests):
            path = self._by_digest.pop(digest, None)
            if path is None:
                continue
            removed += 1
            for key in self._consumed.pop(digest, ()):
                used = self._quota.get(key, 0)
                if used > 1:
                    self._quota[key] = used - 1
                elif used == 1:
                    del self._quota[key]
            for link in path.segment.links():
                members = self._by_link.get(link)
                if members is not None:
                    members.pop(digest, None)
                    if not members:
                        del self._by_link[link]
            for as_id in path.segment.as_path():
                members = self._by_as.get(as_id)
                if members is not None:
                    members.pop(digest, None)
                    if not members:
                        del self._by_as[as_id]
            origin_as = path.segment.origin_as
            members = self._by_origin.get(origin_as)
            if members is not None:
                members.pop(digest, None)
                if not members:
                    del self._by_origin[origin_as]
            members = self._by_terminal.get(path.segment.last_as)
            if members is not None:
                members.pop(digest, None)
                if not members:
                    del self._by_terminal[path.segment.last_as]
            touched_origins[origin_as] = None
        if touched_origins and self._invalidation_listeners:
            for origin_as in touched_origins:
                self._notify_invalidation(origin_as)
        return removed

    def __len__(self) -> int:
        return len(self._by_digest)
