"""The local topology view of one AS.

A control service must not depend on global topology knowledge — an AS only
knows its own interfaces, the links attached to them (including the
neighbouring AS on the far end) and its internal network.  The
:class:`LocalTopologyView` captures exactly that slice and is the only
topology object handed to gateways and RACs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.staticinfo import StaticInfo
from repro.exceptions import UnknownInterfaceError, UnknownLinkError
from repro.topology.entities import ASInfo, InterfaceID, Link
from repro.topology.graph import Topology
from repro.topology.intra_domain import IntraDomainModel


@dataclass
class LocalTopologyView:
    """Everything one AS knows about its own attachment to the Internet.

    Attributes:
        as_info: The AS's interfaces.
        intra_domain: Latency model between the AS's own interfaces.
        links_by_interface: The inter-domain link attached to each local
            interface.
    """

    as_info: ASInfo
    intra_domain: IntraDomainModel
    links_by_interface: Dict[int, Link] = field(default_factory=dict)
    #: Lazily cached sorted interface tuple; the view only changes through
    #: :meth:`attach_link` (growth churn), which invalidates the memo, and
    #: ``interface_ids`` sits on per-message fast paths (beacon rounds,
    #: revocation forwarding), so sorting once per change is enough.
    #: Excluded from init/compare: a memo must not make equal views differ.
    _interface_ids: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        as_id: int,
        intra_domain: Optional[IntraDomainModel] = None,
    ) -> "LocalTopologyView":
        """Extract the local view of ``as_id`` from a global topology."""
        as_info = topology.as_info(as_id)
        links: Dict[int, Link] = {}
        for interface in as_info:
            try:
                links[interface.interface_id] = topology.link_of_interface(interface.key)
            except UnknownLinkError:
                # Interfaces without an attached inter-domain link (e.g.
                # provisioned but unused ports) carry no control-plane
                # traffic and are simply not part of the local view.
                continue
        model = intra_domain or IntraDomainModel(as_info=as_info)
        return cls(as_info=as_info, intra_domain=model, links_by_interface=links)

    @property
    def as_id(self) -> int:
        """Return the AS identifier."""
        return self.as_info.as_id

    def interface_ids(self) -> Tuple[int, ...]:
        """Return the local interfaces that have an attached link, sorted."""
        if self._interface_ids is None:
            self._interface_ids = tuple(sorted(self.links_by_interface))
        return self._interface_ids

    def attach_link(self, interface_id: int, link: Link) -> None:
        """Attach a freshly added inter-domain link to a local interface.

        The growth-churn hook: when a new AS joins mid-run, each
        attachment AS's view learns about its new interface here.  The
        interface must already exist on :attr:`as_info`.
        """
        self.as_info.interface(interface_id)  # raises if missing
        self.links_by_interface[interface_id] = link
        self._interface_ids = None

    def link_of(self, interface_id: int) -> Link:
        """Return the inter-domain link attached to ``interface_id``."""
        link = self.links_by_interface.get(interface_id)
        if link is None:
            raise UnknownLinkError(
                f"AS {self.as_id} has no link on interface {interface_id}"
            )
        return link

    def neighbor_of(self, interface_id: int) -> InterfaceID:
        """Return the (AS, interface) at the far end of a local interface."""
        link = self.link_of(interface_id)
        return link.other_end((self.as_id, interface_id))

    def intra_latency_ms(self, interface_a: int, interface_b: int) -> float:
        """Return the intra-AS latency between two local interfaces."""
        return self.intra_domain.latency_ms(interface_a, interface_b)

    def static_info_for(
        self, ingress_interface: Optional[int], egress_interface: Optional[int]
    ) -> StaticInfo:
        """Build the static-info record of this AS's hop in a beacon.

        Args:
            ingress_interface: Interface the beacon was received on, or
                ``None`` at the origin AS.
            egress_interface: Interface the beacon leaves on, or ``None``
                for a terminal (registration) entry.
        """
        intra = 0.0
        if ingress_interface is not None and egress_interface is not None:
            intra = self.intra_latency_ms(ingress_interface, egress_interface)

        link_latency = 0.0
        link_bandwidth = None
        egress_location = None
        if egress_interface is not None:
            link = self.link_of(egress_interface)
            link_latency = link.latency_ms
            link_bandwidth = link.bandwidth_mbps
            egress_location = self._location(egress_interface)

        ingress_location = self._location(ingress_interface) if ingress_interface is not None else None
        return StaticInfo(
            intra_latency_ms=intra,
            link_latency_ms=link_latency,
            link_bandwidth_mbps=link_bandwidth,
            egress_location=egress_location,
            ingress_location=ingress_location,
        )

    def _location(self, interface_id: int):
        try:
            return self.as_info.interface(interface_id).location
        except UnknownInterfaceError:
            return None
