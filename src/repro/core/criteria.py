"""Criteria and criteria sets.

The paper defines a *criteria set* as "a subset of all possible criteria
across the Internet required by at least one type of application in at
least one end domain" (§IV-A); every routing algorithm optimizes exactly
one criteria set.  This module turns that definition into code:

* a :class:`Criterion` binds a metric to an objective and optionally to a
  constraint (e.g. "latency at most 30 ms", Figure 1's live-video example),
* a :class:`CriteriaSet` combines one or more criteria with a composition
  rule (lexicographic or Pareto) and can *evaluate* and *rank* beacons, and
* :class:`StandardMetrics` extracts metric values from beacons, which keeps
  the mapping between PCB static info and algebraic metrics in one place.

Criteria sets are declarative, hashable and serializable — which is what
makes them *extensible*: an origin AS can describe a brand new criteria set
inside an on-demand algorithm payload without any code changes at the ASes
that execute it.

Fast-path note: beacons are immutable and extractor registration is
append-only, so extracted metric values and whole :class:`PathVector`\\ s
are memoized per beacon (see :meth:`StandardMetrics.vector_for`).  Every
RAC re-ranks its entire bucket each beaconing period; without the memo that
re-walks every entry of every beacon every round.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.algebra import (
    BANDWIDTH,
    HOP_COUNT,
    LATENCY,
    MetricDefinition,
    Objective,
    PathVector,
    STANDARD_METRICS,
    pareto_frontier,
)
from repro.core.beacon import Beacon
from repro.exceptions import AlgebraError, ConfigurationError


class StandardMetrics:
    """Extraction of standard metric values from beacons.

    The mapping from a beacon's static-info records to metric values is a
    *beta-tier* standardization concern in the paper's model (§VI): every
    participating AS must compute "latency" or "bandwidth" the same way for
    global optimization to be meaningful.  Centralizing the extraction here
    is this library's version of that standard.
    """

    _extractors: Dict[str, Callable[[Beacon], float]] = {
        LATENCY.name: lambda beacon: beacon.total_latency_ms(),
        HOP_COUNT.name: lambda beacon: float(beacon.hop_count),
        BANDWIDTH.name: lambda beacon: beacon.bottleneck_bandwidth_mbps(),
    }

    @classmethod
    def extract(cls, metric: MetricDefinition, beacon: Beacon) -> float:
        """Return the value of ``metric`` for ``beacon``.

        Raises:
            AlgebraError: If no extractor is registered for the metric.
        """
        extractor = cls._extractors.get(metric.name)
        if extractor is None:
            raise AlgebraError(f"no standard extractor for metric {metric.name}")
        return extractor(beacon)

    @classmethod
    def register(cls, metric: MetricDefinition, extractor: Callable[[Beacon], float]) -> None:
        """Register an extractor for a new metric (append-only, §VI beta tier)."""
        if metric.name in cls._extractors:
            raise AlgebraError(f"extractor for metric {metric.name} already registered")
        cls._extractors[metric.name] = extractor
        STANDARD_METRICS.setdefault(metric.name, metric)

    @classmethod
    def known_metrics(cls) -> Tuple[str, ...]:
        """Return the names of all metrics with registered extractors."""
        return tuple(sorted(cls._extractors))

    @classmethod
    def vector_for(cls, metrics: Sequence[MetricDefinition], beacon: Beacon) -> PathVector:
        """Return the :class:`PathVector` of ``beacon`` over ``metrics``.

        The vector is memoized per (beacon, signature): beacons are
        immutable and extractor registration is append-only, so the same
        beacon evaluated by the same criteria set across rounds (the common
        case — every RAC re-ranks its whole bucket each period) reuses the
        extracted values instead of re-walking the entries.
        """
        signature = tuple(metrics)
        cache = beacon.__dict__.get("_metric_vectors")
        if cache is None:
            cache = {}
            beacon.__dict__["_metric_vectors"] = cache
        vector = cache.get(signature)
        if vector is None:
            vector = PathVector(
                metrics=signature,
                values=tuple(cls.extract(metric, beacon) for metric in metrics),
            )
            cache[signature] = vector
        return vector


@dataclass(frozen=True)
class Constraint:
    """A bound on a metric value (e.g. latency at most 30 ms)."""

    metric: MetricDefinition
    maximum: Optional[float] = None
    minimum: Optional[float] = None

    def __post_init__(self) -> None:
        if self.maximum is None and self.minimum is None:
            raise ConfigurationError("a constraint needs a minimum or a maximum")

    def satisfied_by(self, value: float) -> bool:
        """Return whether ``value`` satisfies the constraint."""
        if self.maximum is not None and value > self.maximum:
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        return True

    def describe(self) -> str:
        """Return a human-readable rendering of the constraint."""
        parts = []
        if self.minimum is not None:
            parts.append(f"{self.metric.name} >= {self.minimum:g}")
        if self.maximum is not None:
            parts.append(f"{self.metric.name} <= {self.maximum:g}")
        return " and ".join(parts)


@dataclass(frozen=True)
class Criterion:
    """One elementary optimization criterion: a metric with an objective.

    The objective defaults to the metric's natural objective (minimize
    latency, maximize bandwidth) but can be overridden, which lets tests
    express intentionally unusual criteria.
    """

    metric: MetricDefinition
    objective: Optional[Objective] = None

    @property
    def effective_objective(self) -> Objective:
        """Return the objective actually used for comparisons."""
        return self.objective or self.metric.objective

    def evaluate(self, beacon: Beacon) -> float:
        """Return the beacon's value for this criterion's metric."""
        return StandardMetrics.extract(self.metric, beacon)

    def sort_key(self, beacon: Beacon) -> float:
        """Return a value that sorts beacons from best to worst."""
        value = self.evaluate(beacon)
        if self.effective_objective is Objective.MINIMIZE:
            return value
        return -value


class Composition(enum.Enum):
    """How the criteria of a set are combined into a preference."""

    #: Criteria are applied in order; earlier criteria dominate later ones.
    LEXICOGRAPHIC = "lexicographic"
    #: All non-dominated beacons are considered optimal.
    PARETO = "pareto"


@dataclass(frozen=True)
class CriteriaSet:
    """A named, self-contained description of what "optimal" means.

    Attributes:
        name: Identifier of the criteria set (unique within a deployment).
        criteria: The elementary criteria, in priority order for
            lexicographic composition.
        constraints: Hard constraints; beacons violating any constraint are
            filtered out before optimization.
        composition: How multiple criteria combine.
    """

    name: str
    criteria: Tuple[Criterion, ...]
    constraints: Tuple[Constraint, ...] = ()
    composition: Composition = Composition.LEXICOGRAPHIC

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a criteria set needs a non-empty name")
        if not self.criteria:
            raise ConfigurationError(f"criteria set {self.name!r} needs at least one criterion")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def admits(self, beacon: Beacon) -> bool:
        """Return whether ``beacon`` satisfies every hard constraint."""
        for constraint in self.constraints:
            value = StandardMetrics.extract(constraint.metric, beacon)
            if not constraint.satisfied_by(value):
                return False
        return True

    def filter_admissible(self, beacons: Sequence[Beacon]) -> List[Beacon]:
        """Return the beacons that satisfy every constraint."""
        return [beacon for beacon in beacons if self.admits(beacon)]

    def sort_key(self, beacon: Beacon) -> Tuple[float, ...]:
        """Return the lexicographic sort key of ``beacon`` (best sorts first)."""
        return tuple(criterion.sort_key(beacon) for criterion in self.criteria)

    def rank(self, beacons: Sequence[Beacon]) -> List[Beacon]:
        """Return admissible beacons sorted from best to worst.

        For Pareto composition, the dominant beacons come first (in stable
        input order), followed by the dominated ones.
        """
        admissible = self.filter_admissible(beacons)
        if self.composition is Composition.LEXICOGRAPHIC:
            return sorted(admissible, key=self.sort_key)
        dominant = self.select(admissible, limit=len(admissible))
        dominant_ids = {id(beacon) for beacon in dominant}
        rest = [beacon for beacon in admissible if id(beacon) not in dominant_ids]
        return dominant + rest

    def select(self, beacons: Sequence[Beacon], limit: int) -> List[Beacon]:
        """Return the best at most ``limit`` admissible beacons.

        For lexicographic composition this is a simple sorted prefix; for
        Pareto composition the dominant set is computed first and truncated
        deterministically (shorter AS paths first) if it exceeds ``limit``.
        """
        if limit <= 0:
            return []
        admissible = self.filter_admissible(beacons)
        if self.composition is Composition.LEXICOGRAPHIC:
            return sorted(admissible, key=self.sort_key)[:limit]

        metrics = tuple(criterion.metric for criterion in self.criteria)
        labelled = [
            (beacon, StandardMetrics.vector_for(metrics, beacon)) for beacon in admissible
        ]
        frontier = [beacon for beacon, _vector in pareto_frontier(labelled)]
        frontier.sort(key=lambda beacon: (beacon.hop_count, beacon.total_latency_ms()))
        return frontier[:limit]

    def best(self, beacons: Sequence[Beacon]) -> Optional[Beacon]:
        """Return the single best admissible beacon, or ``None``."""
        selected = self.select(beacons, limit=1)
        return selected[0] if selected else None

    # ------------------------------------------------------------------
    # serialization (used by on-demand algorithm payloads)
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, object]:
        """Return a JSON-serializable description of this criteria set."""
        return {
            "name": self.name,
            "composition": self.composition.value,
            "criteria": [
                {
                    "metric": criterion.metric.name,
                    "objective": criterion.effective_objective.value,
                }
                for criterion in self.criteria
            ],
            "constraints": [
                {
                    "metric": constraint.metric.name,
                    "maximum": constraint.maximum,
                    "minimum": constraint.minimum,
                }
                for constraint in self.constraints
            ],
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "CriteriaSet":
        """Reconstruct a criteria set from :meth:`to_spec` output.

        Raises:
            ConfigurationError: If the specification references unknown
                metrics or is structurally invalid.
        """
        try:
            name = str(spec["name"])
            composition = Composition(str(spec.get("composition", "lexicographic")))
            criteria = []
            for entry in spec["criteria"]:  # type: ignore[index]
                metric = _resolve_metric(str(entry["metric"]))
                objective = Objective(str(entry["objective"]))
                criteria.append(Criterion(metric=metric, objective=objective))
            constraints = []
            for entry in spec.get("constraints", ()):  # type: ignore[union-attr]
                metric = _resolve_metric(str(entry["metric"]))
                constraints.append(
                    Constraint(
                        metric=metric,
                        maximum=_optional_float(entry.get("maximum")),
                        minimum=_optional_float(entry.get("minimum")),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid criteria-set spec: {exc}") from exc
        return cls(
            name=name,
            criteria=tuple(criteria),
            constraints=tuple(constraints),
            composition=composition,
        )


def _resolve_metric(name: str) -> MetricDefinition:
    metric = STANDARD_METRICS.get(name)
    if metric is None:
        raise ConfigurationError(f"unknown metric {name!r}")
    return metric


def _optional_float(value: object) -> Optional[float]:
    if value is None:
        return None
    return float(value)


# ----------------------------------------------------------------------
# commonly used criteria sets (the paper's elementary criteria)
# ----------------------------------------------------------------------
def lowest_latency() -> CriteriaSet:
    """Latency-optimal paths (the VoIP example of Figure 1)."""
    return CriteriaSet(name="lowest-latency", criteria=(Criterion(LATENCY),))


def fewest_hops() -> CriteriaSet:
    """AS-hop-count-optimal paths (BGP-like shortest path)."""
    return CriteriaSet(name="fewest-hops", criteria=(Criterion(HOP_COUNT),))


def highest_bandwidth() -> CriteriaSet:
    """Bandwidth-optimal paths (the file-transfer example of Figure 1)."""
    return CriteriaSet(name="highest-bandwidth", criteria=(Criterion(BANDWIDTH),))


def shortest_widest() -> CriteriaSet:
    """Highest bandwidth, ties broken by lowest latency (Figure 2c)."""
    return CriteriaSet(
        name="shortest-widest", criteria=(Criterion(BANDWIDTH), Criterion(LATENCY))
    )


def widest_with_latency_bound(latency_bound_ms: float) -> CriteriaSet:
    """Highest bandwidth among paths within a latency bound (Figure 1, example #2)."""
    if latency_bound_ms <= 0.0 or not math.isfinite(latency_bound_ms):
        raise ConfigurationError(f"latency bound must be positive and finite: {latency_bound_ms}")
    return CriteriaSet(
        name=f"widest-latency<={latency_bound_ms:g}ms",
        criteria=(Criterion(BANDWIDTH), Criterion(LATENCY)),
        constraints=(Constraint(metric=LATENCY, maximum=latency_bound_ms),),
    )


def latency_bandwidth_pareto() -> CriteriaSet:
    """All latency/bandwidth Pareto-optimal paths (Sobrinho-style dominance)."""
    return CriteriaSet(
        name="latency-bandwidth-pareto",
        criteria=(Criterion(LATENCY), Criterion(BANDWIDTH)),
        composition=Composition.PARETO,
    )
