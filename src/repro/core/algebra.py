"""Routing algebra: the formal framework behind extensible criteria.

IREC's premise is that path-optimization criteria keep evolving, so the
library needs a principled way to *define* a criterion and to reason about
its properties.  This module provides that foundation, following the
routing-algebra literature the paper builds on (Sobrinho's work on routing
on multiple optimality criteria, §X):

* a **metric** describes how one elementary quantity accumulates along a
  path (additively like latency, by bottleneck like bandwidth,
  multiplicatively like reliability) and whether smaller or larger is
  better,
* a **path vector** holds the values of several metrics for one path and
  supports Pareto-dominance comparisons, and
* helper functions check **isotonicity** (extension preserves preference),
  the property whose violation by intra-AS latency motivates extended-path
  optimization (paper §IV-E), and compute **Pareto frontiers** of
  incomparable dominant paths.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AlgebraError


class Accumulation(enum.Enum):
    """How a metric accumulates when a path is extended by one hop."""

    ADDITIVE = "additive"
    BOTTLENECK = "bottleneck"
    MULTIPLICATIVE = "multiplicative"


class Objective(enum.Enum):
    """Whether smaller or larger values of a metric are preferable."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class MetricDefinition:
    """The algebraic definition of one elementary metric.

    Attributes:
        name: Unique metric name (e.g. ``"latency_ms"``).
        accumulation: How the metric composes along a path.
        objective: Whether lower or higher values are preferred.
        identity: The value of the empty path: 0 for additive metrics,
            ``+inf`` for bottleneck-minimum metrics, 1 for multiplicative.
    """

    name: str
    accumulation: Accumulation
    objective: Objective

    @property
    def identity(self) -> float:
        """Return the neutral element of the accumulation operation."""
        if self.accumulation is Accumulation.ADDITIVE:
            return 0.0
        if self.accumulation is Accumulation.BOTTLENECK:
            return math.inf
        return 1.0

    def combine(self, path_value: float, hop_value: float) -> float:
        """Extend a path value by one hop value."""
        if self.accumulation is Accumulation.ADDITIVE:
            return path_value + hop_value
        if self.accumulation is Accumulation.BOTTLENECK:
            return min(path_value, hop_value)
        return path_value * hop_value

    def prefers(self, a: float, b: float) -> bool:
        """Return whether value ``a`` is strictly preferable to value ``b``."""
        if self.objective is Objective.MINIMIZE:
            return a < b
        return a > b

    def at_least_as_good(self, a: float, b: float) -> bool:
        """Return whether ``a`` is at least as good as ``b``."""
        return not self.prefers(b, a)

    def best(self, values: Iterable[float]) -> float:
        """Return the best value among ``values``.

        Raises:
            AlgebraError: If ``values`` is empty.
        """
        values = list(values)
        if not values:
            raise AlgebraError(f"cannot take the best of zero values for metric {self.name}")
        return min(values) if self.objective is Objective.MINIMIZE else max(values)

    def sort_key(self) -> Callable[[float], float]:
        """Return a key function that sorts values from best to worst."""
        if self.objective is Objective.MINIMIZE:
            return lambda value: value
        return lambda value: -value


# Standard metric definitions used throughout the library.
LATENCY = MetricDefinition(
    name="latency_ms", accumulation=Accumulation.ADDITIVE, objective=Objective.MINIMIZE
)
HOP_COUNT = MetricDefinition(
    name="hop_count", accumulation=Accumulation.ADDITIVE, objective=Objective.MINIMIZE
)
BANDWIDTH = MetricDefinition(
    name="bandwidth_mbps", accumulation=Accumulation.BOTTLENECK, objective=Objective.MAXIMIZE
)
RELIABILITY = MetricDefinition(
    name="reliability", accumulation=Accumulation.MULTIPLICATIVE, objective=Objective.MAXIMIZE
)

STANDARD_METRICS: Dict[str, MetricDefinition] = {
    metric.name: metric for metric in (LATENCY, HOP_COUNT, BANDWIDTH, RELIABILITY)
}


@functools.lru_cache(maxsize=None)
def signature_index_map(
    metrics: Tuple[MetricDefinition, ...]
) -> Dict[MetricDefinition, int]:
    """Return (and cache) the metric→index map of a signature.

    A *signature* (tuple of metric definitions) recurs across every vector
    of one criteria set, so the map is computed once per distinct signature
    instead of once per lookup.
    """
    return {metric: index for index, metric in enumerate(metrics)}


@dataclass(frozen=True)
class PathVector:
    """The values of several metrics for one path.

    A path vector is always interpreted relative to a fixed tuple of metric
    definitions (its *signature*); operations on vectors with different
    signatures raise :class:`AlgebraError`.
    """

    metrics: Tuple[MetricDefinition, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.metrics) != len(self.values):
            raise AlgebraError(
                f"vector has {len(self.values)} values for {len(self.metrics)} metrics"
            )

    @classmethod
    def _trusted(
        cls, metrics: Tuple[MetricDefinition, ...], values: Tuple[float, ...]
    ) -> "PathVector":
        """Build a vector from an already-validated signature/value pair.

        Internal fast path for operations that derive a vector from an
        existing one (the signature is known consistent), skipping the
        dataclass ``__init__``/``__post_init__`` re-validation.
        """
        vector = object.__new__(cls)
        object.__setattr__(vector, "metrics", metrics)
        object.__setattr__(vector, "values", values)
        return vector

    @classmethod
    def empty(cls, metrics: Sequence[MetricDefinition]) -> "PathVector":
        """Return the vector of the empty path (each metric's identity)."""
        metrics = tuple(metrics)
        return cls(metrics=metrics, values=tuple(m.identity for m in metrics))

    @classmethod
    def of(cls, assignments: Mapping[MetricDefinition, float]) -> "PathVector":
        """Build a vector from a metric-to-value mapping."""
        metrics = tuple(assignments)
        return cls(metrics=metrics, values=tuple(assignments[m] for m in metrics))

    def value_of(self, metric: MetricDefinition) -> float:
        """Return the value of ``metric``.

        Raises:
            AlgebraError: If the metric is not part of the signature.
        """
        index = signature_index_map(self.metrics).get(metric)
        if index is None:
            raise AlgebraError(f"metric {metric.name} not in vector signature")
        return self.values[index]

    def extend(self, hop: Mapping[MetricDefinition, float]) -> "PathVector":
        """Return the vector of this path extended by one hop."""
        new_values = []
        for metric, value in zip(self.metrics, self.values):
            hop_value = hop.get(metric)
            if hop_value is None:
                raise AlgebraError(f"hop does not provide metric {metric.name}")
            new_values.append(metric.combine(value, hop_value))
        return PathVector._trusted(self.metrics, tuple(new_values))

    def _check_signature(self, other: "PathVector") -> None:
        if self.metrics != other.metrics:
            raise AlgebraError("cannot compare path vectors with different signatures")

    def dominates(self, other: "PathVector") -> bool:
        """Return whether this vector Pareto-dominates ``other``.

        Domination requires being at least as good on every metric and
        strictly better on at least one.
        """
        self._check_signature(other)
        at_least_as_good = all(
            metric.at_least_as_good(mine, theirs)
            for metric, mine, theirs in zip(self.metrics, self.values, other.values)
        )
        strictly_better = any(
            metric.prefers(mine, theirs)
            for metric, mine, theirs in zip(self.metrics, self.values, other.values)
        )
        return at_least_as_good and strictly_better

    def incomparable_with(self, other: "PathVector") -> bool:
        """Return whether neither vector dominates the other (and they differ)."""
        self._check_signature(other)
        return (
            not self.dominates(other)
            and not other.dominates(self)
            and self.values != other.values
        )

    def as_dict(self) -> Dict[str, float]:
        """Return a ``{metric name: value}`` mapping, handy for reports."""
        return {metric.name: value for metric, value in zip(self.metrics, self.values)}


def pareto_frontier(vectors: Sequence[Tuple[object, PathVector]]) -> List[Tuple[object, PathVector]]:
    """Return the dominant (non-dominated) subset of labelled vectors.

    This implements the "set of dominant paths" of Sobrinho et al. that the
    paper discusses as the alternative, extensibility-hostile approach to
    multi-criteria optimality: all non-dominated paths are kept, which is
    optimal but grows quickly with the number of criteria (§X).

    The frontier is computed without the naive all-pairs rescan: values are
    first normalized so that smaller is always better, then

    * one metric: a single min-scan,
    * two metrics: a sort-based sweep (O(n log n)) tracking the best second
      component seen at strictly smaller first components, and
    * three or more metrics: a skyline scan over the vectors in ascending
      lexicographic order.  Componentwise domination implies strict
      lexicographic order, so every potential dominator of a vector
      precedes it in the scan and each vector only needs to be checked
      against the frontier built so far.

    Args:
        vectors: Sequence of ``(label, vector)`` pairs; labels are opaque.
            All vectors must share one signature.

    Returns:
        The non-dominated pairs, in their original order.  Duplicated
        vectors are all kept (they do not dominate each other).
    """
    labelled = list(vectors)
    if len(labelled) <= 1:
        return labelled
    metrics = labelled[0][1].metrics
    normalized: List[Tuple[float, ...]] = []
    for _label, vector in labelled:
        if vector.metrics != metrics:
            raise AlgebraError("cannot compare path vectors with different signatures")
        normalized.append(
            tuple(
                value if metric.objective is Objective.MINIMIZE else -value
                for metric, value in zip(metrics, vector.values)
            )
        )

    if len(metrics) == 1:
        best = min(key[0] for key in normalized)
        keep = {index for index, key in enumerate(normalized) if key[0] == best}
    elif len(metrics) == 2:
        keep = _frontier_indices_2d(normalized)
    else:
        keep = _frontier_indices_skyline(normalized)
    return [pair for index, pair in enumerate(labelled) if index in keep]


def _frontier_indices_2d(keys: Sequence[Tuple[float, ...]]) -> set:
    """Sweep-based 2-metric frontier over minimize-normalized keys."""
    order = sorted(range(len(keys)), key=lambda index: keys[index])
    keep: set = set()
    best_y_before = math.inf  # best second component at strictly smaller x
    position = 0
    while position < len(order):
        # Process one group of equal first components together: points in
        # the group only dominate each other through the second component.
        group_end = position
        x = keys[order[position]][0]
        while group_end < len(order) and keys[order[group_end]][0] == x:
            group_end += 1
        group_best_y = keys[order[position]][1]  # sorted, so first is minimal
        for rank in range(position, group_end):
            index = order[rank]
            y = keys[index][1]
            if y >= best_y_before or y > group_best_y:
                continue  # dominated by a smaller-x or same-x point
            keep.add(index)
        best_y_before = min(best_y_before, group_best_y)
        position = group_end
    return keep


def _frontier_indices_skyline(keys: Sequence[Tuple[float, ...]]) -> set:
    """Skyline scan for k-metric frontiers over minimize-normalized keys.

    Vectors are visited in ascending lexicographic order; a vector can only
    be dominated by one that precedes it, and any vector dominated by an
    already-dominated vector is also dominated by that vector's dominator,
    so comparing against the kept frontier alone is sufficient.
    """
    order = sorted(range(len(keys)), key=lambda index: keys[index])
    keep: set = set()
    frontier: List[Tuple[float, ...]] = []
    for index in order:
        key = keys[index]
        dominated = False
        for kept in frontier:
            if kept != key and all(a <= b for a, b in zip(kept, key)):
                dominated = True
                break
        if not dominated:
            keep.add(index)
            frontier.append(key)
    return keep


def pareto_frontier_naive(
    vectors: Sequence[Tuple[object, PathVector]]
) -> List[Tuple[object, PathVector]]:
    """Reference all-pairs O(n²) frontier, kept for equivalence testing."""
    result: List[Tuple[object, PathVector]] = []
    for label, vector in vectors:
        if not any(other.dominates(vector) for _olabel, other in vectors if other is not vector):
            result.append((label, vector))
    return result


def is_isotone(
    metric: MetricDefinition,
    path_values: Sequence[float],
    extension_values: Sequence[float],
) -> bool:
    """Check isotonicity of a metric over concrete value samples.

    A metric is isotone when extending two paths by the same hop preserves
    their preference order.  Additive and bottleneck metrics over
    non-negative hop values are isotone; the *extended-path* problem of the
    paper (Figure 4) arises because the extension value is **not** the same
    for both paths (it depends on the ingress interface), which this helper
    makes easy to demonstrate in tests and examples.

    Args:
        metric: Metric definition under test.
        path_values: Candidate path values (at least two).
        extension_values: Hop values to extend every path with.

    Returns:
        ``True`` if, for every pair of path values and every extension
        value, the preference order is preserved after extension.
    """
    if len(path_values) < 2:
        raise AlgebraError("need at least two path values to check isotonicity")
    for extension in extension_values:
        for a in path_values:
            for b in path_values:
                if metric.prefers(a, b):
                    extended_a = metric.combine(a, extension)
                    extended_b = metric.combine(b, extension)
                    if metric.prefers(extended_b, extended_a):
                        return False
    return True


def lexicographic_compare(
    metrics: Sequence[MetricDefinition], a: Sequence[float], b: Sequence[float]
) -> int:
    """Compare two value tuples lexicographically under ``metrics``.

    Returns ``-1`` if ``a`` is preferable, ``1`` if ``b`` is preferable and
    ``0`` if they are equivalent.  Used by composite criteria such as
    shortest-widest (prefer higher bandwidth, break ties by lower latency;
    paper Figure 2c).
    """
    if not (len(metrics) == len(a) == len(b)):
        raise AlgebraError("lexicographic comparison requires equally-sized tuples")
    for metric, value_a, value_b in zip(metrics, a, b):
        if metric.prefers(value_a, value_b):
            return -1
        if metric.prefers(value_b, value_a):
            return 1
    return 0
