"""Revocation messages: the control plane's reaction to failures, as traffic.

Before this module existed, the dynamic-scenario engine modelled the
post-failure revocation flood as an instantaneous counter bump: every AS's
databases were purged at the failure timestamp and one notification per AS
was added to the overhead counters.  That made convergence metrics blind to
the quantity the measurement literature on routing events actually studies
— how withdrawal *messages* spread through the topology over time.

A :class:`RevocationMessage` is a first-class control-plane message:

* it names one or more failed elements (inter-domain links and/or
  departed ASes),
* it is originated by an AS adjacent to the failure, carries a per-origin
  **sequence number**, and is **signed** by its origin exactly like a
  beacon entry (receivers verify when signature checking is enabled),
* it propagates **hop by hop** through the same transport as PCBs, paying
  per-hop latency (link propagation + processing delay), and
* every receiving control service deduplicates it by ``(origin_as,
  sequence)`` within a configurable window, withdraws matching ingress /
  path-service state through the existing ``invalidate_link`` /
  ``invalidate_as`` machinery, records the withdrawal timestamp, and
  re-forwards the message on every other interface.

The flood therefore reaches ASes in propagation order: nearby ASes
withdraw state before distant ones, partitioned ASes never hear about the
failure at all (their stale state ages out via expiry), and a revocation
whose next hop is itself unavailable is lost in flight — all of which the
old counter model could not express.

The handler logic lives here as module-level functions operating on a
duck-typed control service (anything exposing ``as_id``, ``view``,
``transport``, ``revocations``, ``builder.signer``, ``ingress.verifier``,
``ingress.verify_signatures``, ``invalidate_link``, ``invalidate_as`` and
an optional ``on_withdrawal`` callback), so the IREC and the legacy SCION
control service share one implementation.

Since the unified message fabric (:mod:`repro.core.messages`) the
:class:`RevocationMessage` class itself lives there — a revocation is one
typed control message among others, sharing the common envelope — and
gained batching (several failed elements in one message), TTL and scope
limiting.  This module keeps the per-service state and handler logic and
re-exports the message class for backward compatibility.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.messages import RevocationMessage
from repro.exceptions import SignatureError
from repro.topology.entities import LinkID

__all__ = [
    "DEFAULT_DEDUP_WINDOW_MS",
    "RevocationMessage",
    "RevocationState",
    "bounce_if_revoked",
    "handle_revocation",
    "originate_revocation",
]

#: Default dedup window: how long a control service remembers a revocation
#: it has already processed.  One simulated hour comfortably covers any
#: realistic flood (per-hop latencies are milliseconds) while bounding the
#: memory of long simulations; a replay arriving after the window is
#: re-applied, which is harmless because withdrawal is idempotent.
DEFAULT_DEDUP_WINDOW_MS = 60.0 * 60.0 * 1000.0


@dataclass
class RevocationState:
    """Per-control-service revocation bookkeeping.

    Attributes:
        dedup_window_ms: How long a processed ``(origin, sequence)`` key is
            remembered; duplicates inside the window are dropped without
            re-applying or re-forwarding.  Entries are pruned lazily in
            first-seen order, so the memory cost is bounded by the number
            of distinct revocations inside one window.
        applied_at: First time each accepted revocation's withdrawal was
            applied locally — the per-AS withdrawal timestamps that make
            propagation-ordered convergence measurable.
        revoked_links: Negative cache: link → (applied revocation message,
            applied-at time).  Consulted when a beacon arrives over a
            recently revoked element (see :func:`bounce_if_revoked`);
            cleared by the driver when the element recovers.
        revoked_ases: Negative cache for departed ASes, same shape.
        suppress_forwarding: Byzantine knob (PR 7): a suppressing service
            still receives, verifies and applies revocations — it just
            never re-forwards them, silently swallowing floods it should
            relay.  Its own originations still go out (suppression models
            a free-rider, not a mute).
    """

    dedup_window_ms: float = DEFAULT_DEDUP_WINDOW_MS
    suppress_forwarding: bool = False
    #: (origin, sequence) → first-seen time, insertion-ordered for pruning.
    _seen: Dict[Tuple[int, int], float] = field(default_factory=dict)
    applied_at: Dict[Tuple[int, int], float] = field(default_factory=dict)
    revoked_links: Dict[LinkID, Tuple[RevocationMessage, float]] = field(
        default_factory=dict
    )
    revoked_ases: Dict[int, Tuple[RevocationMessage, float]] = field(
        default_factory=dict
    )
    _sequence: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    received: int = 0
    duplicates: int = 0
    originated: int = 0
    forwarded: int = 0
    rejected_invalid: int = 0
    #: Copies dropped because they exceeded their TTL (stale withdrawals).
    rejected_stale: int = 0
    #: Revocations re-originated by the negative cache (beacon bounces).
    reoriginated: int = 0

    def next_sequence(self) -> int:
        """Return the next origination sequence number of this service."""
        return next(self._sequence)

    def is_duplicate(self, key: Tuple[int, int], now_ms: float) -> bool:
        """Return whether ``key`` was already processed inside the window.

        O(1) on the flood fast path: the hit checks the stored first-seen
        timestamp directly; bulk pruning only runs once the seen-set grows
        past a threshold, so memory stays bounded without paying an
        iteration per message.
        """
        seen_at = self._seen.get(key)
        if seen_at is None:
            return False
        if now_ms - seen_at > self.dedup_window_ms:
            del self._seen[key]
            return False
        return True

    def mark_seen(self, key: Tuple[int, int], now_ms: float) -> None:
        """Remember ``key`` so later copies inside the window are duplicates."""
        self._seen.setdefault(key, now_ms)
        if len(self._seen) > 4096:
            self._prune(now_ms)

    def record_applied(self, key: Tuple[int, int], now_ms: float) -> None:
        """Record when the withdrawal for ``key`` was first applied locally."""
        self.applied_at.setdefault(key, now_ms)

    def applied_from(self, origin_as: int) -> List[float]:
        """Return the local withdrawal times of revocations from ``origin_as``."""
        return [
            at_ms for (origin, _seq), at_ms in self.applied_at.items() if origin == origin_as
        ]

    def cache_revoked_elements(self, message: RevocationMessage, now_ms: float) -> None:
        """Remember the message's revoked elements for beacon bouncing."""
        for link in message.failed_links:
            self.revoked_links[link] = (message, now_ms)
        for gone_as in message.failed_ases:
            self.revoked_ases[gone_as] = (message, now_ms)

    def clear_revoked_link(self, link_id: LinkID) -> None:
        """Forget a revoked link (the driver saw it recover)."""
        self.revoked_links.pop(link_id, None)

    def clear_revoked_as(self, as_id: int) -> None:
        """Forget a departed AS (the driver saw it rejoin)."""
        self.revoked_ases.pop(as_id, None)

    def revoked_recently(
        self, links, ases, now_ms: float
    ) -> Optional[RevocationMessage]:
        """Return the cached revocation covering any given element, if fresh.

        Checks the beacon's links and AS path against the negative caches;
        stale entries are expired lazily.  An entry is stale once *either*
        its cache stamp or the cached message's own ``created_at_ms`` falls
        outside the dedup window: each bounce makes the receiver re-apply
        and re-cache the message with a fresh stamp, so without the
        message-age bound a pair of caches could keep refreshing each other
        and bounce beacons over a long-recovered element forever.  Returns
        the first fresh match (the message to re-originate) or ``None``.
        """
        window = self.dedup_window_ms
        revoked_links = self.revoked_links
        if revoked_links:
            for link in links:
                cached = revoked_links.get(link)
                if cached is None:
                    continue
                if (
                    now_ms - cached[1] > window
                    or now_ms - cached[0].created_at_ms > window
                ):
                    del revoked_links[link]
                    continue
                return cached[0]
        revoked_ases = self.revoked_ases
        if revoked_ases:
            for as_id in ases:
                cached = revoked_ases.get(as_id)
                if cached is None:
                    continue
                if (
                    now_ms - cached[1] > window
                    or now_ms - cached[0].created_at_ms > window
                ):
                    del revoked_ases[as_id]
                    continue
                return cached[0]
        return None

    def _prune(self, now_ms: float) -> None:
        # _seen is insertion-ordered by first-seen time and first-seen
        # times never decrease, so expired entries form a prefix.
        horizon = now_ms - self.dedup_window_ms
        while self._seen:
            key = next(iter(self._seen))
            if self._seen[key] >= horizon:
                break
            del self._seen[key]


def _apply(service, message: RevocationMessage, now_ms: float) -> Tuple[int, int]:
    """Withdraw every revoked element's state locally; notify the listener.

    A batched message withdraws all of its elements in one pass; the
    returned counts (and the listener notification) cover the union.
    """
    ingress_removed = 0
    paths_removed = 0
    for link in message.failed_links:
        link_ingress, link_paths = service.invalidate_link(link)
        ingress_removed += link_ingress
        paths_removed += link_paths
    for gone_as in message.failed_ases:
        as_ingress, as_paths = service.invalidate_as(gone_as)
        ingress_removed += as_ingress
        paths_removed += as_paths
    removed = (ingress_removed, paths_removed)
    service.revocations.record_applied(message.key, now_ms)
    service.revocations.cache_revoked_elements(message, now_ms)
    callback = getattr(service, "on_withdrawal", None)
    if callback is not None:
        callback(message, removed, now_ms)
    return removed


def _forward(
    service, message: RevocationMessage, arrival_interface: Optional[int]
) -> int:
    """Re-send ``message`` on every eligible interface; return the count.

    A service never transmits a revocation into an element it revokes: an
    endpoint of a failed link knows that port is dead, and a neighbour of
    a departed AS knows the AS is gone.  Other unavailable links are *not*
    locally known — sends over them are attempted and dropped in flight by
    the transport, which is exactly the "revocations crossing a failed
    link are lost" semantics.  The element sets and transport entry point
    are hoisted out of the per-interface loop: forwarding runs once per
    fresh message at every AS, making this the flood's hottest loop.
    """
    sent = 0
    view = service.view
    failed_links = message.failed_link_set
    failed_ases = message.failed_as_set
    send = service.transport.send_message
    as_id = service.as_id
    for interface_id in view.interface_ids():
        if interface_id == arrival_interface:
            continue
        if view.link_of(interface_id).key in failed_links:
            continue
        if failed_ases and view.neighbor_of(interface_id)[0] in failed_ases:
            continue
        send(as_id, interface_id, message)
        sent += 1
    service.revocations.forwarded += sent
    return sent


def originate_revocation(
    service,
    now_ms: float,
    failed_link: Optional[LinkID] = None,
    failed_as: Optional[int] = None,
    failed_links: Tuple[LinkID, ...] = (),
    failed_ases: Tuple[int, ...] = (),
    ttl_ms: Optional[float] = None,
    max_hops: Optional[int] = None,
) -> RevocationMessage:
    """Originate, locally apply and flood one revocation from ``service``.

    Called by the beaconing driver on the ASes adjacent to a failure (the
    endpoints of a failed link; the neighbours of a departed AS).  The
    origin withdraws its own state immediately — it detected the failure —
    and the message starts its hop-by-hop journey to everyone else.

    Several simultaneously failed elements batch into one message via
    ``failed_links`` / ``failed_ases`` (one flood instead of one per
    element); ``ttl_ms`` and ``max_hops`` bound the message's lifetime and
    propagation radius (see :class:`RevocationMessage`).
    """
    state: RevocationState = service.revocations
    message = RevocationMessage(
        origin_as=service.as_id,
        sequence=state.next_sequence(),
        created_at_ms=now_ms,
        failed_link=failed_link,
        failed_as=failed_as,
        failed_links=tuple(failed_links),
        failed_ases=tuple(failed_ases),
        ttl_ms=ttl_ms,
        max_hops=max_hops,
    ).signed(service.builder.signer)
    state.originated += 1
    # Mark the own message seen so a copy reflected back over a cycle is a
    # duplicate, not a fresh withdrawal.
    state.mark_seen(message.key, now_ms)
    _apply(service, message, now_ms)
    _forward(service, message, arrival_interface=None)
    return message


def bounce_if_revoked(service, beacon, on_interface, now_ms: float) -> bool:
    """Negative caching: bounce a beacon crossing a recently revoked element.

    A beacon arriving over a link or AS the service withdrew inside the
    dedup window means the sender has not heard the withdrawal yet —
    silently admitting the beacon would resurrect the dead path, silently
    dropping it would leave the sender ignorant.  Instead the cached
    revocation is re-originated (re-sent) toward the sender, closing the
    information gap.  Returns ``True`` when the beacon was bounced (the
    caller must not admit it).

    Callers should guard the call with a cheap emptiness check on
    ``service.revocations.revoked_links`` / ``revoked_ases`` so the common
    no-revocations path stays allocation- and call-free.
    """
    state: RevocationState = service.revocations
    if not state.revoked_links and not state.revoked_ases:
        return False
    message = state.revoked_recently(beacon.links(), beacon.as_path(), now_ms)
    if message is None:
        return False
    state.reoriginated += 1
    if on_interface is not None:
        service.transport.send_message(service.as_id, on_interface, message)
    return True


def handle_revocation(
    service, message: RevocationMessage, on_interface: int, now_ms: float
) -> bool:
    """Process one delivered revocation at ``service``.

    Returns ``True`` when the message was fresh and applied (and therefore
    re-forwarded, unless its scope is exhausted); ``False`` for duplicates,
    stale (TTL-expired) copies and invalid signatures.
    """
    state: RevocationState = service.revocations
    state.received += 1
    # TTL and scope are enforced here and only here (inlined rather than
    # message methods: this handler runs once per delivered copy
    # network-wide and method dispatch measurably costs flood throughput).
    if message.ttl_ms is not None and now_ms - message.created_at_ms > message.ttl_ms:
        # Not marked seen: staleness is a property of this copy's arrival
        # time, and dropping it must not shadow an earlier in-TTL copy.
        state.rejected_stale += 1
        return False
    if message.max_hops is not None:
        hop_path = message.hop_path
        if not hop_path or hop_path[-1] != service.as_id:
            # The transport stamps every delivery of a scoped message with
            # the receiving AS, so a copy whose hop path does not end here
            # has been tampered with (truncated to dodge the propagation
            # bound).  Not marked seen: an authentic copy must still
            # process.
            state.rejected_invalid += 1
            return False
    key = message.key
    if state.is_duplicate(key, now_ms):
        state.duplicates += 1
        return False
    if service.ingress.verify_signatures:
        try:
            message.verify(service.ingress.verifier)
        except SignatureError:
            # Not marked seen: a later authentic copy must still process.
            state.rejected_invalid += 1
            return False
    state.mark_seen(key, now_ms)
    _apply(service, message, now_ms)
    if state.suppress_forwarding:
        return True
    if message.max_hops is None or len(message.hop_path) < message.max_hops:
        _forward(service, message, arrival_interface=on_interface)
    return True
