"""Revocation messages: the control plane's reaction to failures, as traffic.

Before this module existed, the dynamic-scenario engine modelled the
post-failure revocation flood as an instantaneous counter bump: every AS's
databases were purged at the failure timestamp and one notification per AS
was added to the overhead counters.  That made convergence metrics blind to
the quantity the measurement literature on routing events actually studies
— how withdrawal *messages* spread through the topology over time.

A :class:`RevocationMessage` is a first-class control-plane message:

* it names one failed element (an inter-domain link or a departed AS),
* it is originated by an AS adjacent to the failure, carries a per-origin
  **sequence number**, and is **signed** by its origin exactly like a
  beacon entry (receivers verify when signature checking is enabled),
* it propagates **hop by hop** through the same transport as PCBs, paying
  per-hop latency (link propagation + processing delay), and
* every receiving control service deduplicates it by ``(origin_as,
  sequence)`` within a configurable window, withdraws matching ingress /
  path-service state through the existing ``invalidate_link`` /
  ``invalidate_as`` machinery, records the withdrawal timestamp, and
  re-forwards the message on every other interface.

The flood therefore reaches ASes in propagation order: nearby ASes
withdraw state before distant ones, partitioned ASes never hear about the
failure at all (their stale state ages out via expiry), and a revocation
whose next hop is itself unavailable is lost in flight — all of which the
old counter model could not express.

The handler logic lives here as module-level functions operating on a
duck-typed control service (anything exposing ``as_id``, ``view``,
``transport``, ``revocations``, ``builder.signer``, ``ingress.verifier``,
``ingress.verify_signatures``, ``invalidate_link``, ``invalidate_as`` and
an optional ``on_withdrawal`` callback), so the IREC and the legacy SCION
control service share one implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.beacon import _memo
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import ConfigurationError, SignatureError
from repro.topology.entities import LinkID, normalize_link_id

#: Default dedup window: how long a control service remembers a revocation
#: it has already processed.  One simulated hour comfortably covers any
#: realistic flood (per-hop latencies are milliseconds) while bounding the
#: memory of long simulations; a replay arriving after the window is
#: re-applied, which is harmless because withdrawal is idempotent.
DEFAULT_DEDUP_WINDOW_MS = 60.0 * 60.0 * 1000.0


def _format_link(link_id: LinkID) -> str:
    (as_a, if_a), (as_b, if_b) = link_id
    return f"{as_a}.{if_a}-{as_b}.{if_b}"


@dataclass(frozen=True)
class RevocationMessage:
    """One signed, sequence-numbered revocation of a failed network element.

    Attributes:
        origin_as: AS that detected the failure and originated the message
            (an endpoint of the failed link, or a neighbour of the departed
            AS).
        sequence: Per-origin monotonic sequence number; ``(origin_as,
            sequence)`` is the message's network-wide dedup identity.
        created_at_ms: Simulated origination time.
        failed_link: The revoked inter-domain link (normalised), or
            ``None`` for an AS revocation.
        failed_as: The departed AS, or ``None`` for a link revocation.
        signature: Signature of ``origin_as`` over the canonical encoding.
    """

    origin_as: int
    sequence: int
    created_at_ms: float
    failed_link: Optional[LinkID] = None
    failed_as: Optional[int] = None
    signature: bytes = b""

    def __post_init__(self) -> None:
        if (self.failed_link is None) == (self.failed_as is None):
            raise ConfigurationError(
                "a revocation names exactly one failed element (link or AS)"
            )
        if self.failed_link is not None:
            object.__setattr__(self, "failed_link", normalize_link_id(*self.failed_link))
        if self.sequence < 1:
            raise ConfigurationError(f"sequence must be positive, got {self.sequence}")

    @property
    def key(self) -> Tuple[int, int]:
        """Return the network-wide dedup identity ``(origin_as, sequence)``."""
        return (self.origin_as, self.sequence)

    def encode_unsigned(self) -> str:
        """Return the canonical encoding without the signature (memoized)."""

        def compute() -> str:
            if self.failed_link is not None:
                element = f"link={_format_link(self.failed_link)}"
            else:
                element = f"as={self.failed_as}"
            return (
                f"revocation(origin={self.origin_as},seq={self.sequence},"
                f"created={self.created_at_ms:.3f},{element})"
            )

        return _memo(self, "_encoded_unsigned", compute)

    def signed(self, signer: Signer) -> "RevocationMessage":
        """Return a copy carrying ``signer``'s signature over the encoding."""
        signature = signer.sign(self.encode_unsigned().encode("utf-8"))
        return replace(self, signature=signature)

    def verify(self, verifier: Verifier) -> None:
        """Raise :class:`SignatureError` unless the origin's signature is valid."""
        verifier.verify(
            self.origin_as, self.encode_unsigned().encode("utf-8"), self.signature
        )

    def trace_label(self) -> str:
        """Return the stable one-line trace representation of the message."""
        if self.failed_link is not None:
            element = f"link {_format_link(self.failed_link)}"
        else:
            element = f"as {self.failed_as}"
        return f"revoke {element} origin={self.origin_as} seq={self.sequence}"


@dataclass
class RevocationState:
    """Per-control-service revocation bookkeeping.

    Attributes:
        dedup_window_ms: How long a processed ``(origin, sequence)`` key is
            remembered; duplicates inside the window are dropped without
            re-applying or re-forwarding.  Entries are pruned lazily in
            first-seen order, so the memory cost is bounded by the number
            of distinct revocations inside one window.
        applied_at: First time each accepted revocation's withdrawal was
            applied locally — the per-AS withdrawal timestamps that make
            propagation-ordered convergence measurable.
    """

    dedup_window_ms: float = DEFAULT_DEDUP_WINDOW_MS
    #: (origin, sequence) → first-seen time, insertion-ordered for pruning.
    _seen: Dict[Tuple[int, int], float] = field(default_factory=dict)
    applied_at: Dict[Tuple[int, int], float] = field(default_factory=dict)
    _sequence: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    received: int = 0
    duplicates: int = 0
    originated: int = 0
    forwarded: int = 0
    rejected_invalid: int = 0

    def next_sequence(self) -> int:
        """Return the next origination sequence number of this service."""
        return next(self._sequence)

    def is_duplicate(self, key: Tuple[int, int], now_ms: float) -> bool:
        """Return whether ``key`` was already processed inside the window.

        O(1) on the flood fast path: the hit checks the stored first-seen
        timestamp directly; bulk pruning only runs once the seen-set grows
        past a threshold, so memory stays bounded without paying an
        iteration per message.
        """
        seen_at = self._seen.get(key)
        if seen_at is None:
            return False
        if now_ms - seen_at > self.dedup_window_ms:
            del self._seen[key]
            return False
        return True

    def mark_seen(self, key: Tuple[int, int], now_ms: float) -> None:
        """Remember ``key`` so later copies inside the window are duplicates."""
        self._seen.setdefault(key, now_ms)
        if len(self._seen) > 4096:
            self._prune(now_ms)

    def record_applied(self, key: Tuple[int, int], now_ms: float) -> None:
        """Record when the withdrawal for ``key`` was first applied locally."""
        self.applied_at.setdefault(key, now_ms)

    def applied_from(self, origin_as: int) -> List[float]:
        """Return the local withdrawal times of revocations from ``origin_as``."""
        return [
            at_ms for (origin, _seq), at_ms in self.applied_at.items() if origin == origin_as
        ]

    def _prune(self, now_ms: float) -> None:
        # _seen is insertion-ordered by first-seen time and first-seen
        # times never decrease, so expired entries form a prefix.
        horizon = now_ms - self.dedup_window_ms
        while self._seen:
            key = next(iter(self._seen))
            if self._seen[key] >= horizon:
                break
            del self._seen[key]


def _interface_revoked(view, interface_id: int, message: RevocationMessage) -> bool:
    """Return whether a local interface leads into the revoked element.

    A service never transmits a revocation into the element it revokes: an
    endpoint of the failed link knows that port is dead, and a neighbour of
    a departed AS knows the AS is gone.  Other unavailable links are *not*
    locally known — sends over them are attempted and dropped in flight by
    the transport, which is exactly the "revocations crossing a failed link
    are lost" semantics.
    """
    link = view.link_of(interface_id)
    if message.failed_link is not None:
        return link.key == message.failed_link
    return view.neighbor_of(interface_id)[0] == message.failed_as


def _apply(service, message: RevocationMessage, now_ms: float) -> Tuple[int, int]:
    """Withdraw the revoked element's state locally; notify the listener."""
    if message.failed_link is not None:
        removed = service.invalidate_link(message.failed_link)
    else:
        removed = service.invalidate_as(message.failed_as)
    service.revocations.record_applied(message.key, now_ms)
    callback = getattr(service, "on_withdrawal", None)
    if callback is not None:
        callback(message, removed, now_ms)
    return removed


def _forward(
    service, message: RevocationMessage, arrival_interface: Optional[int]
) -> int:
    """Re-send ``message`` on every eligible interface; return the count."""
    sent = 0
    for interface_id in service.view.interface_ids():
        if interface_id == arrival_interface:
            continue
        if _interface_revoked(service.view, interface_id, message):
            continue
        service.transport.send_revocation(service.as_id, interface_id, message)
        sent += 1
    service.revocations.forwarded += sent
    return sent


def originate_revocation(
    service,
    now_ms: float,
    failed_link: Optional[LinkID] = None,
    failed_as: Optional[int] = None,
) -> RevocationMessage:
    """Originate, locally apply and flood one revocation from ``service``.

    Called by the beaconing driver on the ASes adjacent to a failure (the
    endpoints of a failed link; the neighbours of a departed AS).  The
    origin withdraws its own state immediately — it detected the failure —
    and the message starts its hop-by-hop journey to everyone else.
    """
    state: RevocationState = service.revocations
    message = RevocationMessage(
        origin_as=service.as_id,
        sequence=state.next_sequence(),
        created_at_ms=now_ms,
        failed_link=failed_link,
        failed_as=failed_as,
    ).signed(service.builder.signer)
    state.originated += 1
    # Mark the own message seen so a copy reflected back over a cycle is a
    # duplicate, not a fresh withdrawal.
    state.mark_seen(message.key, now_ms)
    _apply(service, message, now_ms)
    _forward(service, message, arrival_interface=None)
    return message


def handle_revocation(
    service, message: RevocationMessage, on_interface: int, now_ms: float
) -> bool:
    """Process one delivered revocation at ``service``.

    Returns ``True`` when the message was fresh and applied (and therefore
    re-forwarded); ``False`` for duplicates and invalid signatures.
    """
    state: RevocationState = service.revocations
    state.received += 1
    if state.is_duplicate(message.key, now_ms):
        state.duplicates += 1
        return False
    if service.ingress.verify_signatures:
        try:
            message.verify(service.ingress.verifier)
        except SignatureError:
            # Not marked seen: a later authentic copy must still process.
            state.rejected_invalid += 1
            return False
    state.mark_seen(message.key, now_ms)
    _apply(service, message, now_ms)
    _forward(service, message, arrival_interface=on_interface)
    return True
