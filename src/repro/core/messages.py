"""Typed control-plane messages: the vocabulary of the unified message fabric.

The control plane of the paper is one conversation among ASes — beacons,
path registrations and revocations all travel over the same inter-AS links
— yet the reproduction grew three parallel transport code paths, each with
its own latency accounting, loss handling and metrics hooks.  This module
is the common vocabulary that collapses them: every inter-AS control-plane
interaction is a :class:`ControlMessage` carrying a shared **envelope**
(origin AS, per-origin sequence number, origination time, hop path and a
wire-size estimate), and one generic transport path
(:meth:`repro.simulation.network.SimulatedTransport.send_message`) routes
all of them with uniform per-hop latency, loss and metrics treatment.

Message types
-------------

* :class:`PCBMessage` — one path-construction beacon in flight over one
  link (the fabric's framing of :class:`repro.core.beacon.Beacon`).
* :class:`RevocationMessage` — the signed withdrawal of one **or several**
  failed elements (inter-domain links and/or departed ASes), migrated here
  from :mod:`repro.core.revocation`.  Riding the shared envelope it gained
  the ROADMAP's next steps: *batching* (several failed elements in one
  message), *TTL* (``ttl_ms``: receivers drop copies older than the TTL
  instead of applying stale withdrawals) and *scope limiting*
  (``max_hops``: the flood stops re-forwarding once a copy has traversed
  that many hops — the envelope's hop path is the witness).
* :class:`PathRegistrationMessage` — a terminated path segment offered to
  a neighbouring AS's path service, turning path registration from a
  direct method call into first-class control-plane traffic.  With
  ``register_at_origin`` set, the message travels hop-by-hop back along
  the segment and is registered as a *down-segment* at the origin (core)
  AS — driven by message arrival, not by direct call.
* :class:`PullReturnMessage` — a pull-requested beacon travelling back to
  the AS that asked for it.  The typed replacement for the historical
  ``transport.return_beacon_to_origin`` side channel: the transports now
  frame the returned beacon as this message and deliver it through the
  same ``on_message`` dispatch as every other control message.
* :class:`PathQueryMessage` / :class:`PathQueryResponse` — a typed path
  lookup against a remote AS's query frontend and its materialized
  answer, correlated by the requester's ``(origin_as, sequence)``.

Hop tracking
------------

The envelope's ``hop_path`` records the ASes a copy traversed.  Stamping a
hop copies the (frozen) message, so the fabric only does it when a message
*needs* it (:meth:`ControlMessage.needs_hop_tracking` — e.g. a
scope-limited revocation).  The unscoped revocation flood therefore still
forwards the one original object per branch, keeping the per-message flood
cost O(1) — see the ROADMAP's flood fast-path invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, NamedTuple, Optional, Tuple

from repro.core.beacon import Beacon, _memo
from repro.core.databases import RegisteredPath
from repro.core.query import PathQuery
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import ConfigurationError
from repro.topology.entities import LinkID, normalize_link_id


def _format_link(link_id: LinkID) -> str:
    (as_a, if_a), (as_b, if_b) = link_id
    return f"{as_a}.{if_a}-{as_b}.{if_b}"


class MessageEnvelope(NamedTuple):
    """The shared envelope every control-plane message exposes.

    A read-only view assembled on demand from the message's own fields —
    the envelope is the *contract* (what every message must answer), not a
    second copy of the data.
    """

    origin_as: int
    sequence: int
    created_at_ms: float
    hop_path: Tuple[int, ...]
    size_bytes: int


@dataclass(frozen=True)
class ControlMessage:
    """Base of every typed control-plane message.

    Attributes:
        origin_as: AS that originated the message.
        sequence: Per-origin sequence number; ``(origin_as, sequence)`` is
            the message's network-wide identity for types that deduplicate.
        created_at_ms: Simulated origination time.
        hop_path: ASes a copy traversed so far, in order.  Only populated
            for messages whose semantics need it (see
            :meth:`needs_hop_tracking`); the fabric stamps it on delivery.
    """

    origin_as: int
    sequence: int
    created_at_ms: float
    hop_path: Tuple[int, ...] = ()
    #: ECN-style congestion signal: set by a bounded inbox in ``mark``
    #: overflow mode instead of tail-dropping the message.  Not part of
    #: any message's wire encoding or identity.
    congestion_marked: bool = False

    #: Stable short name used by the transport's per-kind metrics routing.
    kind: ClassVar[str] = "control"

    @property
    def key(self) -> Tuple[int, int]:
        """Return the network-wide identity ``(origin_as, sequence)``."""
        return (self.origin_as, self.sequence)

    @property
    def hop_count(self) -> int:
        """Return how many hops this copy has traversed."""
        return len(self.hop_path)

    @property
    def envelope(self) -> MessageEnvelope:
        """Return the shared envelope view of this message."""
        return MessageEnvelope(
            origin_as=self.origin_as,
            sequence=self.sequence,
            created_at_ms=self.created_at_ms,
            hop_path=self.hop_path,
            size_bytes=self.size_bytes(),
        )

    def with_hop(self, as_id: int) -> "ControlMessage":
        """Return a copy whose hop path records arrival at ``as_id``."""
        return replace(self, hop_path=(*self.hop_path, int(as_id)))

    def with_congestion_mark(self) -> "ControlMessage":
        """Return a copy flagged as congestion-marked (ECN-style).

        Only called by a bounded inbox in ``mark`` overflow mode, so the
        copy cost is confined to actual overflow events.
        """
        return replace(self, congestion_marked=True)

    def needs_hop_tracking(self) -> bool:
        """Return whether the fabric must stamp hops onto this message.

        Stamping copies the frozen message once per delivered hop; the
        default is ``False`` so high-volume messages (PCBs, unscoped
        revocation floods) stay copy-free on the fast path.
        """
        return False

    def size_bytes(self) -> int:
        """Return the estimated wire size of the message."""
        raise NotImplementedError

    def trace_label(self) -> str:
        """Return the stable one-line trace representation of the message."""
        raise NotImplementedError


@dataclass(frozen=True)
class PCBMessage(ControlMessage):
    """One path-construction beacon in flight over one inter-AS link.

    The fabric's framing of a :class:`~repro.core.beacon.Beacon`: the
    beacon itself is immutable and shared, the message adds the envelope
    (the beacon's own AS path doubles as its historical hop record, so
    PCBs never need fabric-side hop stamping).
    """

    beacon: Optional[Beacon] = None

    kind: ClassVar[str] = "pcb"

    def __post_init__(self) -> None:
        if self.beacon is None:
            raise ConfigurationError("a PCB message carries exactly one beacon")

    def size_bytes(self) -> int:
        """Return the size of the beacon's canonical encoding (memoized)."""
        return _memo(self, "_size_bytes", lambda: len(self.beacon.encode()))

    def trace_label(self) -> str:
        return (
            f"pcb digest={self.beacon.digest()[:12]} origin={self.origin_as} "
            f"seq={self.sequence}"
        )


@dataclass(frozen=True)
class RevocationMessage(ControlMessage):
    """One signed, sequence-numbered revocation of failed network elements.

    Originated by an AS adjacent to a failure and flooded hop-by-hop; every
    receiving control service deduplicates it by ``(origin_as, sequence)``,
    withdraws matching state and re-forwards it (see
    :mod:`repro.core.revocation` for the handler logic).

    A message names **at least one** failed element.  The classic
    single-element form uses ``failed_link`` *or* ``failed_as`` (exactly
    one of the two); several simultaneously failed elements batch into one
    message via ``failed_links`` / ``failed_ases``, which always hold the
    full normalised element sets (the singular fields are folded in).

    Attributes:
        failed_link: The single revoked inter-domain link (normalised), or
            ``None``.  Kept as the single-element construction convenience;
            iterate :attr:`failed_links` to see every revoked link.
        failed_as: The single departed AS, or ``None``.
        failed_links: Every revoked link named by this message.
        failed_ases: Every departed AS named by this message.
        ttl_ms: Optional time-to-live: a copy delivered more than
            ``ttl_ms`` after ``created_at_ms`` is stale and dropped
            (neither applied nor re-forwarded).
        max_hops: Optional scope limit: a copy that has already traversed
            ``max_hops`` hops is applied locally but not re-forwarded.
            Setting it enables fabric hop stamping.
        signature: Signature of ``origin_as`` over the canonical encoding.
    """

    failed_link: Optional[LinkID] = None
    failed_as: Optional[int] = None
    failed_links: Tuple[LinkID, ...] = ()
    failed_ases: Tuple[int, ...] = ()
    ttl_ms: Optional[float] = None
    max_hops: Optional[int] = None
    signature: bytes = b""

    kind: ClassVar[str] = "revocation"

    def __post_init__(self) -> None:
        if self.failed_link is not None and self.failed_as is not None:
            raise ConfigurationError(
                "a revocation names exactly one failed element (link or AS) "
                "via the singular fields; batch several via failed_links/failed_ases"
            )
        links = []
        if self.failed_link is not None:
            object.__setattr__(self, "failed_link", normalize_link_id(*self.failed_link))
            links.append(self.failed_link)
        for link in self.failed_links:
            normalised = normalize_link_id(*link)
            if normalised not in links:
                links.append(normalised)
        ases = []
        if self.failed_as is not None:
            ases.append(int(self.failed_as))
        for as_id in self.failed_ases:
            if int(as_id) not in ases:
                ases.append(int(as_id))
        if not links and not ases:
            raise ConfigurationError(
                "a revocation names at least one failed element (link or AS)"
            )
        object.__setattr__(self, "failed_links", tuple(links))
        object.__setattr__(self, "failed_ases", tuple(ases))
        if self.sequence < 1:
            raise ConfigurationError(f"sequence must be positive, got {self.sequence}")
        if self.ttl_ms is not None and self.ttl_ms <= 0:
            raise ConfigurationError(f"ttl_ms must be positive, got {self.ttl_ms}")
        if self.max_hops is not None and self.max_hops < 1:
            raise ConfigurationError(f"max_hops must be >= 1, got {self.max_hops}")

    def needs_hop_tracking(self) -> bool:
        """Scope-limited revocations need the hop path as their witness."""
        return self.max_hops is not None

    @property
    def failed_link_set(self) -> frozenset:
        """Return the revoked links as a frozenset (memoized)."""
        return _memo(self, "_failed_link_set", lambda: frozenset(self.failed_links))

    @property
    def failed_as_set(self) -> frozenset:
        """Return the departed ASes as a frozenset (memoized)."""
        return _memo(self, "_failed_as_set", lambda: frozenset(self.failed_ases))

    def encode_unsigned(self) -> str:
        """Return the canonical encoding without the signature (memoized).

        Single-element messages without TTL/scope keep the exact pre-fabric
        encoding, so their signatures are byte-identical to PR 4's.
        """

        def compute() -> str:
            parts = [f"link={_format_link(link)}" for link in self.failed_links]
            parts.extend(f"as={as_id}" for as_id in self.failed_ases)
            element = ";".join(parts)
            extras = ""
            if self.ttl_ms is not None:
                extras += f",ttl={self.ttl_ms:.3f}"
            if self.max_hops is not None:
                extras += f",scope={self.max_hops}"
            return (
                f"revocation(origin={self.origin_as},seq={self.sequence},"
                f"created={self.created_at_ms:.3f},{element}{extras})"
            )

        return _memo(self, "_encoded_unsigned", compute)

    def size_bytes(self) -> int:
        """Return the size of the canonical encoding plus the signature."""
        return len(self.encode_unsigned()) + len(self.signature)

    def signed(self, signer: Signer) -> "RevocationMessage":
        """Return a copy carrying ``signer``'s signature over the encoding."""
        signature = signer.sign(self.encode_unsigned().encode("utf-8"))
        return replace(self, signature=signature)

    def verify(self, verifier: Verifier) -> None:
        """Raise :class:`SignatureError` unless the origin's signature is valid."""
        verifier.verify(
            self.origin_as, self.encode_unsigned().encode("utf-8"), self.signature
        )

    def trace_label(self) -> str:
        """Return the stable one-line trace representation of the message.

        Single-element messages keep the exact pre-fabric label (pinned by
        the golden traces); batched messages join their elements with
        ``+``.
        """
        parts = [f"link {_format_link(link)}" for link in self.failed_links]
        parts.extend(f"as {as_id}" for as_id in self.failed_ases)
        element = "+".join(parts)
        return f"revoke {element} origin={self.origin_as} seq={self.sequence}"


@dataclass(frozen=True)
class PathRegistrationMessage(ControlMessage):
    """A terminated path segment offered to a neighbouring AS's path service.

    Turns path registration — previously a direct method call on the local
    path service — into first-class control-plane traffic: the message pays
    per-hop latency, can be lost on a failed link, and is counted by the
    metrics collector like every other control message.  The receiving
    service registers the carried path with the *arrival* time as its
    registration timestamp (the freshness contract the convergence
    collector relies on).
    """

    path: Optional[RegisteredPath] = None
    #: When set, the message is not for the adjacent AS but for the
    #: segment's *origin*: transit ASes on the segment forward it one hop
    #: toward the origin (their own reverse interface), and only the
    #: origin registers it — as a down-segment.  Default off, so existing
    #: neighbour registration is untouched.
    register_at_origin: bool = False

    kind: ClassVar[str] = "path_registration"

    def __post_init__(self) -> None:
        if self.path is None:
            raise ConfigurationError(
                "a path-registration message carries exactly one registered path"
            )

    def size_bytes(self) -> int:
        """Return the size of the carried segment's canonical encoding."""
        return _memo(self, "_size_bytes", lambda: len(self.path.segment.encode()))

    def trace_label(self) -> str:
        return (
            f"register origin={self.path.segment.origin_as} "
            f"from={self.origin_as} seq={self.sequence}"
        )


@dataclass(frozen=True)
class PullReturnMessage(ControlMessage):
    """A pull-requested beacon travelling back to the requesting AS.

    The typed framing of what used to be the ``return_beacon_to_origin``
    transport side channel.  Like a PCB, the carried beacon's own AS path
    is the historical hop record, so no fabric-side hop stamping is
    needed; the message travels the beacon's full reverse path in one
    simulated step (latency = the beacon's end-to-end propagation delay),
    exactly as the side channel did.
    """

    beacon: Optional[Beacon] = None

    kind: ClassVar[str] = "pull_return"

    def __post_init__(self) -> None:
        if self.beacon is None:
            raise ConfigurationError("a pull-return message carries exactly one beacon")

    def size_bytes(self) -> int:
        """Return the size of the beacon's canonical encoding (memoized)."""
        return _memo(self, "_size_bytes", lambda: len(self.beacon.encode()))

    def trace_label(self) -> str:
        return (
            f"pull-return digest={self.beacon.digest()[:12]} "
            f"origin={self.origin_as} seq={self.sequence}"
        )


@dataclass(frozen=True)
class PathQueryMessage(ControlMessage):
    """A typed path lookup sent to a neighbouring AS's query frontend.

    The envelope's ``(origin_as, sequence)`` identifies the request; the
    responder echoes it in :class:`PathQueryResponse` so the requester can
    correlate answers.
    """

    query: Optional[PathQuery] = None

    kind: ClassVar[str] = "path_query"

    def __post_init__(self) -> None:
        if self.query is None:
            raise ConfigurationError("a path-query message carries exactly one query")

    def size_bytes(self) -> int:
        """Return the (small, fixed-ish) wire size: key fields + policy."""
        return _memo(self, "_size_bytes", lambda: 24 + len(self.query.policy_key()))

    def trace_label(self) -> str:
        return (
            f"query origin={self.query.origin_as} from={self.origin_as} "
            f"seq={self.sequence}"
        )


@dataclass(frozen=True)
class PathQueryResponse(ControlMessage):
    """The materialized answer to one :class:`PathQueryMessage`.

    Attributes:
        query: The query being answered.
        paths: The served paths, in the frontend's (registration) order.
        cache_hit: Whether the frontend served this from its LRU cache —
            observability only, never part of identity or wire size.
        request_origin: ``origin_as`` of the request being answered.
        request_sequence: ``sequence`` of the request being answered.
    """

    query: Optional[PathQuery] = None
    paths: Tuple[RegisteredPath, ...] = ()
    cache_hit: bool = False
    request_origin: int = 0
    request_sequence: int = 0

    kind: ClassVar[str] = "path_query_response"

    def __post_init__(self) -> None:
        if self.query is None:
            raise ConfigurationError("a path-query response names the query it answers")

    def size_bytes(self) -> int:
        """Return the summed segment encodings plus the echoed query."""
        return _memo(
            self,
            "_size_bytes",
            lambda: 24
            + len(self.query.policy_key())
            + sum(len(path.segment.encode()) for path in self.paths),
        )

    def trace_label(self) -> str:
        return (
            f"query-response origin={self.query.origin_as} paths={len(self.paths)} "
            f"from={self.origin_as} seq={self.sequence}"
        )
