"""IREC core: the paper's primary contribution.

This package contains everything §IV and §V of the paper describe:

* the PCB (path-construction beacon) data model with IREC's extensions
  (:mod:`repro.core.beacon`, :mod:`repro.core.staticinfo`,
  :mod:`repro.core.extensions`),
* the routing algebra and criteria framework used to express and compose
  optimization criteria (:mod:`repro.core.criteria`,
  :mod:`repro.core.algebra`),
* the intra-AS architecture — ingress gateway, routing algorithm containers
  (RACs), egress gateway, their databases, and the combined control service
  (:mod:`repro.core.ingress`, :mod:`repro.core.rac`,
  :mod:`repro.core.egress`, :mod:`repro.core.databases`,
  :mod:`repro.core.control_service`),
* the routing mechanisms built on top: pull-based routing
  (:mod:`repro.core.pull`), on-demand routing with sandboxed algorithm
  execution (:mod:`repro.core.ondemand`, :mod:`repro.core.sandbox`,
  :mod:`repro.core.algorithm_registry`), interface groups
  (:mod:`repro.core.interface_groups`), and extended-path optimization
  (:mod:`repro.core.extended_paths`), and
* the tiered standardization model (:mod:`repro.core.standardization`).
"""

from repro.core.beacon import ASEntry, Beacon, BeaconBuilder
from repro.core.criteria import Criterion, CriteriaSet, Objective, StandardMetrics
from repro.core.extensions import (
    AlgorithmExtension,
    InterfaceGroupExtension,
    TargetExtension,
)
from repro.core.messages import (
    ControlMessage,
    MessageEnvelope,
    PCBMessage,
    PathQueryMessage,
    PathQueryResponse,
    PathRegistrationMessage,
    PullReturnMessage,
)
from repro.core.query import PathQuery, PathQueryFrontend
from repro.core.revocation import RevocationMessage, RevocationState
from repro.core.staticinfo import StaticInfo

__all__ = [
    "ASEntry",
    "AlgorithmExtension",
    "Beacon",
    "BeaconBuilder",
    "ControlMessage",
    "CriteriaSet",
    "Criterion",
    "InterfaceGroupExtension",
    "MessageEnvelope",
    "Objective",
    "PCBMessage",
    "PathQuery",
    "PathQueryFrontend",
    "PathQueryMessage",
    "PathQueryResponse",
    "PathRegistrationMessage",
    "PullReturnMessage",
    "RevocationMessage",
    "RevocationState",
    "StandardMetrics",
    "StaticInfo",
    "TargetExtension",
]
