"""Shared process-pool lifecycle.

Both offload users in the repo — the batched crypto pool
(:mod:`repro.crypto.pool`) and the Figure-7 throughput microbenchmark
(:func:`repro.analysis.microbench.measure_throughput`) — need the same
thing: a ``ProcessPoolExecutor`` that exists for the lifetime of the
caller, not one spun up (fork + import + warmup) per call.  A
:class:`WorkerPool` owns exactly one executor, creates it lazily on
first use, grows it when a caller needs more workers than it currently
has, and shuts it down once.  The module-level :func:`shared_pool`
singleton is the default pool everyone shares.

Worker processes are started with the ``fork`` method where available
(Linux): forked children inherit the parent's imported modules, so the
first submit does not pay a fresh interpreter + import of the repo.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.exceptions import ConfigurationError


def _default_context():
    """Return the cheapest available multiprocessing context."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerPool:
    """One lazily created, grow-on-demand :class:`ProcessPoolExecutor`.

    Attributes:
        max_workers: Hard cap on the executor size (``None``: uncapped,
            the executor grows to whatever callers request).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be None or >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._size = 0
        #: Lifecycle counters (observability): how often the executor was
        #: (re)created versus simply reused.
        self.created = 0
        self.grown = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _clamp(self, workers: int) -> int:
        if self.max_workers is not None:
            workers = min(workers, self.max_workers)
        return max(1, workers)

    def executor(self, min_workers: int = 1) -> ProcessPoolExecutor:
        """Return the shared executor, sized for at least ``min_workers``.

        Creates the executor on first call; if a later caller needs more
        workers than the current executor has, it is torn down and
        recreated at the larger size (existing submitted work completes
        first — ``shutdown(wait=True)``).  Repeat callers with the same
        or smaller requirement reuse the executor as-is, which is the
        whole point: one pool lifecycle, no per-call spin-up.
        """
        if min_workers < 1:
            raise ConfigurationError(f"min_workers must be >= 1, got {min_workers}")
        wanted = self._clamp(min_workers)
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=wanted, mp_context=_default_context()
            )
            self._size = wanted
            self.created += 1
        elif wanted > self._size:
            self._executor.shutdown(wait=True)
            self._executor = ProcessPoolExecutor(
                max_workers=wanted, mp_context=_default_context()
            )
            self._size = wanted
            self.grown += 1
        return self._executor

    @property
    def workers(self) -> int:
        """Return the current executor size (0 before first use)."""
        return self._size

    def shutdown(self) -> None:
        """Tear the executor down (a later call recreates it lazily)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._size = 0

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    # submission helpers
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args, min_workers: int = 1) -> Future:
        """Submit one call to the pool."""
        return self.executor(min_workers=min_workers).submit(fn, *args)

    def run_batches(
        self, fn: Callable, batches: Sequence[tuple], min_workers: Optional[int] = None
    ) -> List:
        """Run ``fn(*batch)`` for every batch concurrently; results in order.

        ``min_workers`` defaults to one worker per batch (capped by
        :attr:`max_workers`), matching the historical one-process-per-RAC
        benchmark semantics.
        """
        if not batches:
            return []
        wanted = min_workers if min_workers is not None else len(batches)
        executor = self.executor(min_workers=wanted)
        futures = [executor.submit(fn, *batch) for batch in batches]
        return [future.result() for future in futures]


#: Default worker count heuristic for callers that just want "the machine".
def default_worker_count() -> int:
    """Return a sensible default worker count for this machine."""
    return max(1, os.cpu_count() or 1)


_shared: Optional[WorkerPool] = None


def shared_pool() -> WorkerPool:
    """Return the process-wide shared :class:`WorkerPool` (created lazily)."""
    global _shared
    if _shared is None:
        _shared = WorkerPool()
    return _shared


def shutdown_shared_pool() -> None:
    """Shut the shared pool down (tests and benchmark teardown)."""
    global _shared
    if _shared is not None:
        _shared.shutdown()
        _shared = None
