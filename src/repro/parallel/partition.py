"""Seeded, degree-balanced topology partitioning for sharded simulation.

The partitioner assigns every AS to exactly one shard.  Per-AS inboxes
are the only inter-AS seam in the message fabric, so a shard can run the
control services of its ASes in isolation as long as sends towards other
shards are exported and replayed there (see
:mod:`repro.parallel.coordinator`).

Balance is by *degree*, not AS count: an AS's simulation cost is
dominated by the messages crossing its interfaces, so the greedy
assignment places the heaviest super-nodes first, each onto the
currently lightest shard.  The seed only breaks ties between
equal-weight super-nodes — any seed yields a valid partition, and the
golden-digest tests exercise several to prove the simulation outcome is
partition-independent.

Affinity groups force sets of ASes onto one shard.  The coordinator
derives one group per *degradable* link (a flap with loss or a gray
failure): silent loss is rolled from the transport's seeded RNG on the
receiver's shard, so co-locating both endpoints of every lossy link
keeps all rolls of one run in a single stream, in delivery order —
matching the single-process sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.simulation.events import GrayFailure, LinkFlap
from repro.topology.graph import Topology


@dataclass(frozen=True)
class Partition:
    """An assignment of every AS to one shard.

    Attributes:
        shards: Per-shard sorted AS-id tuples; index is the shard id.
        owner: AS id → owning shard index (the inverse mapping).
        seed: The tie-break seed the partitioner used.
    """

    shards: Tuple[Tuple[int, ...], ...]
    owner: Dict[int, int]
    seed: int

    @property
    def shard_count(self) -> int:
        """Return how many shards the partition has."""
        return len(self.shards)

    def cross_links(self, topology: Topology) -> List:
        """Return the links whose endpoints live on different shards."""
        return [
            link
            for link in topology.links.values()
            if self.owner[link.interface_a[0]] != self.owner[link.interface_b[0]]
        ]

    def lookahead_ms(self, topology: Topology, processing_delay_ms: float) -> float:
        """Return the conservative lookahead of this partition.

        Any message crossing a shard boundary is delayed by at least the
        smallest cross-shard ``link latency + processing delay``, so a
        shard may safely simulate that far past the global next event
        without missing an import.  ``inf`` when nothing crosses (each
        shard is a closed component).
        """
        latencies = [link.latency_ms for link in self.cross_links(topology)]
        if not latencies:
            return float("inf")
        return min(latencies) + processing_delay_ms


def degradable_link_groups(timeline: Iterable) -> List[Tuple[int, int]]:
    """Return endpoint-AS affinity pairs for every lossy timeline link.

    One pair per link that ever carries silent loss — a
    :class:`~repro.simulation.events.LinkFlap` with a non-zero loss rate
    or a :class:`~repro.simulation.events.GrayFailure` — so the
    partitioner keeps each lossy link's RNG rolls on a single shard.
    """
    groups: List[Tuple[int, int]] = []
    seen = set()
    for timed in timeline:
        event = timed.event
        if isinstance(event, LinkFlap) and not (event.loss_ab or event.loss_ba):
            continue
        if not isinstance(event, (LinkFlap, GrayFailure)):
            continue
        (as_a, _if_a), (as_b, _if_b) = event.link_id
        pair = (min(as_a, as_b), max(as_a, as_b))
        if pair not in seen:
            seen.add(pair)
            groups.append(pair)
    return groups


def partition_topology(
    topology: Topology,
    shards: int,
    seed: int = 0,
    affinity_groups: Sequence[Iterable[int]] = (),
) -> Partition:
    """Partition ``topology`` into ``shards`` degree-balanced shards.

    Affinity groups are merged into super-nodes first (transitively —
    overlapping groups coalesce), then super-nodes are placed heaviest
    first onto the lightest shard.  With more shards than super-nodes the
    surplus shards stay empty rather than failing, so a caller asking for
    4 workers on a 3-AS topology still gets a working (if lopsided)
    partition.

    Raises:
        ConfigurationError: On a non-positive shard count, an empty
            topology, or an affinity member outside the topology.
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shards}")
    as_ids = sorted(info.as_id for info in topology)
    if not as_ids:
        raise ConfigurationError("cannot partition an empty topology")

    parent: Dict[int, int] = {as_id: as_id for as_id in as_ids}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for group in affinity_groups:
        members = list(group)
        for member in members:
            if member not in parent:
                raise ConfigurationError(
                    f"affinity group member {member} is not in the topology"
                )
        for member in members[1:]:
            root_a, root_b = find(members[0]), find(member)
            if root_a != root_b:
                parent[max(root_a, root_b)] = min(root_a, root_b)

    super_nodes: Dict[int, List[int]] = {}
    for as_id in as_ids:
        super_nodes.setdefault(find(as_id), []).append(as_id)

    rng = random.Random(seed)
    weighted = [
        (sum(topology.degree_of(member) for member in members), root, members)
        for root, members in sorted(super_nodes.items())
    ]
    # Heaviest first; the seed only permutes nodes of equal weight.
    weighted.sort(key=lambda item: (-item[0], rng.random()))

    loads = [0] * shards
    assignment: List[List[int]] = [[] for _ in range(shards)]
    owner: Dict[int, int] = {}
    for weight, _root, members in weighted:
        target = min(range(shards), key=lambda index: (loads[index], index))
        loads[target] += max(weight, 1)
        assignment[target].extend(members)
        for member in members:
            owner[member] = target
    return Partition(
        shards=tuple(tuple(sorted(members)) for members in assignment),
        owner=owner,
        seed=seed,
    )
