"""Sharded parallel simulation over the message fabric.

The package splits a :class:`~repro.simulation.beaconing.BeaconingSimulation`
across ``multiprocessing`` workers:

* :mod:`repro.parallel.pool` — shared process-pool lifecycle (one
  lazily created, grow-on-demand executor per pool instead of a
  spin-up per call), used by the crypto offload pool and the analysis
  microbenchmarks alike.
* :mod:`repro.parallel.partition` — seeded, degree-balanced
  partitioning of the AS set into shards, with affinity constraints
  that keep loss-degradable links inside one shard (the transport's
  loss RNG must see its draws in one process).
* :mod:`repro.parallel.shard` — the per-shard worker process: a
  shard-restricted ``BeaconingSimulation`` driven by a command loop.
* :mod:`repro.parallel.coordinator` — the conservative-lookahead
  window/barrier protocol that keeps a sharded run bit-identical to
  the single-process golden traces.

See ``docs/parallel.md`` for the protocol and the determinism argument.
"""

from repro.parallel.coordinator import ShardedBeaconingSimulation, ShardedSimulationResult
from repro.parallel.partition import Partition, partition_topology
from repro.parallel.pool import WorkerPool, shared_pool, shutdown_shared_pool

__all__ = [
    "Partition",
    "ShardedBeaconingSimulation",
    "ShardedSimulationResult",
    "WorkerPool",
    "partition_topology",
    "shared_pool",
    "shutdown_shared_pool",
]
