"""Conservative-lookahead coordinator for sharded beaconing simulation.

:class:`ShardedBeaconingSimulation` runs the exact experiment
:class:`~repro.simulation.beaconing.BeaconingSimulation` runs, split
across worker processes.  The topology is partitioned by
:func:`repro.parallel.partition.partition_topology`; each worker forks
with one partition and materializes only its shard's control services;
the coordinator drives the same period structure the single-process
driver uses (deliver → originate → deliver → RAC round → deliver →
period-end bookkeeping) as a sequence of barriers and conservative
advance windows.

**Why the result is the same.** Per-AS inboxes are the fabric's only
inter-AS seam.  A cross-shard send runs its sender side (metrics,
send-time availability) on the sending shard, is exported with its
precomputed delivery time, and replays its receiver side on the owning
shard via the transport's ``inject_import`` — the identical
:meth:`~repro.simulation.network.SimulatedTransport._deliver` callback a
local send would schedule.  Between barriers, a shard may safely
simulate up to ``t_next + lookahead`` (the global next event time plus
the minimum cross-shard ``link latency + processing delay``): any export
generated at ``u >= t_next`` arrives no earlier than ``u + lookahead``,
i.e. outside the window, so no worker ever receives a message in its
past.  Timeline events are global barriers: every worker advances to the
event time, the event is broadcast (each shard applies the slice it
owns), then the aggregated revocation flush runs — reproducing the
single-process probe/dispatch/flush ordering.  The golden-digest tests
pin all of this bit-for-bit against the single-process traces.
"""

from __future__ import annotations

import heapq
import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.control_service import RoundReport
from repro.crypto.keys import KeyStore
from repro.exceptions import ConfigurationError, SimulationError, UnknownASError
from repro.obs import spans as _spans
from repro.parallel.partition import (
    Partition,
    degradable_link_groups,
    partition_topology,
)
from repro.parallel.shard import shard_worker_main
from repro.simulation.collector import ConvergenceCollector, MetricsCollector
from repro.simulation.events import (
    BeaconPeriodChange,
    LinkFailure,
    LinkFlap,
    LinkRecovery,
    RACSwap,
    TimedEvent,
    TopologyGrowth,
)
from repro.simulation.failures import LinkState
from repro.simulation.scenario import ScenarioConfig
from repro.topology.graph import Topology


@dataclass
class ShardedSimulationResult:
    """Aggregated outcome of a sharded run.

    Mirrors :class:`~repro.simulation.beaconing.SimulationResult` where
    aggregation is possible: the merged collector, the coordinator's
    convergence records and the final link state are identical to a
    single-process run's.  Control services live (and die) in the worker
    processes, so instead of a ``services`` mapping the result carries
    the per-AS revocation statistics the analyses read off services.
    """

    topology: Topology
    collector: MetricsCollector
    convergence: ConvergenceCollector
    link_state: LinkState
    round_reports: List[RoundReport] = field(default_factory=list)
    periods_run: int = 0
    final_time_ms: float = 0.0
    service_count: int = 0
    #: AS id → (revocations rejected as invalid, duplicate revocations).
    revocation_stats: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def rejected_invalid_total(self) -> int:
        """Return revocations rejected for bad signatures, all ASes."""
        return sum(rejected for rejected, _dupes in self.revocation_stats.values())

    @property
    def duplicates_total(self) -> int:
        """Return duplicate revocations dropped inside dedup windows."""
        return sum(dupes for _rejected, dupes in self.revocation_stats.values())


class ShardedBeaconingSimulation:
    """Drives one scenario over ``workers`` forked shard processes."""

    def __init__(
        self,
        topology: Topology,
        scenario: ScenarioConfig,
        workers: int = 2,
        key_store: Optional[KeyStore] = None,
        partition_seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        for spec in scenario.algorithms:
            if spec.on_demand:
                raise ConfigurationError(
                    "on-demand RACs fetch algorithm payloads synchronously "
                    "across ASes and cannot run sharded; use the "
                    "single-process BeaconingSimulation"
                )
        for timed in scenario.timeline:
            if isinstance(timed.event, RACSwap) and timed.event.spec.on_demand:
                raise ConfigurationError(
                    "a RACSwap to an on-demand RAC cannot run sharded"
                )
        scenario.timeline.validate(topology)
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ConfigurationError(
                "sharded simulation requires the fork start method"
            ) from exc

        self.topology = topology
        self.scenario = scenario
        self.workers = workers
        self.key_store = key_store if key_store is not None else KeyStore()
        self.partition: Partition = partition_topology(
            topology,
            workers,
            seed=partition_seed,
            affinity_groups=degradable_link_groups(scenario.timeline),
        )
        self._owner: Dict[int, int] = dict(self.partition.owner)
        self._owned: List[set] = [set(shard) for shard in self.partition.shards]
        self._lookahead_ms = self.partition.lookahead_ms(
            topology, scenario.processing_delay_ms
        )
        if self._lookahead_ms <= 0.0:
            raise ConfigurationError(
                "sharded simulation needs positive cross-shard lookahead; "
                "a zero-latency, zero-processing-delay cross-shard link "
                "leaves no safe window"
            )

        self.convergence = ConvergenceCollector()
        self.watched_pairs: List[Tuple[int, int]] = []
        self.round_reports: List[RoundReport] = []
        self.period_listeners: List = []
        self._periods_run = 0
        self._interval_ms = scenario.propagation_interval_ms
        self._next_period_start_ms = 0.0
        self._overload_snapshot = (0, 0, 0)

        # Event barriers: (time, seq, TimedEvent).  Timeline events take
        # seqs 0..n-1 in insertion order — reproducing the scheduler's
        # FIFO tie-break — and dynamically synthesized events (flap
        # toggles) continue the sequence, exactly like mid-run
        # schedule_at calls take later sequence numbers.
        self._barriers: List[Tuple[float, int, TimedEvent]] = []
        self._barrier_seq = 0
        for timed in scenario.timeline.events:
            self._push_barrier(timed)

        #: Cross-shard traffic and synchronization telemetry.
        self.cross_shard_messages = 0
        self.cross_shard_bytes = 0
        self.barrier_wait_s = 0.0
        self.worker_busy_s: List[float] = [0.0] * workers
        self._started_at = time.perf_counter()

        self._next_times: List[Optional[float]] = [None] * workers
        self._conns: List = []
        self._procs: List = []
        self._spawn_workers()

    # ------------------------------------------------------------------
    # worker lifecycle & messaging
    # ------------------------------------------------------------------
    def _spawn_workers(self) -> None:
        with _spans.span("parallel.spawn"):
            for index in range(self.workers):
                parent_conn, child_conn = self._context.Pipe()
                process = self._context.Process(
                    target=shard_worker_main,
                    args=(
                        child_conn,
                        self.topology,
                        self.scenario,
                        tuple(sorted(self._owned[index])),
                        self.key_store.deployment_secret,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
            for index in range(self.workers):
                self._recv(index)  # construction handshake

    def close(self) -> None:
        """Stop and join the worker processes (idempotent)."""
        for index, conn in enumerate(self._conns):
            try:
                conn.send_bytes(pickle.dumps(("stop", None)))
                conn.recv_bytes()
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ShardedBeaconingSimulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _send(self, index: int, command: str, payload) -> None:
        self._conns[index].send_bytes(pickle.dumps((command, payload)))

    def _recv(self, index: int):
        started = time.perf_counter()
        blob = self._conns[index].recv_bytes()
        self.barrier_wait_s += time.perf_counter() - started
        status, payload, exports, next_time = pickle.loads(blob)
        if status == "error":
            raise SimulationError(f"shard worker {index} failed:\n{payload}")
        self._next_times[index] = next_time
        return payload, exports

    def _broadcast(self, command: str, payloads) -> List:
        """Send one command to every worker in parallel; route exports.

        ``payloads`` is either a single value (same payload everywhere)
        or a per-worker list.  Returns the per-worker reply payloads.
        """
        per_worker = (
            payloads
            if isinstance(payloads, list) and len(payloads) == self.workers
            else [payloads] * self.workers
        )
        for index in range(self.workers):
            self._send(index, command, per_worker[index])
        results = []
        exports: List[tuple] = []
        for index in range(self.workers):
            payload, worker_exports = self._recv(index)
            results.append(payload)
            exports.extend(worker_exports)
        if exports:
            self._route_exports(exports)
        return results

    def _route_exports(self, exports: Sequence[tuple]) -> None:
        """Deliver cross-shard exports to the shards owning the receivers."""
        by_shard: Dict[int, List[tuple]] = {}
        for export in exports:
            by_shard.setdefault(self._owner[export[1]], []).append(export)
        self.cross_shard_messages += len(exports)
        for index in sorted(by_shard):
            blob = pickle.dumps(("inject", by_shard[index]))
            self.cross_shard_bytes += len(blob)
            self._conns[index].send_bytes(blob)
        for index in sorted(by_shard):
            _payload, worker_exports = self._recv(index)
            if worker_exports:  # pragma: no cover - injection cannot export
                self._route_exports(worker_exports)

    # ------------------------------------------------------------------
    # the conservative advance loop
    # ------------------------------------------------------------------
    def _advance(self, target_ms: float, inclusive: bool = True) -> None:
        """Advance every shard to ``target_ms`` in lookahead windows.

        Repeatedly: find the global next event time across all shards; if
        none lies before the boundary, align every clock at the target
        and stop.  Otherwise run every shard through the window
        ``[now, t_next + lookahead)`` (clamped at the target) and route
        the exports the window produced — which by the lookahead argument
        are all scheduled at or after the window's end, never in any
        shard's past.
        """
        with _spans.span("parallel.advance"):
            while True:
                times = [t for t in self._next_times if t is not None]
                t_next = min(times) if times else None
                if t_next is None or (
                    t_next > target_ms if inclusive else t_next >= target_ms
                ):
                    self._broadcast("run", (target_ms, inclusive))
                    return
                window_end = t_next + self._lookahead_ms
                if inclusive and window_end > target_ms:
                    horizon, window_inclusive = target_ms, True
                elif not inclusive and window_end >= target_ms:
                    horizon, window_inclusive = target_ms, False
                else:
                    horizon, window_inclusive = window_end, False
                self._broadcast("run", (horizon, window_inclusive))

    def _push_barrier(self, timed: TimedEvent) -> None:
        heapq.heappush(self._barriers, (timed.time_ms, self._barrier_seq, timed))
        self._barrier_seq += 1

    def _run_to(self, target_ms: float, inclusive: bool = True) -> None:
        """Advance to ``target_ms``, dispatching event barriers on the way."""
        while self._barriers:
            barrier_time = self._barriers[0][0]
            if barrier_time > target_ms if inclusive else barrier_time >= target_ms:
                break
            self._advance(barrier_time, inclusive=False)
            group: List[TimedEvent] = []
            while self._barriers and self._barriers[0][0] == barrier_time:
                group.append(heapq.heappop(self._barriers)[2])
            self._dispatch_group(barrier_time, group)
        self._advance(target_ms, inclusive)

    def _dispatch_group(self, now_ms: float, group: List[TimedEvent]) -> None:
        """Apply all barrier events sharing one timestamp, then flush.

        Mirrors the single-process ordering exactly: per event — probe
        the watched pairs, apply, probe again, record convergence; after
        the tick's last event — one aggregated revocation flush.
        """
        with _spans.span("parallel.barrier"):
            for timed in group:
                event = timed.event
                before, _times, _messages_before, _overload = self._probe()
                own_target: Optional[int] = None
                if isinstance(event, TopologyGrowth):
                    own_target = min(
                        range(self.workers),
                        key=lambda index: (len(self._owned[index]), index),
                    )
                    self._owned[own_target].add(event.new_as)
                    self._owner[event.new_as] = own_target
                self._broadcast(
                    "apply_event",
                    [
                        (timed, index == own_target)
                        for index in range(self.workers)
                    ],
                )
                if isinstance(event, BeaconPeriodChange):
                    self._interval_ms = event.interval_ms
                elif isinstance(event, LinkFlap):
                    # The shards only install the loss rates; the toggles
                    # become coordinator barriers, replaying the failure /
                    # recovery machinery globally like the single-process
                    # driver's self-scheduled toggles.
                    for index, offset in enumerate(event.schedule):
                        toggle = (
                            LinkFailure(link_id=event.link_id)
                            if index % 2 == 0
                            else LinkRecovery(link_id=event.link_id)
                        )
                        self._push_barrier(
                            TimedEvent(time_ms=now_ms + offset, event=toggle)
                        )
                elif isinstance(event, TopologyGrowth):
                    for neighbor_as in event.attach_to:
                        if self._owner[neighbor_as] != own_target:
                            self._lookahead_ms = min(
                                self._lookahead_ms,
                                event.latency_ms + self.scenario.processing_delay_ms,
                            )
                after, _times, messages_after, _overload = self._probe()
                self.convergence.on_event(
                    event_label=event.trace_label(),
                    now_ms=now_ms,
                    pair_paths={pair: (before[pair], after[pair]) for pair in before},
                    messages_total=messages_after,
                )
            self._broadcast("flush", now_ms)

    def _probe(self):
        """Probe watched pairs and counters across all shards.

        Returns ``(counts, registered_at, messages_total, overload)``.
        """
        pairs_by_shard: List[List[Tuple[int, int]]] = [[] for _ in range(self.workers)]
        for pair in self.watched_pairs:
            pairs_by_shard[self._owner[pair[0]]].append(pair)
        replies = self._broadcast("probe", pairs_by_shard)
        counts: Dict[Tuple[int, int], int] = {}
        registered_at: Dict[Tuple[int, int], Tuple[float, ...]] = {}
        messages_total = 0
        overload = [0, 0, 0]
        for reply in replies:
            for pair, (count, times) in reply["pairs"].items():
                counts[pair] = count
                registered_at[pair] = times
            messages_total += reply["messages_total"]
            for slot in range(3):
                overload[slot] += reply["overload"][slot]
        return counts, registered_at, messages_total, tuple(overload)

    # ------------------------------------------------------------------
    # public driving API (mirrors BeaconingSimulation)
    # ------------------------------------------------------------------
    def watch_pair(self, source_as: int, destination_as: int) -> None:
        """Track convergence of ``source_as`` → ``destination_as``."""
        for as_id in (source_as, destination_as):
            if as_id not in self.topology:
                raise UnknownASError(as_id)
        pair = (source_as, destination_as)
        if pair not in self.watched_pairs:
            self.watched_pairs.append(pair)

    def add_period_listener(self, listener) -> None:
        """Register a ``(now_ms,)`` callback fired at every period end."""
        self.period_listeners.append(listener)

    @property
    def periods_run(self) -> int:
        """Return how many beaconing periods have completed so far."""
        return self._periods_run

    def run_period(self) -> None:
        """Run one complete beaconing period across all shards."""
        period_start_ms = self._next_period_start_ms
        mid_period_ms = period_start_ms + self._interval_ms / 2.0
        period_end_ms = period_start_ms + self._interval_ms

        self._run_to(period_start_ms, inclusive=True)
        with _spans.span("parallel.originate"):
            self._broadcast("originate", period_start_ms)
        self._run_to(mid_period_ms, inclusive=True)
        with _spans.span("parallel.rac_round"):
            report_lists = self._broadcast("rac_round", mid_period_ms)
        self._run_to(period_end_ms, inclusive=True)

        # Merge this period's round reports in global AS order — the
        # order the single-process driver appends them in.
        merged = sorted(
            (report for reports in report_lists for report in reports),
            key=lambda report: report.as_id,
        )
        self.round_reports.extend(merged)

        counts, registered_at, messages_total, overload = self._probe()
        if self.watched_pairs:
            self.convergence.on_period_end(
                now_ms=period_end_ms,
                pair_paths=counts,
                messages_total=messages_total,
                pair_registered_at=registered_at,
            )
        if overload != self._overload_snapshot:
            previous = self._overload_snapshot
            self._overload_snapshot = overload
            self.convergence.on_overload(
                period_end_ms,
                dropped=overload[0] - previous[0],
                marked=overload[1] - previous[1],
                deferred=overload[2] - previous[2],
            )

        self._periods_run += 1
        self._next_period_start_ms = period_end_ms
        for listener in self.period_listeners:
            listener(period_end_ms)

    def run(self, periods: Optional[int] = None) -> ShardedSimulationResult:
        """Run the scenario; gather, stop the workers, return the result."""
        total = periods if periods is not None else self.scenario.periods
        for _ in range(total):
            self.run_period()
        # Final in-flight flush: deliveries only; barrier events landing
        # in this window stay queued (deferred), like the single-process
        # horizon suppression.
        final_ms = self._next_period_start_ms + 1.0
        self._advance(final_ms, inclusive=True)

        with _spans.span("parallel.gather"):
            snapshots = self._broadcast("gather", None)
        collector = MetricsCollector(period_ms=self.scenario.propagation_interval_ms)
        revocation_stats: Dict[int, Tuple[int, int]] = {}
        service_count = 0
        for index, snapshot in enumerate(snapshots):
            collector.merge(snapshot["collector"])
            revocation_stats.update(snapshot["revocation_stats"])
            service_count += snapshot["service_count"]
            self.worker_busy_s[index] = snapshot["busy_s"]
        link_state = snapshots[0]["link_state"]
        self.close()
        return ShardedSimulationResult(
            topology=self.topology,
            collector=collector,
            convergence=self.convergence,
            link_state=link_state,
            round_reports=list(self.round_reports),
            periods_run=self._periods_run,
            final_time_ms=final_ms,
            service_count=service_count,
            revocation_stats=dict(sorted(revocation_stats.items())),
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def utilization(self) -> List[float]:
        """Return per-worker busy-time fractions since construction."""
        elapsed = max(time.perf_counter() - self._started_at, 1e-9)
        return [busy / elapsed for busy in self.worker_busy_s]

    def counters(self) -> Dict[str, float]:
        """Return the coordinator's synchronization counters."""
        return {
            "workers": float(self.workers),
            "lookahead_ms": self._lookahead_ms,
            "cross_shard_messages": float(self.cross_shard_messages),
            "cross_shard_bytes": float(self.cross_shard_bytes),
            "barrier_wait_s": self.barrier_wait_s,
        }
