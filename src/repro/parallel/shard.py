"""The shard worker: one process driving one partition's control services.

Forked by the coordinator (:mod:`repro.parallel.coordinator`), the worker
builds a :class:`~repro.simulation.beaconing.BeaconingSimulation` in shard
mode — services only for its owned ASes, every cross-shard fabric send
diverted to an export buffer — and then executes coordinator commands off
a pipe until told to stop.

The command loop is strictly synchronous: one request, one reply.  Every
reply carries (a) the command's payload, (b) the cross-shard exports the
command produced, and (c) the shard's next pending event time, so the
coordinator's conservative-lookahead advance never needs a separate poll
round trip.

Workers are started with the ``fork`` method on purpose: scenario objects
carry callables (algorithm factories, policies) that cannot be pickled,
but a forked child inherits them.  All post-fork state — the simulation,
its services, the RNGs — is built inside the child, so nothing of the
parent's mutable simulation state is shared.
"""

from __future__ import annotations

import pickle
import time
import traceback
from typing import Dict, List, Optional, Tuple

from repro.core.control_service import RoundReport
from repro.crypto.keys import KeyStore
from repro.simulation.beaconing import BeaconingSimulation, ShardContext
from repro.simulation.events import TopologyGrowth

#: Protocol version guard: bumped if the command tuple shapes change.
PROTOCOL_VERSION = 1


class _ShardRuntime:
    """Per-worker state: the shard simulation plus the export buffer."""

    def __init__(
        self,
        topology,
        scenario,
        owned_ases,
        deployment_secret: bytes,
    ) -> None:
        self.exports: List[tuple] = []
        self.shard = ShardContext(
            owned_ases=set(owned_ases), exporter=self.exports.append
        )
        self.sim = BeaconingSimulation(
            topology,
            scenario,
            key_store=KeyStore(deployment_secret=deployment_secret),
            shard=self.shard,
        )
        self.busy_s = 0.0

    def drain_exports(self) -> List[tuple]:
        exports, self.exports[:] = list(self.exports), []
        return exports

    # ------------------------------------------------------------------
    # command handlers; each returns the reply payload
    # ------------------------------------------------------------------
    def handle(self, command: str, payload):
        sim = self.sim
        if command == "run":
            horizon, inclusive = payload
            sim.scheduler.run_window(horizon, inclusive=inclusive)
            return None
        if command == "inject":
            for item in payload:
                sim.transport.inject_import(*item)
            return None
        if command == "originate":
            now_ms = payload
            for service in sim._services_in_order():
                if sim.link_state.is_as_up(service.as_id):
                    service.originate(now_ms=now_ms)
            return None
        if command == "rac_round":
            now_ms = payload
            reports = []
            for service in sim._services_in_order():
                if not sim.link_state.is_as_up(service.as_id):
                    continue
                report = service.run_round(now_ms=now_ms)
                if isinstance(report, RoundReport):
                    reports.append(report)
            return reports
        if command == "apply_event":
            timed, own_new_as = payload
            if own_new_as and isinstance(timed.event, TopologyGrowth):
                self.shard.owned_ases.add(timed.event.new_as)
            sim._dispatch_event(timed.event, timed.time_ms)
            return None
        if command == "flush":
            if sim._pending_failed_links or sim._pending_failed_ases:
                sim._flush_revocations(payload)
            return None
        if command == "probe":
            pairs = payload
            results: Dict[Tuple[int, int], Tuple[int, Tuple[float, ...]]] = {}
            for source_as, destination_as in pairs:
                results[(source_as, destination_as)] = (
                    sim.usable_path_count(source_as, destination_as),
                    sim._usable_registration_times(source_as, destination_as),
                )
            return {
                "pairs": results,
                "messages_total": sim.collector.control_messages_total(),
                "overload": (
                    sim.collector.inbox_dropped_total(),
                    sim.collector.inbox_marked_total(),
                    sim.collector.inbox_deferred_total(),
                ),
            }
        if command == "gather":
            revocation_stats = {
                as_id: (
                    service.revocations.rejected_invalid,
                    service.revocations.duplicates,
                )
                for as_id, service in sorted(sim.services.items())
            }
            return {
                "collector": sim.collector,
                "link_state": sim.link_state,
                "revocation_stats": revocation_stats,
                "service_count": len(sim.services),
                "busy_s": self.busy_s,
                "processed_events": sim.scheduler.processed_events,
            }
        raise ValueError(f"unknown shard command {command!r}")


def shard_worker_main(
    conn,
    topology,
    scenario,
    owned_ases,
    deployment_secret: bytes,
) -> None:
    """Run the worker command loop until a ``stop`` command (or EOF)."""
    runtime: Optional[_ShardRuntime] = None
    try:
        runtime = _ShardRuntime(topology, scenario, owned_ases, deployment_secret)
        conn.send_bytes(pickle.dumps(("ok", PROTOCOL_VERSION, [], None)))
    except Exception:  # noqa: BLE001 - report construction failure to parent
        conn.send_bytes(pickle.dumps(("error", traceback.format_exc(), [], None)))
        return
    while True:
        try:
            blob = conn.recv_bytes()
        except EOFError:
            return
        command, payload = pickle.loads(blob)
        if command == "stop":
            conn.send_bytes(pickle.dumps(("ok", None, [], None)))
            return
        started = time.perf_counter()
        try:
            result = runtime.handle(command, payload)
            runtime.busy_s += time.perf_counter() - started
            reply = (
                "ok",
                result,
                runtime.drain_exports(),
                runtime.sim.scheduler.next_event_time(),
            )
        except Exception:  # noqa: BLE001 - ship the traceback to the parent
            runtime.busy_s += time.perf_counter() - started
            reply = ("error", traceback.format_exc(), [], None)
        conn.send_bytes(pickle.dumps(reply))
