"""The flow-level traffic engine.

This is the layer the reproduction was missing between the control plane
and any statement about "serving traffic": a :class:`TrafficEngine` drives
the flows of a :class:`~repro.traffic.demand.TrafficMatrix` over the paths
the control plane registered, through the capacity-aware
:class:`~repro.traffic.links.CapacityLinkModel`, in rounds scheduled on a
discrete-event scheduler.

Per round, every flow group

1. (re-)selects paths when it has none — via an
   :class:`~repro.dataplane.endhost.EndHost` and a pluggable
   :mod:`selection policy <repro.traffic.selection>`, optionally verified
   by delivering a probe packet over the real forwarding simulation,
2. offers its demand onto its selected paths (ECMP splits spread both the
   demand and the max-min weight), and
3. receives a weighted max-min fair share of every traversed link.

Coupling to the scenario engine is message-driven: attached to a
:class:`~repro.simulation.beaconing.BeaconingSimulation`, the engine
subscribes to revocation withdrawals, so a link failure breaks the flow
groups riding the link *when the revocation message reaches each group's
source AS* — near sources react before far ones, exactly like their
control planes.  (The data plane is still physically broken from the
failure instant onwards: rounds never offer demand onto unavailable
links.)  The next round re-selects from the withdrawn/re-registered path
service, and the :class:`~repro.traffic.collector.TrafficCollector` turns
the gap into time-to-reroute and goodput dip/recovery curves.

Closed-loop demand (PR 7, opt-in via :class:`ClosedLoopDemand`): flow
groups observe their own delivered fraction — congestion share times the
silent-loss survival of their paths — back off their offered demand under
loss, recover when the loss clears, and steer around silently lossy paths
when clean alternatives are registered.  This is what makes gray failures
survivable: the control plane stays blind, the end hosts do not.

The per-round fast path is aggregate-batched: groups sharing a forwarding
path merge into one :class:`~repro.traffic.links.PathLoad`, path links are
resolved to dense link indices once per (path, engine) and memoized, and
healthy rounds skip availability checks entirely while the network is
unimpaired — which is what lets a medium-scale run sustain well over the
100k flow-rounds/s target in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.databases import PathService, RegisteredPath
from repro.core.messages import RevocationMessage
from repro.core.query import PathQueryFrontend
from repro.dataplane.endhost import EndHost, PathPolicy
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import Packet
from repro.dataplane.path import forwarding_path_from_segment
from repro.exceptions import ConfigurationError, SimulationError
from repro.obs import spans as _spans
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.engine import EventScheduler
from repro.simulation.events import ASJoin, ASLeave, LinkFailure, LinkRecovery, ScenarioEvent
from repro.simulation.failures import LinkState
from repro.topology.graph import Topology
from repro.traffic.collector import RoundSample, TrafficCollector
from repro.traffic.demand import TrafficMatrix
from repro.traffic.links import CapacityLinkModel, PathLoad
from repro.traffic.selection import LatencyGreedyPolicy, prefer_clean


@dataclass(frozen=True)
class ClosedLoopDemand:
    """Configuration of loss-adaptive (closed-loop) demand.

    With closed-loop demand enabled, every flow group observes its own
    delivered fraction each round — congestion share from the max-min
    allocation times the silent-loss survival of its paths (gray
    failures, flap loss) — and adapts: observed loss above
    ``loss_threshold`` multiplies the group's offered demand by
    ``backoff_factor`` (floored at ``min_demand_fraction`` of nominal),
    a clean round multiplies it by ``recovery_factor`` (capped at
    nominal).  Groups also steer *around* silently lossy paths when a
    clean alternative is registered (see
    :func:`repro.traffic.selection.prefer_clean`) — the end-host
    rerouting that makes gray failures survivable despite a blind
    control plane.
    """

    loss_threshold: float = 0.05
    backoff_factor: float = 0.5
    recovery_factor: float = 1.25
    min_demand_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.loss_threshold < 1.0:
            raise ConfigurationError(
                f"loss_threshold must be within (0, 1), got {self.loss_threshold}"
            )
        if not 0.0 < self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be within (0, 1), got {self.backoff_factor}"
            )
        if self.recovery_factor < 1.0:
            raise ConfigurationError(
                f"recovery_factor must be >= 1, got {self.recovery_factor}"
            )
        if not 0.0 < self.min_demand_fraction <= 1.0:
            raise ConfigurationError(
                f"min_demand_fraction must be within (0, 1], got {self.min_demand_fraction}"
            )


@dataclass
class _PathUse:
    """One selected path of a flow group (memoized link indices)."""

    digest: str
    link_indices: Tuple[int, ...]
    share: float  # fraction of the group's demand on this path


@dataclass
class _GroupState:
    """Mutable per-flow-group runtime state."""

    uses: List[_PathUse] = field(default_factory=list)
    #: Closed-loop multiplier on the group's nominal demand (1.0 = open
    #: loop / fully recovered).
    demand_factor: float = 1.0

    @property
    def assigned(self) -> bool:
        return bool(self.uses)


class TrafficEngine:
    """Drives a traffic matrix over registered paths in scheduled rounds.

    Args:
        topology: The shared topology (link capacities).
        path_services: Per-AS path services flows select from.
        matrix: The demand to simulate.
        link_state: Live availability shared with the scenario engine.
        policy: Path-selection policy applied by every group's end host.
        scheduler: Discrete-event scheduler rounds are scheduled on.
        round_interval_ms: Gap between consecutive traffic rounds.
        link_model: Capacity model; built from the topology when omitted.
        collector: Measurement sink; a fresh one when omitted.
        probe_network: Optional forwarding fabric; when given, every fresh
            path selection is verified by delivering one probe packet and
            rejected if forwarding fails (catches stale control-plane state
            the link-state check alone would miss).
        queue_delay_provider: Optional ``as_id -> delay_ms`` callable
            reporting the control-plane inbox backlog at an AS (see
            :meth:`repro.simulation.network.SimulatedTransport.queue_backlog_ms`);
            :meth:`per_flow_latency_ms` adds it to path latency so
            overloaded sources surface in per-flow latency.
    """

    def __init__(
        self,
        topology: Topology,
        path_services: Dict[int, PathService],
        matrix: TrafficMatrix,
        link_state: Optional[LinkState] = None,
        policy: Optional[PathPolicy] = None,
        scheduler: Optional[EventScheduler] = None,
        round_interval_ms: float = 1_000.0,
        link_model: Optional[CapacityLinkModel] = None,
        collector: Optional[TrafficCollector] = None,
        probe_network: Optional[DataPlaneNetwork] = None,
        queue_delay_provider: Optional[Callable[[int], float]] = None,
        closed_loop: Optional[ClosedLoopDemand] = None,
        query_frontends: Optional[Dict[int, PathQueryFrontend]] = None,
    ) -> None:
        if round_interval_ms <= 0.0:
            raise ConfigurationError(
                f"round interval must be positive, got {round_interval_ms}"
            )
        self.closed_loop = closed_loop
        self.topology = topology
        self.path_services = path_services
        self.matrix = matrix
        self.link_state = link_state if link_state is not None else LinkState()
        self.policy: PathPolicy = policy if policy is not None else LatencyGreedyPolicy()
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.round_interval_ms = round_interval_ms
        self.link_model = link_model if link_model is not None else CapacityLinkModel(topology)
        self.collector = collector if collector is not None else TrafficCollector()
        self.probe_network = probe_network
        self.queue_delay_provider = queue_delay_provider
        self.rounds_run = 0
        #: Per-AS serving tier the engine's end hosts query through.  If
        #: none is supplied (standalone construction), one frontend per
        #: path service is built on the engine's scheduler clock; they
        #: stay coherent through the services' invalidation listeners.
        if query_frontends is None:
            query_frontends = {
                as_id: PathQueryFrontend(service, clock=lambda: self.scheduler.now_ms)
                for as_id, service in path_services.items()
            }
        self.query_frontends = query_frontends

        for group in matrix:
            if group.source_as not in path_services:
                raise ConfigurationError(
                    f"flow group {group.group_id}: no path service for AS {group.source_as}"
                )

        self._groups = list(matrix.groups)
        self._total_flows = matrix.total_flows
        self._state: List[_GroupState] = [_GroupState() for _ in self._groups]
        self._hosts: Dict[int, EndHost] = {}
        #: source AS → group indices (for revocation-driven breaking).
        self._groups_by_source: Dict[int, List[int]] = {}
        for group_index, group in enumerate(self._groups):
            self._groups_by_source.setdefault(group.source_as, []).append(group_index)
        #: digest → (link indices, path latency); shared across groups.
        self._path_cache: Dict[str, Tuple[Tuple[int, ...], float]] = {}
        #: link index → group ids currently riding the link (for event-
        #: driven breaking without scanning every group).
        self._groups_by_link: Dict[int, Set[int]] = {}
        #: AS id → link indices (for ASLeave fan-out).
        self._links_by_as: Dict[int, Tuple[int, ...]] = {
            as_id: tuple(
                self.link_model.link_index(link.key)
                for link in topology.links_of(as_id)
            )
            for as_id in topology.as_ids()
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_simulation(
        cls,
        simulation: BeaconingSimulation,
        matrix: TrafficMatrix,
        policy: Optional[PathPolicy] = None,
        round_interval_ms: float = 60_000.0,
        link_model: Optional[CapacityLinkModel] = None,
        collector: Optional[TrafficCollector] = None,
        probe_paths: bool = True,
        closed_loop: Optional[ClosedLoopDemand] = None,
    ) -> "TrafficEngine":
        """Attach a traffic engine to a running beaconing simulation.

        The engine shares the simulation's scheduler and link state,
        selects from its per-AS path services, and subscribes to both
        applied timeline events (churn breaks endpoint flows immediately)
        and revocation withdrawals (transit failures break flows when the
        revocation reaches each group's source AS).  Call
        :meth:`schedule_rounds` before ``simulation.run()``.
        """
        network = None
        if probe_paths:
            network = DataPlaneNetwork(
                topology=simulation.topology,
                intra_domain=simulation.intra_domain,
                link_state=simulation.link_state,
            )
        engine = cls(
            topology=simulation.topology,
            path_services={
                as_id: service.path_service
                for as_id, service in simulation.services.items()
            },
            query_frontends={
                as_id: service.query_frontend
                for as_id, service in simulation.services.items()
            },
            matrix=matrix,
            link_state=simulation.link_state,
            policy=policy,
            scheduler=simulation.scheduler,
            round_interval_ms=round_interval_ms,
            link_model=link_model,
            collector=collector,
            probe_network=network,
            queue_delay_provider=simulation.transport.queue_backlog_ms,
            closed_loop=closed_loop,
        )
        simulation.add_event_listener(engine.on_scenario_event)
        simulation.add_revocation_listener(engine.on_revocation)
        return engine

    def _host_for(self, as_id: int) -> EndHost:
        host = self._hosts.get(as_id)
        if host is None:
            host = EndHost(
                host_id=f"traffic-{as_id}",
                as_id=as_id,
                path_service=self.path_services[as_id],
                query_frontend=self.query_frontends.get(as_id),
            )
            self._hosts[as_id] = host
        return host

    # ------------------------------------------------------------------
    # scenario-event coupling
    # ------------------------------------------------------------------
    def on_scenario_event(self, event: ScenarioEvent, now_ms: float) -> None:
        """Break active flow groups invalidated by a scenario event.

        Registered as a :meth:`BeaconingSimulation.add_event_listener`
        callback.  Only *locally observable* failures break flows here: a
        departed source/destination AS takes its endpoint groups down
        instantly.  Transit failures (a link dying somewhere on the path)
        are control-plane news — those groups break in :meth:`on_revocation`
        when the revocation message reaches their source AS, so break
        timestamps are propagation-ordered.  Recoveries need no action
        because black-holed groups re-select at every subsequent round.
        """
        if isinstance(event, ASLeave):
            self._break_endpoint_groups(event.as_id, event, now_ms)
        elif isinstance(event, (LinkFailure, LinkRecovery, ASJoin)):
            return
        # Policy/RAC swaps and period changes do not invalidate forwarding
        # state; withdrawn paths surface at the next round's revalidation.

    def on_revocation(self, as_id: int, message, removed, now_ms: float) -> None:
        """Break flow groups whose paths a withdrawal message just removed.

        Registered as a :meth:`BeaconingSimulation.add_revocation_listener`
        callback: fired when a control message withdraws state at
        ``as_id``.  The listener is keyed on the fabric's message type —
        only :class:`~repro.core.messages.RevocationMessage` withdrawals
        break flows; other (future) withdrawal-causing message kinds are
        ignored here.  Groups sourced at that AS whose selected paths
        vanished are broken *now* — at withdrawal-arrival time, not at
        the failure timestamp.
        """
        if not isinstance(message, RevocationMessage):
            return
        _ingress_removed, paths_removed = removed
        if not paths_removed:
            return
        service = self.path_services.get(as_id)
        if service is None:
            return
        for group_index in self._groups_by_source.get(as_id, ()):
            state = self._state[group_index]
            if not state.assigned:
                continue
            if any(service.get(use.digest) is None for use in state.uses):
                self._invalidate_group(group_index, message.trace_label(), now_ms)

    def _break_endpoint_groups(
        self, as_id: int, event: ScenarioEvent, now_ms: float
    ) -> None:
        for group_index, group in enumerate(self._groups):
            if as_id in (group.source_as, group.destination_as) and self._state[
                group_index
            ].assigned:
                self._invalidate_group(group_index, event.trace_label(), now_ms)

    def _invalidate_group(self, group_index: int, cause: str, now_ms: float) -> None:
        state = self._state[group_index]
        if not state.assigned:
            return
        self._unindex_group(group_index, state)
        state.uses = []
        group = self._groups[group_index]
        self.collector.on_break(group.group_id, now_ms, cause, group.flow_count)

    def _unindex_group(self, group_index: int, state: _GroupState) -> None:
        for use in state.uses:
            for index in use.link_indices:
                members = self._groups_by_link.get(index)
                if members is not None:
                    members.discard(group_index)

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def schedule_rounds(
        self, start_ms: float, count: int, interval_ms: Optional[float] = None
    ) -> None:
        """Schedule ``count`` traffic rounds starting at ``start_ms``.

        Rounds are pinned to absolute times up front (not self-
        rescheduling), so they interleave deterministically with PCB
        deliveries and timeline events already on the shared scheduler.
        """
        if count < 0:
            raise SimulationError(f"round count must be non-negative, got {count}")
        interval = interval_ms if interval_ms is not None else self.round_interval_ms
        for round_index in range(count):
            self.scheduler.schedule_at(start_ms + round_index * interval, self.run_round)

    def run_rounds(self, count: int, start_ms: Optional[float] = None) -> TrafficCollector:
        """Run ``count`` rounds standalone on the engine's own scheduler."""
        begin = start_ms if start_ms is not None else self.scheduler.now_ms
        self.schedule_rounds(begin, count)
        self.scheduler.run_until(begin + count * self.round_interval_ms)
        return self.collector

    def total_flows(self) -> int:
        """Return how many individual flows one round simulates."""
        return self._total_flows

    def run_round(self, now_ms: float) -> RoundSample:
        """Execute one traffic round at simulated time ``now_ms``."""
        frame = _spans.push("traffic.round") if _spans.ENABLED else None
        try:
            return self._run_round(now_ms)
        finally:
            if frame is not None:
                _spans.pop(frame)

    def _run_round(self, now_ms: float) -> RoundSample:
        failed_indices: Set[int] = set()
        if self.link_state.impaired():
            # O(failed + offline-AS degree), resolved through the link
            # model's own index (never positional enumeration — the model
            # may have been built independently).
            for link_id in self.link_state.failed_links:
                try:
                    failed_indices.add(self.link_model.link_index(link_id))
                except ConfigurationError:
                    continue  # link unknown to the model: nothing rides it
            for as_id in self.link_state.offline_ases:
                failed_indices.update(self._links_by_as.get(as_id, ()))

        # Batched loads: path digest → [total demand, total weight, links].
        batches: Dict[str, List] = {}
        closed_loop = self.closed_loop
        offered = 0.0
        unserved = 0.0
        active_groups = 0
        blackholed = 0

        for group_index, group in enumerate(self._groups):
            state = self._state[group_index]
            demand = group.demand_mbps
            if closed_loop is not None:
                demand *= state.demand_factor
            offered += demand

            if state.assigned and not self._assignment_valid(
                group, state, failed_indices
            ):
                self._unindex_group(group_index, state)
                state.uses = []
            if not state.assigned:
                self._select_paths(group_index, now_ms, failed_indices)
                if state.assigned and self.collector.is_blackholed(group.group_id):
                    self.collector.on_reroute(group.group_id, now_ms)

            if not state.assigned:
                unserved += demand
                blackholed += 1
                continue

            active_groups += 1
            for use in state.uses:
                batch = batches.get(use.digest)
                if batch is None:
                    batches[use.digest] = [
                        demand * use.share,
                        group.flow_count * use.share,
                        use.link_indices,
                    ]
                else:
                    batch[0] += demand * use.share
                    batch[1] += group.flow_count * use.share

        loads = [
            PathLoad(key=digest, link_indices=links, demand_mbps=demand, weight=weight)
            for digest, (demand, weight, links) in sorted(batches.items())
        ]
        result = self.link_model.allocate(loads)
        max_utilization = 0.0
        for index, load in result.link_load_mbps.items():
            capacity = self.link_model.capacity_of(index)
            if capacity > 0.0:
                utilization = load / capacity
                if utilization > max_utilization:
                    max_utilization = utilization
        latency_weighted = 0.0
        for digest, carried in result.carried_mbps.items():
            latency_weighted += carried * self._path_cache[digest][1]
        mean_latency = (
            latency_weighted / result.total_carried_mbps
            if result.total_carried_mbps > 0.0
            else 0.0
        )

        if closed_loop is not None:
            self._adapt_demand(batches, result, now_ms)

        sample = RoundSample(
            time_ms=now_ms,
            offered_mbps=offered,
            carried_mbps=result.total_carried_mbps,
            unserved_mbps=unserved,
            active_groups=active_groups,
            blackholed_groups=blackholed,
            flow_rounds=self._total_flows,
            max_link_utilization=max_utilization,
            mean_latency_ms=mean_latency,
        )
        self.collector.on_round(sample)
        self.rounds_run += 1
        return sample

    # ------------------------------------------------------------------
    # closed-loop demand
    # ------------------------------------------------------------------
    def _adapt_demand(self, batches: Dict[str, List], result, now_ms: float) -> None:
        """Adjust every assigned group's demand factor from observed loss.

        One group's delivered fraction is its share-weighted product of
        per-path congestion fraction (carried / offered on the digest)
        and silent-loss survival.  Factor changes are recorded via
        :meth:`TrafficCollector.on_backoff`; unchanged factors stay
        silent so steady state adds no trace lines.
        """
        closed_loop = self.closed_loop
        degraded = self.link_state.degraded()
        for group_index, group in enumerate(self._groups):
            state = self._state[group_index]
            if not state.assigned:
                continue
            delivered = 0.0
            for use in state.uses:
                batch = batches[use.digest]
                carried = result.carried_mbps.get(use.digest, 0.0)
                fraction = carried / batch[0] if batch[0] > 0.0 else 1.0
                if degraded:
                    fraction *= 1.0 - self._path_silent_loss(use.link_indices)
                delivered += use.share * fraction
            loss = 1.0 - delivered
            if loss > closed_loop.loss_threshold:
                new_factor = max(
                    closed_loop.min_demand_fraction,
                    state.demand_factor * closed_loop.backoff_factor,
                )
            else:
                new_factor = min(
                    1.0, state.demand_factor * closed_loop.recovery_factor
                )
            if new_factor != state.demand_factor:
                state.demand_factor = new_factor
                self.collector.on_backoff(group.group_id, now_ms, new_factor, loss)

    def _path_silent_loss(self, link_indices: Tuple[int, ...]) -> float:
        """Return a path's end-host-observed silent-drop probability.

        Product of per-link worst-direction survival (see
        :meth:`LinkState.silent_loss`); zero while nothing is degraded.
        """
        state = self.link_state
        link_id_of = self.link_model.link_id_of
        survival = 1.0
        for index in link_indices:
            rate = state.silent_loss(link_id_of(index))
            if rate:
                survival *= 1.0 - rate
        return 1.0 - survival

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _assignment_valid(
        self, group, state: _GroupState, failed_indices: Set[int]
    ) -> bool:
        """Return whether every selected path is still registered and up.

        With closed-loop demand enabled, a path that has become silently
        lossy beyond the loss threshold also invalidates the assignment:
        the next selection steers around it when a clean alternative is
        registered (the control plane never withdraws gray links, so only
        this end-host check can).
        """
        service = self.path_services[group.source_as]
        closed_loop = self.closed_loop
        check_loss = closed_loop is not None and self.link_state.degraded()
        for use in state.uses:
            if failed_indices and not failed_indices.isdisjoint(use.link_indices):
                return False
            if service.get(use.digest) is None:
                return False  # withdrawn or expired since selection
            if (
                check_loss
                and self._path_silent_loss(use.link_indices) > closed_loop.loss_threshold
            ):
                return False
        return True

    def _select_paths(
        self, group_index: int, now_ms: float, failed_indices: Set[int]
    ) -> None:
        group = self._groups[group_index]
        if not (
            self.link_state.is_as_up(group.source_as)
            and self.link_state.is_as_up(group.destination_as)
        ):
            return
        host = self._host_for(group.source_as)

        def usable_only(candidates):
            # Filter before the policy ranks: a policy that returns only
            # its single favourite must not pick a path that is already
            # known-dead when alternatives exist.
            usable = []
            for path in candidates:
                resolved = self._resolve(path)
                if resolved is None:
                    continue
                if failed_indices and not failed_indices.isdisjoint(resolved[1]):
                    continue
                usable.append(path)
            if self.closed_loop is not None and self.link_state.degraded():
                usable = prefer_clean(
                    usable,
                    lambda path: self._path_silent_loss(self._resolve(path)[1]),
                    self.closed_loop.loss_threshold,
                )
            return self.policy(usable)

        weighted = host.select_weighted(group.destination_as, usable_only)
        if not weighted:
            return
        total_weight = sum(weight for _path, weight in weighted)
        if total_weight <= 0.0:
            return
        state = self._state[group_index]
        uses: List[_PathUse] = []
        for path, weight in weighted:
            digest, link_indices = self._resolve(path)
            if self.probe_network is not None and not self._probe(path):
                continue
            uses.append(
                _PathUse(
                    digest=digest,
                    link_indices=link_indices,
                    share=weight / total_weight,
                )
            )
        share_total = sum(use.share for use in uses)
        if not uses or share_total <= 0.0:
            return
        # Renormalise in case some selected paths were rejected.
        for use in uses:
            use.share /= share_total
        state.uses = uses
        for use in uses:
            for index in use.link_indices:
                self._groups_by_link.setdefault(index, set()).add(group_index)

    def _resolve(self, path: RegisteredPath) -> Optional[Tuple[str, Tuple[int, ...]]]:
        """Memoize a registered path's digest and dense link indices."""
        digest = path.segment.digest()
        cached = self._path_cache.get(digest)
        if cached is None:
            try:
                link_indices = self.link_model.indices_for(path.segment.links())
            except KeyError:
                return None  # path references a link outside the topology
            cached = (link_indices, path.segment.total_latency_ms())
            self._path_cache[digest] = cached
        return digest, cached[0]

    def _probe(self, path: RegisteredPath) -> bool:
        """Deliver one probe packet over ``path``; return success."""
        packet = Packet(
            path=forwarding_path_from_segment(path.segment),
            source_host="traffic-probe",
            destination_host="traffic-probe",
        )
        return self.probe_network.deliver(packet).delivered

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def expected_latency_ms(self, group_id: int) -> Optional[float]:
        """Return the demand-weighted latency of a group's selected paths."""
        for group_index, group in enumerate(self._groups):
            if group.group_id != group_id:
                continue
            state = self._state[group_index]
            if not state.assigned:
                return None
            return sum(
                self._path_cache[use.digest][1] * use.share for use in state.uses
            )
        raise ConfigurationError(f"unknown flow group {group_id}")

    def per_flow_latency_ms(self) -> Dict[int, float]:
        """Return each assigned group's end-to-end latency estimate.

        Share-weighted path propagation latency plus — when a
        ``queue_delay_provider`` is attached — the control-plane inbox
        backlog at the group's source AS, so slow or overloaded control
        planes show up in the flows they steer.  Unassigned (black-holed)
        groups are absent from the result.
        """
        provider = self.queue_delay_provider
        latencies: Dict[int, float] = {}
        for group_index, group in enumerate(self._groups):
            state = self._state[group_index]
            if not state.assigned:
                continue
            latency = sum(
                self._path_cache[use.digest][1] * use.share for use in state.uses
            )
            if provider is not None:
                latency += provider(group.source_as)
            latencies[group.group_id] = latency
        return latencies
