"""Flow-level traffic simulation over discovered paths.

The packages below this one answer "which paths does the control plane
find?"; this package answers the north-star question "what happens when
millions of end-host flows actually use them?":

* :mod:`repro.traffic.demand` — traffic-matrix generators (gravity,
  hotspot, uniform, seeded random) with flow aggregation, so matrices can
  represent millions of flows through a few thousand flow groups,
* :mod:`repro.traffic.links` — the capacity-aware link model: finite
  per-link bandwidth and weighted max-min fair allocation per round,
* :mod:`repro.traffic.selection` — end-host path-selection policies
  (latency-greedy, bandwidth-aware, ECMP splitting, criteria-tag pinning),
* :mod:`repro.traffic.engine` — the :class:`TrafficEngine` that advances
  flows in rounds on the discrete-event scheduler and couples to the
  dynamic-scenario engine (failures break flows, rounds re-select), with
  optional :class:`ClosedLoopDemand` back-off under observed loss, and
* :mod:`repro.traffic.collector` — goodput curves, loss accounting and
  time-to-reroute records, digest-pinnable like the golden trace.
"""

from repro.traffic.collector import RerouteRecord, RoundSample, TrafficCollector
from repro.traffic.demand import (
    FlowGroup,
    TrafficMatrix,
    gravity_matrix,
    hotspot_matrix,
    random_matrix,
    uniform_matrix,
)
from repro.traffic.engine import ClosedLoopDemand, TrafficEngine
from repro.traffic.links import AllocationResult, CapacityLinkModel, PathLoad
from repro.traffic.selection import (
    BandwidthAwarePolicy,
    EcmpPolicy,
    LatencyGreedyPolicy,
    TagPinnedPolicy,
    prefer_clean,
)

__all__ = [
    "AllocationResult",
    "BandwidthAwarePolicy",
    "CapacityLinkModel",
    "ClosedLoopDemand",
    "EcmpPolicy",
    "FlowGroup",
    "LatencyGreedyPolicy",
    "PathLoad",
    "RerouteRecord",
    "RoundSample",
    "TagPinnedPolicy",
    "TrafficCollector",
    "TrafficEngine",
    "TrafficMatrix",
    "gravity_matrix",
    "hotspot_matrix",
    "prefer_clean",
    "random_matrix",
    "uniform_matrix",
]
