"""Measurement collection for the traffic engine.

Mirrors the role :class:`~repro.simulation.collector.ConvergenceCollector`
plays for the control plane, one layer down: where the convergence
collector counts *registered paths*, this one measures what the registered
paths are worth to traffic — per-round goodput, demand lost, flows
black-holed, and per-flow-group reroute latency after a scenario event
breaks the path the group was using.

Every observation appends a stable line to :attr:`TrafficCollector.trace`,
so a seeded traffic run is digest-pinnable exactly like the control-plane
golden trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RoundSample:
    """Aggregate outcome of one traffic round.

    Attributes:
        time_ms: When the round ran.
        offered_mbps: Demand offered by all groups (served or not).
        carried_mbps: Demand actually allocated by the link model.
        unserved_mbps: Demand of groups with no usable path this round.
        active_groups: Groups that sent over at least one path.
        blackholed_groups: Groups with demand but no usable path.
        flow_rounds: End-host flows the round simulated (the throughput
            unit of the benchmark: flow-rounds per wall-clock second).
        max_link_utilization: Highest link load/capacity ratio observed.
        mean_latency_ms: Carried-demand-weighted path propagation latency
            (0.0 when nothing was carried).
    """

    time_ms: float
    offered_mbps: float
    carried_mbps: float
    unserved_mbps: float
    active_groups: int
    blackholed_groups: int
    flow_rounds: int
    max_link_utilization: float
    mean_latency_ms: float = 0.0

    @property
    def lost_mbps(self) -> float:
        """Return offered-but-not-carried demand (congestion + black holes)."""
        return max(0.0, self.offered_mbps - self.carried_mbps)


@dataclass
class RerouteRecord:
    """One flow group losing its path(s) to an event and re-selecting.

    Attributes:
        group_id: The affected flow group.
        broken_at_ms: When the scenario event invalidated the active path.
        cause: Stable trace label of the breaking event.
        flows: End-host flows the group represents.
        rerouted_at_ms: When the group found a replacement path (the next
            traffic round that could re-select), or ``None`` while it is
            still black-holed.
    """

    group_id: int
    broken_at_ms: float
    cause: str
    flows: int
    rerouted_at_ms: Optional[float] = None

    @property
    def rerouted(self) -> bool:
        """Return whether the group found a replacement path."""
        return self.rerouted_at_ms is not None

    @property
    def time_to_reroute_ms(self) -> Optional[float]:
        """Return the black-hole duration, or ``None`` while unrecovered."""
        if self.rerouted_at_ms is None:
            return None
        return self.rerouted_at_ms - self.broken_at_ms


@dataclass
class TrafficCollector:
    """Per-round goodput samples, reroute records and a deterministic trace."""

    samples: List[RoundSample] = field(default_factory=list)
    reroutes: List[RerouteRecord] = field(default_factory=list)
    trace: List[str] = field(default_factory=list)
    _open: Dict[int, RerouteRecord] = field(default_factory=dict)
    total_flow_rounds: int = 0

    # ------------------------------------------------------------------
    # recording (called by the engine)
    # ------------------------------------------------------------------
    def on_round(self, sample: RoundSample) -> None:
        """Record one completed traffic round."""
        self.samples.append(sample)
        self.total_flow_rounds += sample.flow_rounds
        self.trace.append(
            f"{sample.time_ms:.3f} round offered={sample.offered_mbps:.3f}"
            f" carried={sample.carried_mbps:.3f} unserved={sample.unserved_mbps:.3f}"
            f" active={sample.active_groups} blackholed={sample.blackholed_groups}"
            f" maxutil={sample.max_link_utilization:.4f}"
        )

    def on_break(self, group_id: int, now_ms: float, cause: str, flows: int) -> None:
        """Record a scenario event invalidating a group's active path."""
        if group_id in self._open:
            return  # already black-holed; keep the original break time
        record = RerouteRecord(
            group_id=group_id, broken_at_ms=now_ms, cause=cause, flows=flows
        )
        self._open[group_id] = record
        self.reroutes.append(record)
        self.trace.append(f"{now_ms:.3f} break group={group_id} cause={cause}")

    def on_backoff(self, group_id: int, now_ms: float, factor: float, loss: float) -> None:
        """Record a closed-loop demand adjustment of one flow group.

        Only called when the engine runs with closed-loop demand *and* a
        group's factor actually changes, so open-loop runs (the default)
        keep a bit-identical trace.
        """
        self.trace.append(
            f"{now_ms:.3f} backoff group={group_id}"
            f" factor={factor:.4f} loss={loss:.4f}"
        )

    def on_reroute(self, group_id: int, now_ms: float) -> None:
        """Record a black-holed group finding a replacement path."""
        record = self._open.pop(group_id, None)
        if record is None:
            return
        record.rerouted_at_ms = now_ms
        self.trace.append(
            f"{now_ms:.3f} reroute group={group_id}"
            f" ttr={record.time_to_reroute_ms:.3f}"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_blackholed(self, group_id: int) -> bool:
        """Return whether the group is currently without a usable path."""
        return group_id in self._open

    def goodput_series(self) -> List[Tuple[float, float]]:
        """Return the (time, carried Mbit/s) curve."""
        return [(sample.time_ms, sample.carried_mbps) for sample in self.samples]

    def open_blackholes(self) -> List[RerouteRecord]:
        """Return the groups still without a usable path."""
        return [record for record in self.reroutes if not record.rerouted]

    def mean_time_to_reroute_ms(self) -> Optional[float]:
        """Return the mean reroute latency over recovered groups."""
        times = [
            record.time_to_reroute_ms for record in self.reroutes if record.rerouted
        ]
        if not times:
            return None
        return sum(times) / len(times)

    def goodput_recovery_ms(
        self, event_time_ms: float, tolerance: float = 0.01
    ) -> Optional[float]:
        """Return how long goodput stayed depressed after an event.

        The pre-event baseline is the last sample strictly before
        ``event_time_ms`` (a round sharing the event's timestamp runs
        *after* it — the scheduler breaks ties FIFO and events are
        scheduled first); recovery is the first in-band sample (carried
        rate within ``tolerance``, relative, of the baseline) after the
        *last* dip — an in-band sample followed by another dip is a
        transient, not a recovery, so oscillating goodput dates the
        recovery after the oscillation settles.  ``None`` means goodput
        never dipped below the band, or has not recovered by the end of
        the recording.
        """
        baseline = None
        for sample in self.samples:
            if sample.time_ms < event_time_ms:
                baseline = sample.carried_mbps
            else:
                break
        if baseline is None or baseline <= 0.0:
            return None
        floor = baseline * (1.0 - tolerance)
        dipped = False
        recovered_at = None
        for sample in self.samples:
            if sample.time_ms < event_time_ms:
                continue
            if sample.carried_mbps < floor:
                # A dip voids any earlier recovery candidate: goodput must
                # stay in band for the rest of the recording to count.
                dipped = True
                recovered_at = None
            elif dipped and recovered_at is None:
                recovered_at = sample.time_ms
        if recovered_at is None:
            return None
        return recovered_at - event_time_ms

    def trace_text(self) -> str:
        """Return the deterministic trace as one newline-joined string."""
        return "\n".join(self.trace)

    def trace_digest(self) -> str:
        """Return the SHA-256 of the trace (for digest-pinned tests)."""
        return hashlib.sha256(self.trace_text().encode("utf-8")).hexdigest()
