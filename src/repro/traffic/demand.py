"""Traffic-matrix generators — who sends how much to whom.

A flow-level traffic simulation needs a demand model before it needs a
queueing model.  This module provides the classic inter-domain workload
shapes as deterministic, seeded generators:

* **uniform** — every ordered AS pair exchanges the same demand,
* **gravity** — demand between two ASes is proportional to the product of
  their "masses" (interface degree here, the standard proxy when real
  ingress/egress volumes are unavailable),
* **hotspot** — a gravity base load plus a configurable fraction of the
  total demand focused on one destination AS (flash crowd / CDN origin),
* **random** — seeded pairs with log-uniform demands for fuzzing.

Scalability comes from *flow aggregation*: a :class:`FlowGroup` represents
``flow_count`` identical end-host flows between one AS pair as a single
simulated object, so a matrix can describe millions of flows while the
engine iterates over a few thousand groups.  The per-flow rate of a group
is ``demand_mbps / flow_count``; max-min fairness in the link model is
weighted by ``flow_count``, which makes the aggregate behave exactly like
its member flows would individually.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.topology.graph import Topology


@dataclass(frozen=True)
class FlowGroup:
    """An aggregate of identical end-host flows between one AS pair.

    Attributes:
        group_id: Stable identifier (position in the matrix).
        source_as: AS the flows originate in.
        destination_as: AS the flows terminate in.
        demand_mbps: Total offered rate of the whole aggregate.
        flow_count: Number of end-host flows the aggregate represents;
            the max-min allocation weights the group by this count.
    """

    group_id: int
    source_as: int
    destination_as: int
    demand_mbps: float
    flow_count: int = 1

    def __post_init__(self) -> None:
        if self.source_as == self.destination_as:
            raise ConfigurationError(
                f"flow group {self.group_id} has identical endpoints ({self.source_as})"
            )
        if self.demand_mbps <= 0.0:
            raise ConfigurationError(
                f"flow group {self.group_id} demand must be positive, got {self.demand_mbps}"
            )
        if self.flow_count < 1:
            raise ConfigurationError(
                f"flow group {self.group_id} must represent at least one flow"
            )

    @property
    def per_flow_mbps(self) -> float:
        """Return the offered rate of one member flow."""
        return self.demand_mbps / self.flow_count


@dataclass(frozen=True)
class TrafficMatrix:
    """An immutable collection of flow groups (the demand of one run)."""

    groups: Tuple[FlowGroup, ...]

    @property
    def total_flows(self) -> int:
        """Return the number of end-host flows the matrix represents."""
        return sum(group.flow_count for group in self.groups)

    @property
    def total_demand_mbps(self) -> float:
        """Return the aggregate offered rate."""
        return sum(group.demand_mbps for group in self.groups)

    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Return the distinct ordered (source, destination) pairs."""
        seen: Dict[Tuple[int, int], None] = {}
        for group in self.groups:
            seen.setdefault((group.source_as, group.destination_as), None)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)


def _split_counts(total_flows: int, parts: int) -> List[int]:
    """Split ``total_flows`` into ``parts`` near-equal positive counts."""
    base, extra = divmod(total_flows, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


def _build_matrix(
    entries: Sequence[Tuple[int, int, float]],
    total_flows: int,
) -> TrafficMatrix:
    """Turn (source, destination, demand) rows into an aggregated matrix.

    Flows are distributed over the entries proportionally to demand (at
    least one flow per entry), so the per-flow rate stays roughly uniform
    across the matrix.
    """
    if not entries:
        return TrafficMatrix(groups=())
    if total_flows < len(entries):
        raise ConfigurationError(
            f"need at least one flow per pair: {total_flows} flows for {len(entries)} pairs"
        )
    total_demand = sum(demand for _src, _dst, demand in entries)
    if total_demand <= 0.0:
        raise ConfigurationError("a traffic matrix needs positive total demand")
    groups: List[FlowGroup] = []
    assigned = 0
    for index, (source_as, destination_as, demand) in enumerate(entries):
        if index == len(entries) - 1:
            count = total_flows - assigned
        else:
            count = max(1, round(total_flows * demand / total_demand))
            count = min(count, total_flows - assigned - (len(entries) - 1 - index))
        assigned += count
        groups.append(
            FlowGroup(
                group_id=index,
                source_as=source_as,
                destination_as=destination_as,
                demand_mbps=demand,
                flow_count=count,
            )
        )
    return TrafficMatrix(groups=tuple(groups))


def _ordered_pairs(
    as_ids: Sequence[int], max_pairs: Optional[int], rng: Optional[random.Random]
) -> List[Tuple[int, int]]:
    """Return ordered AS pairs, optionally sampled down to ``max_pairs``."""
    pairs = [(a, b) for a in as_ids for b in as_ids if a != b]
    if max_pairs is not None and len(pairs) > max_pairs:
        sampler = rng or random.Random(0)
        pairs = sampler.sample(pairs, k=max_pairs)
        pairs.sort()
    return pairs


def uniform_matrix(
    topology: Topology,
    total_demand_mbps: float,
    total_flows: int,
    max_pairs: Optional[int] = None,
    seed: int = 0,
) -> TrafficMatrix:
    """Every ordered AS pair offers the same demand.

    Args:
        topology: Source of the AS set.
        total_demand_mbps: Aggregate demand spread evenly over the pairs.
        total_flows: End-host flows to represent (aggregated per pair).
        max_pairs: Optional cap on the number of pairs (seeded sample).
        seed: Seed for the pair sample when ``max_pairs`` cuts it down.
    """
    pairs = _ordered_pairs(topology.as_ids(), max_pairs, random.Random(seed))
    if not pairs:
        return TrafficMatrix(groups=())
    per_pair = total_demand_mbps / len(pairs)
    return _build_matrix([(a, b, per_pair) for a, b in pairs], total_flows)


def gravity_matrix(
    topology: Topology,
    total_demand_mbps: float,
    total_flows: int,
    max_pairs: Optional[int] = None,
    seed: int = 0,
) -> TrafficMatrix:
    """Gravity model: demand ∝ degree(source) × degree(destination).

    The interface degree stands in for an AS's traffic volume, the usual
    proxy when no measured ingress/egress totals exist; the matrix is then
    normalised so the aggregate equals ``total_demand_mbps``.
    """
    pairs = _ordered_pairs(topology.as_ids(), max_pairs, random.Random(seed))
    if not pairs:
        return TrafficMatrix(groups=())
    mass = {as_id: float(max(1, topology.degree_of(as_id))) for as_id in topology.as_ids()}
    raw = [(a, b, mass[a] * mass[b]) for a, b in pairs]
    scale = total_demand_mbps / sum(weight for _a, _b, weight in raw)
    return _build_matrix([(a, b, weight * scale) for a, b, weight in raw], total_flows)


def hotspot_matrix(
    topology: Topology,
    total_demand_mbps: float,
    total_flows: int,
    hotspot_as: int,
    hotspot_fraction: float = 0.5,
    max_pairs: Optional[int] = None,
    seed: int = 0,
) -> TrafficMatrix:
    """Gravity base load plus a demand spike towards one destination AS.

    ``hotspot_fraction`` of the total demand is redirected to flows whose
    destination is ``hotspot_as`` (every other AS sends an equal extra
    share), modelling a flash crowd at a content origin.
    """
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ConfigurationError(
            f"hotspot fraction must be within [0, 1], got {hotspot_fraction}"
        )
    if hotspot_as not in topology:
        raise ConfigurationError(f"hotspot AS {hotspot_as} is not in the topology")
    demand_by_pair: Dict[Tuple[int, int], float] = {}
    if hotspot_fraction < 1.0:
        base = gravity_matrix(
            topology,
            total_demand_mbps * (1.0 - hotspot_fraction),
            # Flows are re-split below; one flow per group as a placeholder.
            total_flows=max(
                1, len(_ordered_pairs(topology.as_ids(), max_pairs, random.Random(seed)))
            ),
            max_pairs=max_pairs,
            seed=seed,
        )
        demand_by_pair = {
            (group.source_as, group.destination_as): group.demand_mbps for group in base
        }
    sources = [a for a in topology.as_ids() if a != hotspot_as]
    spike_per_source = total_demand_mbps * hotspot_fraction / max(1, len(sources))
    for source_as in sources:
        key = (source_as, hotspot_as)
        demand_by_pair[key] = demand_by_pair.get(key, 0.0) + spike_per_source
    entries = [(a, b, demand) for (a, b), demand in sorted(demand_by_pair.items())]
    return _build_matrix(entries, total_flows)


def random_matrix(
    topology: Topology,
    pair_count: int,
    total_flows: int,
    rng: random.Random,
    demand_range_mbps: Tuple[float, float] = (1.0, 1000.0),
) -> TrafficMatrix:
    """Seeded random demand: ``pair_count`` distinct pairs, log-uniform rates.

    The caller owns the ``rng`` (determinism contract, as with the scenario
    event generators).
    """
    low, high = demand_range_mbps
    if low <= 0.0 or high < low:
        raise ConfigurationError(f"invalid demand range {demand_range_mbps}")
    pairs = _ordered_pairs(topology.as_ids(), None, None)
    if pair_count > len(pairs):
        pair_count = len(pairs)
    chosen = rng.sample(pairs, k=pair_count)
    chosen.sort()
    entries = [
        (a, b, math.exp(rng.uniform(math.log(low), math.log(high))))
        for a, b in chosen
    ]
    return _build_matrix(entries, total_flows)
