"""End-host path-selection policies for the traffic engine.

The control plane registers *sets* of paths per destination, tagged by the
criteria that selected them (paper §V-D); what traffic actually flows over
depends on how end hosts choose.  This module provides the concrete
:data:`~repro.dataplane.endhost.PathPolicy` implementations the traffic
engine plugs into :meth:`EndHost.select_weighted`:

* :class:`LatencyGreedyPolicy` — all demand on the lowest-latency path,
* :class:`BandwidthAwarePolicy` — all demand on the path with the largest
  bottleneck bandwidth (ties broken by latency),
* :class:`EcmpPolicy` — split demand over the ``k`` best paths, equally or
  proportional to bottleneck bandwidth (multipath transports),
* :class:`TagPinnedPolicy` — restrict candidates to paths registered under
  a criteria tag (an application trusting only one RAC's optimization),
  then delegate to an inner policy.

Every policy is deterministic: candidates are pre-sorted by a stable
metric/digest key, so two runs over the same path service pick the same
paths in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.databases import RegisteredPath
from repro.dataplane.endhost import PathPolicy
from repro.exceptions import ConfigurationError

#: One policy decision: the chosen path and its share of the demand.
WeightedPath = Tuple[RegisteredPath, float]


def _by_latency(path: RegisteredPath) -> Tuple[float, int, str]:
    segment = path.segment
    return (segment.total_latency_ms(), segment.hop_count, segment.digest())


def _by_bandwidth(path: RegisteredPath) -> Tuple[float, float, str]:
    segment = path.segment
    return (-segment.bottleneck_bandwidth_mbps(), segment.total_latency_ms(), segment.digest())


@dataclass(frozen=True)
class LatencyGreedyPolicy:
    """Send everything over the single lowest-latency path."""

    def __call__(self, candidates: Sequence[RegisteredPath]) -> List[WeightedPath]:
        if not candidates:
            return []
        best = min(candidates, key=_by_latency)
        return [(best, 1.0)]


@dataclass(frozen=True)
class BandwidthAwarePolicy:
    """Send everything over the path with the widest bottleneck."""

    def __call__(self, candidates: Sequence[RegisteredPath]) -> List[WeightedPath]:
        if not candidates:
            return []
        best = min(candidates, key=_by_bandwidth)
        return [(best, 1.0)]


@dataclass(frozen=True)
class EcmpPolicy:
    """Split demand over the ``max_paths`` best paths (multipath).

    Attributes:
        max_paths: Upper bound on simultaneously used paths.
        prefer: ``"latency"`` ranks candidates latency-first, ``"bandwidth"``
            bottleneck-first.
        weight_by_bandwidth: When set, shares are proportional to each
            path's bottleneck bandwidth instead of equal.
    """

    max_paths: int = 2
    prefer: str = "latency"
    weight_by_bandwidth: bool = False

    def __post_init__(self) -> None:
        if self.max_paths < 1:
            raise ConfigurationError(f"max_paths must be positive, got {self.max_paths}")
        if self.prefer not in ("latency", "bandwidth"):
            raise ConfigurationError(f"unknown ECMP preference {self.prefer!r}")

    def __call__(self, candidates: Sequence[RegisteredPath]) -> List[WeightedPath]:
        if not candidates:
            return []
        key = _by_latency if self.prefer == "latency" else _by_bandwidth
        chosen = sorted(candidates, key=key)[: self.max_paths]
        if self.weight_by_bandwidth:
            widths = [path.segment.bottleneck_bandwidth_mbps() for path in chosen]
            total = sum(widths)
            if total > 0.0:
                return [
                    (path, width / total) for path, width in zip(chosen, widths)
                ]
        share = 1.0 / len(chosen)
        return [(path, share) for path in chosen]


@dataclass(frozen=True)
class TagPinnedPolicy:
    """Only use paths registered under one criteria tag.

    Attributes:
        tag: Required criteria tag (e.g. ``"hd"`` or ``"dob300"``).
        inner: Policy applied to the tagged candidates.
        fallback: When no tagged path exists, fall back to the full
            candidate set instead of sending nothing.
    """

    tag: str
    inner: PathPolicy = field(default_factory=LatencyGreedyPolicy)
    fallback: bool = False

    def __call__(self, candidates: Sequence[RegisteredPath]) -> List[WeightedPath]:
        tagged = [path for path in candidates if self.tag in path.criteria_tags]
        if not tagged and self.fallback:
            tagged = list(candidates)
        return self.inner(tagged)


def prefer_clean(
    candidates: Sequence[RegisteredPath],
    loss_of,
    threshold: float,
) -> List[RegisteredPath]:
    """Prefer paths whose observed silent loss stays under ``threshold``.

    The closed-loop demand filter: ``loss_of(path)`` is the end host's
    loss estimate for one candidate (see
    :meth:`repro.simulation.failures.LinkState.silent_loss`).  Candidates
    at or under the threshold win; when *every* candidate is lossy the
    full set is returned unchanged — a degraded path still beats sending
    nothing, the back-off happens on the demand side instead.
    """
    clean = [path for path in candidates if loss_of(path) <= threshold]
    return clean if clean else list(candidates)
