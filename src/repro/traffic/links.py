"""Capacity-aware link model with weighted max-min fair allocation.

The one-packet :class:`~repro.dataplane.network.DataPlaneNetwork` answers
"is this path usable?"; this module answers "how much traffic does each
flow actually get?".  Each inter-domain link has a finite capacity (the
topology's ``bandwidth_mbps``, optionally scaled), and every traffic round
the engine hands the model one :class:`PathLoad` per distinct forwarding
path: the links it crosses, the total demand routed onto it and the number
of end-host flows that demand aggregates.

Allocation is **weighted max-min fairness** via progressive filling: the
per-flow rate of every unfrozen path rises uniformly until either a path's
demand is satisfied (it freezes at its demand) or a link saturates (every
path crossing it freezes at the current rate).  A path batching ``n``
flows counts ``n`` times in each link's weight, so aggregated flows
receive exactly the allocation they would get individually — this is what
lets the engine simulate millions of flows through a few thousand
aggregates.

The implementation is the subsystem's hot loop and stays allocation-free
where it matters: per-link running sums live in plain dicts keyed by the
integer link index (no numpy dependency), weights are updated
incrementally as paths freeze, and each filling iteration freezes at least
one path or saturates at least one link, bounding the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.topology.entities import LinkID
from repro.topology.graph import Topology

#: Relative slack when deciding that a link is saturated or a demand met.
_EPSILON = 1e-9


@dataclass(frozen=True)
class PathLoad:
    """Aggregate demand routed over one concrete forwarding path.

    Attributes:
        key: Opaque identifier the caller uses to find its allocation
            (the engine uses the path digest).
        link_indices: Indices (from :meth:`CapacityLinkModel.link_index`)
            of the links the path traverses.
        demand_mbps: Total offered rate on this path.
        weight: Number of end-host flows the demand aggregates (the
            max-min weight); fractional weights arise when a group ECMP-
            splits its flows over several paths.
    """

    key: str
    link_indices: Tuple[int, ...]
    demand_mbps: float
    weight: float = 1.0


@dataclass
class AllocationResult:
    """Outcome of one max-min allocation round.

    Attributes:
        carried_mbps: Per path-load key, the rate actually allocated.
        link_load_mbps: Per link index, the carried traffic on the link.
        offered_mbps: Total demand offered this round.
        total_carried_mbps: Total demand satisfied this round.
    """

    carried_mbps: Dict[str, float]
    link_load_mbps: Dict[int, float]
    offered_mbps: float
    total_carried_mbps: float

    @property
    def lost_mbps(self) -> float:
        """Return the demand that found no capacity this round."""
        return max(0.0, self.offered_mbps - self.total_carried_mbps)


class CapacityLinkModel:
    """Finite-capacity view of a topology's inter-domain links.

    Args:
        topology: Source of the link set and their nominal bandwidths.
        capacity_scale: Multiplier applied to every link capacity (e.g.
            ``0.1`` to provision a tenth of nominal and force congestion).
        default_capacity_mbps: Fallback for links without bandwidth.
    """

    def __init__(
        self,
        topology: Topology,
        capacity_scale: float = 1.0,
        default_capacity_mbps: float = 10_000.0,
    ) -> None:
        if capacity_scale <= 0.0:
            raise ConfigurationError(f"capacity scale must be positive, got {capacity_scale}")
        self.topology = topology
        self.capacity_scale = capacity_scale
        self._index_of: Dict[LinkID, int] = {}
        self._link_ids: List[LinkID] = []
        self._capacity: List[float] = []
        self._latency_ms: List[float] = []
        for link_id in topology.link_ids():
            link = topology.links[link_id]
            self._index_of[link_id] = len(self._capacity)
            self._link_ids.append(link_id)
            bandwidth = link.bandwidth_mbps or default_capacity_mbps
            self._capacity.append(bandwidth * capacity_scale)
            self._latency_ms.append(link.latency_ms)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def link_index(self, link_id: LinkID) -> int:
        """Return the dense index of ``link_id`` (for :class:`PathLoad`)."""
        try:
            return self._index_of[link_id]
        except KeyError:
            raise ConfigurationError(f"unknown link {link_id}") from None

    def indices_for(self, links: Sequence[LinkID]) -> Tuple[int, ...]:
        """Map a path's link identifiers to their dense indices."""
        return tuple(self._index_of[link] for link in links)

    def link_id_of(self, index: int) -> LinkID:
        """Return the link identifier at ``index`` (inverse of :meth:`link_index`)."""
        try:
            return self._link_ids[index]
        except IndexError:
            raise ConfigurationError(f"unknown link index {index}") from None

    def capacity_of(self, index: int) -> float:
        """Return the provisioned capacity of link ``index`` in Mbit/s."""
        return self._capacity[index]

    def path_latency_ms(self, link_indices: Sequence[int]) -> float:
        """Return the propagation latency over the given links."""
        return sum(self._latency_ms[index] for index in link_indices)

    @property
    def num_links(self) -> int:
        """Return the number of modelled links."""
        return len(self._capacity)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, loads: Sequence[PathLoad]) -> AllocationResult:
        """Run one weighted max-min fair allocation over ``loads``.

        Returns per-key carried rates and per-link loads.  Paths with zero
        weight or demand are carried at zero; paths whose links all have
        spare capacity are carried at their full demand.
        """
        carried: Dict[str, float] = {}
        link_load: Dict[int, float] = {}
        offered = 0.0
        if not loads:
            return AllocationResult(carried, link_load, 0.0, 0.0)

        # Per-link residual capacity and active (unfrozen) weight, touching
        # only the links this round actually uses.
        remaining: Dict[int, float] = {}
        active_weight: Dict[int, float] = {}
        active: Dict[int, PathLoad] = {}
        for slot, load in enumerate(loads):
            offered += load.demand_mbps
            if load.weight <= 0 or load.demand_mbps <= 0.0:
                carried[load.key] = carried.get(load.key, 0.0)
                continue
            active[slot] = load
            for index in load.link_indices:
                if index not in remaining:
                    remaining[index] = self._capacity[index]
                    active_weight[index] = 0
                active_weight[index] += load.weight
        rate = 0.0  # current per-flow rate of every unfrozen path
        total_carried = 0.0

        while active:
            # How far can the per-flow rate rise before a link saturates?
            delta_link = None
            for index, weight in active_weight.items():
                if weight <= 0:
                    continue
                headroom = remaining[index] / weight
                if delta_link is None or headroom < delta_link:
                    delta_link = headroom
            # ... and before some path's demand is fully satisfied?
            delta_demand = min(
                load.demand_mbps / load.weight - rate for load in active.values()
            )
            delta = delta_demand if delta_link is None else min(delta_link, delta_demand)
            delta = max(0.0, delta)
            rate += delta

            if delta > 0.0:
                for index, weight in active_weight.items():
                    if weight > 0:
                        remaining[index] -= weight * delta

            frozen: List[int] = []
            for slot, load in active.items():
                per_flow_cap = load.demand_mbps / load.weight
                if per_flow_cap <= rate * (1.0 + _EPSILON) + _EPSILON:
                    allocation = load.demand_mbps  # demand met
                elif any(
                    remaining[index] <= self._capacity[index] * _EPSILON + _EPSILON
                    for index in load.link_indices
                ):
                    allocation = rate * load.weight  # a link on the path saturated
                else:
                    continue
                frozen.append(slot)
                carried[load.key] = carried.get(load.key, 0.0) + allocation
                total_carried += allocation
                for index in load.link_indices:
                    link_load[index] = link_load.get(index, 0.0) + allocation
                    active_weight[index] -= load.weight
            if not frozen:
                # Numerical guard: progressive filling always freezes
                # something when delta comes from a demand or a saturated
                # link; if rounding prevented that, freeze the tightest
                # path at the current rate to guarantee termination.
                slot, load = min(
                    active.items(), key=lambda item: item[1].demand_mbps / item[1].weight
                )
                frozen.append(slot)
                allocation = min(load.demand_mbps, rate * load.weight)
                carried[load.key] = carried.get(load.key, 0.0) + allocation
                total_carried += allocation
                for index in load.link_indices:
                    link_load[index] = link_load.get(index, 0.0) + allocation
                    active_weight[index] -= load.weight
            for slot in frozen:
                del active[slot]

        return AllocationResult(
            carried_mbps=carried,
            link_load_mbps=link_load,
            offered_mbps=offered,
            total_carried_mbps=total_carried,
        )

    def utilization(self, result: AllocationResult) -> Dict[int, float]:
        """Return per-link utilization (load / capacity) of one round."""
        return {
            index: load / self._capacity[index] if self._capacity[index] > 0 else 0.0
            for index, load in result.link_load_mbps.items()
        }
