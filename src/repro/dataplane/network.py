"""End-to-end forwarding simulation over a topology.

The :class:`DataPlaneNetwork` walks a packet along its packet-carried path,
checking at every step that the egress interface named by the hop field is
actually attached to a link leading to the next AS on the path, and
accumulating the real link latencies plus intra-AS transit latencies.  The
resulting :class:`DeliveryReport` lets tests and examples confirm that
control-plane-discovered paths are usable and that their predicted metrics
match what the data plane experiences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dataplane.packet import Packet
from repro.dataplane.router import BorderRouter
from repro.exceptions import ForwardingError
from repro.simulation.failures import LinkState
from repro.topology.graph import Topology
from repro.topology.intra_domain import IntraDomainRegistry


@dataclass
class DeliveryReport:
    """Outcome of forwarding one packet end to end."""

    delivered: bool
    latency_ms: float
    as_path: Tuple[int, ...]
    hops_traversed: int
    failure_reason: Optional[str] = None


@dataclass
class DataPlaneNetwork:
    """Forwarding fabric over a topology.

    Attributes:
        topology: The global topology (links and latencies).
        intra_domain: Per-AS intra-domain latency models used to charge the
            transit latency between an AS's ingress and egress interfaces.
        link_state: Optional live link/AS availability shared with the
            scenario engine; packets crossing a failed link (or an offline
            AS) are dropped instead of silently delivered.  ``None`` keeps
            the static always-up behaviour.
    """

    topology: Topology
    intra_domain: IntraDomainRegistry = field(default_factory=IntraDomainRegistry)
    routers: Dict[int, BorderRouter] = field(default_factory=dict)
    link_state: Optional[LinkState] = None

    def router_for(self, as_id: int) -> BorderRouter:
        """Return (creating on demand) the border router of ``as_id``."""
        router = self.routers.get(as_id)
        if router is None:
            as_info = self.topology.as_info(as_id)
            router = BorderRouter(
                as_id=as_id, local_interfaces=tuple(as_info.interface_ids())
            )
            self.routers[as_id] = router
        return router

    def deliver(self, packet: Packet) -> DeliveryReport:
        """Forward ``packet`` from its source AS to its destination AS.

        The walk validates the packet-carried state against the topology at
        every step; any inconsistency aborts forwarding with a failure
        report rather than an exception, mirroring how a router would drop
        the packet.
        """
        arrived_on: Optional[int] = None
        hops_traversed = 0
        visited: Set[int] = set()
        try:
            if self.link_state is not None and not self.link_state.is_as_up(
                packet.current_as
            ):
                raise ForwardingError(f"source AS {packet.current_as} is offline")
            while True:
                router = self.router_for(packet.current_as)
                if packet.current_as in visited:
                    raise ForwardingError(
                        f"forwarding loop: packet revisited AS {packet.current_as}"
                    )
                visited.add(packet.current_as)
                egress = router.forward(packet, arrived_on=arrived_on)
                hops_traversed += 1
                if arrived_on is not None and egress is not None:
                    model = self.intra_domain.model_for(
                        self.topology.as_info(packet.current_as)
                    )
                    packet.add_latency(model.latency_ms(arrived_on, egress[1]))
                if egress is None:
                    return DeliveryReport(
                        delivered=True,
                        latency_ms=packet.accumulated_latency_ms,
                        as_path=packet.path.as_path(),
                        hops_traversed=hops_traversed,
                    )
                link = self.topology.link_of_interface(egress)
                remote_as, remote_interface = link.other_end(egress)
                if (
                    self.link_state is not None
                    and self.link_state.impaired()
                    and not self.link_state.link_available(link.key)
                ):
                    raise ForwardingError(
                        f"link {link.key} between AS {egress[0]} and AS {remote_as} is down"
                    )
                next_hop = packet.advance()
                if next_hop.as_id != remote_as:
                    raise ForwardingError(
                        f"hop field expects AS {next_hop.as_id} after AS {egress[0]}, "
                        f"but the link leads to AS {remote_as}"
                    )
                packet.add_latency(link.latency_ms)
                arrived_on = remote_interface
        except ForwardingError as exc:
            return DeliveryReport(
                delivered=False,
                latency_ms=packet.accumulated_latency_ms,
                as_path=packet.path.as_path(),
                hops_traversed=hops_traversed,
                failure_reason=str(exc),
            )
