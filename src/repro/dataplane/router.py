"""Border-router forwarding.

A SCION border router keeps no inter-domain forwarding state: it reads the
packet's current hop field, checks that the packet actually arrived on the
interface the hop field names (path authorization in the real system, a
consistency check here) and pushes the packet out of the egress interface
named by the hop field — or hands it to the local delivery path when the
hop field has no egress interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dataplane.packet import Packet
from repro.exceptions import ForwardingError
from repro.topology.entities import InterfaceID


@dataclass
class BorderRouter:
    """The (collective) border-router function of one AS.

    The reproduction models all border routers of an AS as a single
    forwarding function, which is sufficient because hop fields identify
    interfaces, not individual router boxes.

    Attributes:
        as_id: The AS this router forwards for.
        local_interfaces: The interfaces the AS owns (for validation).
    """

    as_id: int
    local_interfaces: Tuple[int, ...]

    def forward(
        self, packet: Packet, arrived_on: Optional[int]
    ) -> Optional[InterfaceID]:
        """Forward ``packet`` one step.

        Args:
            packet: The packet to forward; its cursor must point at this AS.
            arrived_on: Local interface the packet arrived on, or ``None``
                if the packet was injected by a local end host.

        Returns:
            The local ``(as_id, egress interface)`` to push the packet out
            of, or ``None`` when the packet is delivered locally (this AS is
            the destination).

        Raises:
            ForwardingError: If the hop field is inconsistent with the AS,
                the arrival interface, or the local interface set.
        """
        hop = packet.current_hop
        if hop.as_id != self.as_id:
            raise ForwardingError(
                f"packet cursor points at AS {hop.as_id} but reached AS {self.as_id}"
            )
        if hop.ingress_interface != arrived_on:
            raise ForwardingError(
                f"packet arrived on interface {arrived_on} of AS {self.as_id}, "
                f"but its hop field authorizes ingress {hop.ingress_interface}"
            )
        if hop.egress_interface is None:
            return None
        if hop.egress_interface not in self.local_interfaces:
            raise ForwardingError(
                f"hop field names egress interface {hop.egress_interface}, "
                f"which AS {self.as_id} does not own"
            )
        return (self.as_id, hop.egress_interface)
