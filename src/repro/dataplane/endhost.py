"""Endpoint path selection.

In a path-aware network the endpoints choose among the paths the control
plane discovered (paper §III): an end host queries its AS's path service
for paths to a destination AS, receives them together with their
performance metadata and criteria tags, and picks the path that best fits
the application at hand.  :class:`EndHost` implements that workflow on top
of the :class:`~repro.core.databases.PathService` and the data-plane types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.criteria import CriteriaSet
from repro.core.databases import PathService, RegisteredPath
from repro.core.query import PathQueryFrontend
from repro.dataplane.packet import Packet
from repro.dataplane.path import ForwardingPath, forwarding_path_from_segment
from repro.exceptions import DataPlaneError

#: A path-selection policy: maps the candidate registered paths to an
#: ordered list of ``(path, weight)`` pairs — the paths traffic should use
#: and the fraction of demand each should carry (weights need not be
#: normalised).  Concrete policies (latency-greedy, bandwidth-aware, ECMP
#: splitting, criteria-tag pinning) live in :mod:`repro.traffic.selection`.
PathPolicy = Callable[[Sequence[RegisteredPath]], List[Tuple[RegisteredPath, float]]]


@dataclass(frozen=True)
class PathSelectionPreference:
    """How an application wants its paths chosen.

    Attributes:
        criteria_set: Ranking of candidate paths.
        required_tags: If non-empty, only paths registered under at least
            one of these criteria tags are considered (e.g. an application
            may trust only the ``"dob300"`` RAC's paths).
    """

    criteria_set: CriteriaSet
    required_tags: Tuple[str, ...] = ()

    def admissible(self, path: RegisteredPath) -> bool:
        """Return whether ``path`` may be considered at all."""
        if self.required_tags and not any(tag in path.criteria_tags for tag in self.required_tags):
            return False
        return self.criteria_set.admits(path.segment)


@dataclass
class EndHost:
    """An endpoint inside one AS.

    Attributes:
        host_id: Opaque identifier (used in packets and reports).
        as_id: The AS the host lives in.
        path_service: The AS's path service.
        query_frontend: When set, path lookups go through the AS's serving
            tier (:class:`~repro.core.query.PathQueryFrontend`) — cached,
            expiry-aware, invalidated on withdrawal — instead of reaching
            into the path service directly.
    """

    host_id: str
    as_id: int
    path_service: PathService
    query_frontend: Optional[PathQueryFrontend] = None

    def available_paths(self, destination_as: int) -> List[RegisteredPath]:
        """Return every registered path towards ``destination_as``."""
        frontend = self.query_frontend
        if frontend is not None:
            return list(frontend.paths(destination_as))
        return self.path_service.paths_to(destination_as)

    def select_paths(
        self,
        destination_as: int,
        preference: PathSelectionPreference,
        limit: int = 1,
    ) -> List[RegisteredPath]:
        """Return the best ``limit`` paths for an application preference."""
        candidates = [
            path
            for path in self.available_paths(destination_as)
            if preference.admissible(path)
        ]
        ranked = preference.criteria_set.rank([path.segment for path in candidates])
        by_digest = {path.segment.digest(): path for path in candidates}
        ordered = [by_digest[segment.digest()] for segment in ranked if segment.digest() in by_digest]
        return ordered[: max(0, limit)]

    def select_weighted(
        self, destination_as: int, policy: PathPolicy
    ) -> List[Tuple[RegisteredPath, float]]:
        """Apply a :data:`PathPolicy` to the registered paths.

        This is the traffic-engine entry point: unlike
        :meth:`select_paths` (one criteria-ranked path set), a policy can
        split demand over several paths (ECMP-style multipath) by returning
        per-path weights.
        """
        return policy(self.available_paths(destination_as))

    def build_packet(
        self,
        destination_as: int,
        preference: PathSelectionPreference,
        destination_host: str = "dst",
        payload: bytes = b"",
    ) -> Packet:
        """Select the best path and build a packet that follows it.

        Raises:
            DataPlaneError: If no admissible path to the destination exists.
        """
        selected = self.select_paths(destination_as, preference, limit=1)
        if not selected:
            raise DataPlaneError(
                f"host {self.host_id} in AS {self.as_id} has no admissible path "
                f"to AS {destination_as} for criteria {preference.criteria_set.name!r}"
            )
        forwarding_path = forwarding_path_from_segment(selected[0].segment)
        return Packet(
            path=forwarding_path,
            source_host=self.host_id,
            destination_host=destination_host,
            payload=payload,
        )

    def paths_by_tag(self, destination_as: int, tag: str) -> List[RegisteredPath]:
        """Return the paths to ``destination_as`` optimized for criteria ``tag``."""
        return [
            path
            for path in self.available_paths(destination_as)
            if tag in path.criteria_tags
        ]
