"""Multipath usage of discovered paths.

The ultimate goal of multi-criteria path optimization is that traffic can
actually *use* the diverse paths (paper §II-C, "Usability").  This module
provides the small data-plane layer that applications such as multipath
transports or fast-failover tunnels need on top of the path service:

* :class:`MultipathSelector` picks a set of maximally link-disjoint paths
  from the registered candidates (greedy, the same heuristic the HD
  algorithm applies control-plane side), and
* :class:`FailoverForwarder` sends packets over the primary path and falls
  back to the next disjoint path when failures (as modelled by
  :class:`~repro.simulation.failures.LinkFailureInjector`) break it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.databases import PathService, RegisteredPath
from repro.dataplane.network import DataPlaneNetwork, DeliveryReport
from repro.dataplane.packet import Packet
from repro.dataplane.path import ForwardingPath, forwarding_path_from_segment
from repro.exceptions import DataPlaneError
from repro.simulation.failures import LinkFailureInjector, LinkState
from repro.topology.entities import LinkID


@dataclass
class MultipathSelector:
    """Select a maximally disjoint subset of the registered paths.

    Attributes:
        path_service: The local AS's path service.
        link_state: Optional live availability; paths crossing a currently
            failed link (or offline AS) are excluded up front.
    """

    path_service: PathService
    link_state: Optional[LinkState] = None

    def disjoint_paths(
        self,
        destination_as: int,
        max_paths: int = 4,
        required_tags: Sequence[str] = (),
        now_ms: Optional[float] = None,
    ) -> List[RegisteredPath]:
        """Return up to ``max_paths`` registered paths with minimal link overlap.

        Candidates are considered in ascending (hop count, latency) order;
        each accepted path adds its links to a covered set and subsequent
        candidates are scored by how many covered links they reuse.
        Passing ``now_ms`` additionally drops paths whose segments have
        expired (a stale path service must not feed dead tunnels to a
        multipath transport).
        """
        candidates = [
            path
            for path in self.path_service.paths_to(destination_as)
            if not required_tags or any(tag in path.criteria_tags for tag in required_tags)
        ]
        if now_ms is not None:
            candidates = [
                path for path in candidates if not path.segment.is_expired(now_ms)
            ]
        if self.link_state is not None and self.link_state.impaired():
            candidates = [
                path
                for path in candidates
                if self.link_state.path_available(path.segment.links())
            ]
        candidates.sort(
            key=lambda path: (path.segment.hop_count, path.segment.total_latency_ms())
        )
        selected: List[RegisteredPath] = []
        covered: Set[LinkID] = set()
        remaining = list(candidates)
        while remaining and len(selected) < max_paths:
            best = min(
                remaining,
                key=lambda path: (
                    sum(1 for link in path.segment.links() if link in covered),
                    path.segment.hop_count,
                    path.segment.total_latency_ms(),
                ),
            )
            remaining.remove(best)
            selected.append(best)
            covered.update(best.segment.links())
        return selected


@dataclass
class FailoverReport:
    """Outcome of a failover-capable delivery attempt."""

    delivered: bool
    attempts: int
    used_path_index: Optional[int]
    delivery: Optional[DeliveryReport]


@dataclass
class FailoverForwarder:
    """Send packets over a disjoint path set with automatic failover.

    Attributes:
        network: The forwarding fabric.
        paths: Ordered candidate paths (primary first).
        failure_injector: Optional failure model consulted before sending;
            paths whose links are known-failed are skipped proactively, and
            deliveries that fail reactively trigger the next path.
    """

    network: DataPlaneNetwork
    paths: Sequence[RegisteredPath]
    failure_injector: Optional[LinkFailureInjector] = None

    def deliver(self, source_host: str = "src", destination_host: str = "dst") -> FailoverReport:
        """Attempt delivery over the path set, failing over as needed."""
        if not self.paths:
            raise DataPlaneError("failover forwarder has no paths to use")
        attempts = 0
        for index, registered in enumerate(self.paths):
            segment = registered.segment
            if self.failure_injector is not None and not self.failure_injector.path_survives(
                segment.links()
            ):
                continue
            attempts += 1
            packet = Packet(
                path=forwarding_path_from_segment(segment),
                source_host=source_host,
                destination_host=destination_host,
            )
            report = self.network.deliver(packet)
            if report.delivered:
                return FailoverReport(
                    delivered=True, attempts=attempts, used_path_index=index, delivery=report
                )
        return FailoverReport(delivered=False, attempts=attempts, used_path_index=None, delivery=None)

    def usable_path_count(self) -> int:
        """Return how many of the paths currently avoid every failed link."""
        if self.failure_injector is None:
            return len(self.paths)
        return sum(
            1 for path in self.paths if self.failure_injector.path_survives(path.segment.links())
        )
