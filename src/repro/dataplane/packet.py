"""Packets with packet-carried forwarding state.

A SCION packet carries its complete inter-domain forwarding path in the
header; routers advance a cursor through the hop fields instead of looking
anything up.  The :class:`Packet` here models exactly the fields the
reproduction's forwarding simulation needs: the path, the cursor, source
and destination endpoints and an opaque payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dataplane.path import ForwardingPath, HopField
from repro.exceptions import ForwardingError


@dataclass
class Packet:
    """A data-plane packet.

    Attributes:
        path: The packet-carried forwarding path.
        source_host: Identifier of the sending host (opaque).
        destination_host: Identifier of the receiving host (opaque).
        payload: Opaque payload (its size only matters for reports).
        current_hop_index: Cursor into :attr:`path.hops`; advanced by each
            AS's border router as the packet crosses the network.
        accumulated_latency_ms: Latency accrued so far (filled in by the
            forwarding simulation).
    """

    path: ForwardingPath
    source_host: str = "src"
    destination_host: str = "dst"
    payload: bytes = b""
    current_hop_index: int = 0
    accumulated_latency_ms: float = 0.0

    @property
    def current_hop(self) -> HopField:
        """Return the hop field of the AS currently holding the packet."""
        try:
            return self.path.hops[self.current_hop_index]
        except IndexError:
            raise ForwardingError("packet cursor ran past the end of its path") from None

    @property
    def current_as(self) -> int:
        """Return the AS currently holding the packet."""
        return self.current_hop.as_id

    @property
    def at_destination(self) -> bool:
        """Return whether the packet has reached the destination AS."""
        return self.current_hop_index == len(self.path.hops) - 1

    def advance(self) -> HopField:
        """Move the cursor to the next hop and return its hop field.

        Raises:
            ForwardingError: If the packet is already at its destination.
        """
        if self.at_destination:
            raise ForwardingError("cannot advance a packet that is at its destination")
        self.current_hop_index += 1
        return self.current_hop

    def add_latency(self, latency_ms: float) -> None:
        """Accrue forwarding latency.

        Raises:
            ForwardingError: If the latency is negative.
        """
        if latency_ms < 0.0:
            raise ForwardingError(f"latency must be non-negative, got {latency_ms}")
        self.accumulated_latency_ms += latency_ms
