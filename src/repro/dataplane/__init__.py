"""SCION-like stateless data plane.

The data plane is what makes multi-criteria path *optimization* usable:
end hosts obtain registered path segments from their AS's path service,
turn them into packet-carried forwarding state and send packets that encode
the complete inter-domain path in their header; border routers forward
purely on that state, never consulting inter-domain routing tables (paper
§III).

The package provides:

* :mod:`repro.dataplane.path` — forwarding paths (hop fields) derived from
  registered beacons,
* :mod:`repro.dataplane.packet` — packets carrying the forwarding state,
* :mod:`repro.dataplane.router` — border-router forwarding logic,
* :mod:`repro.dataplane.network` — an end-to-end forwarding simulation over
  a topology, and
* :mod:`repro.dataplane.endhost` — endpoint path selection by application
  criteria.
"""

from repro.dataplane.endhost import EndHost, PathPolicy, PathSelectionPreference
from repro.dataplane.multipath import FailoverForwarder, MultipathSelector
from repro.dataplane.network import DataPlaneNetwork, DeliveryReport
from repro.dataplane.packet import Packet
from repro.dataplane.path import ForwardingPath, HopField, forwarding_path_from_segment
from repro.dataplane.router import BorderRouter

__all__ = [
    "BorderRouter",
    "DataPlaneNetwork",
    "DeliveryReport",
    "EndHost",
    "FailoverForwarder",
    "ForwardingPath",
    "HopField",
    "MultipathSelector",
    "Packet",
    "PathPolicy",
    "PathSelectionPreference",
    "forwarding_path_from_segment",
]
