"""Forwarding paths built from registered path segments.

A registered beacon describes a path *from* its origin AS *to* the AS that
registered it.  Data packets flow in the opposite direction when the
registering AS is the traffic source, so the forwarding path is the
segment's hop sequence reversed, with each hop's ingress/egress interfaces
swapped.  Each hop becomes a :class:`HopField` — the packet-carried
forwarding state a border router needs to move the packet to the next AS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.beacon import Beacon
from repro.exceptions import PathConstructionError
from repro.topology.entities import InterfaceID, LinkID, normalize_link_id


@dataclass(frozen=True)
class HopField:
    """Per-AS forwarding state inside a packet header.

    Attributes:
        as_id: The AS this hop field belongs to.
        ingress_interface: Interface on which the packet enters the AS
            (``None`` at the source AS).
        egress_interface: Interface on which the packet leaves the AS
            (``None`` at the destination AS).
    """

    as_id: int
    ingress_interface: Optional[int]
    egress_interface: Optional[int]


@dataclass(frozen=True)
class ForwardingPath:
    """A complete inter-domain forwarding path.

    Attributes:
        hops: Hop fields from the source AS to the destination AS.
        expected_latency_ms: Latency the control plane predicted for the
            path (accumulated static info of the underlying segment).
        expected_bandwidth_mbps: Bottleneck bandwidth predicted for the path.
    """

    hops: Tuple[HopField, ...]
    expected_latency_ms: float
    expected_bandwidth_mbps: float

    def __post_init__(self) -> None:
        if len(self.hops) < 2:
            raise PathConstructionError("a forwarding path needs at least two hops")
        if self.hops[0].ingress_interface is not None:
            raise PathConstructionError("the source hop must not have an ingress interface")
        if self.hops[-1].egress_interface is not None:
            raise PathConstructionError("the destination hop must not have an egress interface")

    @property
    def source_as(self) -> int:
        """Return the source AS."""
        return self.hops[0].as_id

    @property
    def destination_as(self) -> int:
        """Return the destination AS."""
        return self.hops[-1].as_id

    @property
    def hop_count(self) -> int:
        """Return the number of AS hops."""
        return len(self.hops)

    def as_path(self) -> Tuple[int, ...]:
        """Return the AS-level path."""
        return tuple(hop.as_id for hop in self.hops)

    def links(self) -> Tuple[LinkID, ...]:
        """Return the inter-domain links the path traverses."""
        result: List[LinkID] = []
        for current, nxt in zip(self.hops, self.hops[1:]):
            if current.egress_interface is None or nxt.ingress_interface is None:
                raise PathConstructionError("interior hops must specify both interfaces")
            a: InterfaceID = (current.as_id, current.egress_interface)
            b: InterfaceID = (nxt.as_id, nxt.ingress_interface)
            result.append(normalize_link_id(a, b))
        return tuple(result)

    def hop_for(self, as_id: int) -> HopField:
        """Return the hop field of ``as_id``.

        Raises:
            PathConstructionError: If the AS is not on the path.
        """
        for hop in self.hops:
            if hop.as_id == as_id:
                return hop
        raise PathConstructionError(f"AS {as_id} is not on the forwarding path")


def forwarding_path_from_segment(segment: Beacon) -> ForwardingPath:
    """Build the source-to-origin forwarding path from a registered segment.

    The segment was beaconed from its origin AS down to the registering AS,
    so the forwarding path (for traffic sent by the registering AS towards
    the origin) reverses the hop order and swaps each hop's interfaces.

    Raises:
        PathConstructionError: If the segment is not terminated.
    """
    if not segment.is_terminated:
        raise PathConstructionError("only terminated segments can be turned into paths")
    hops = [
        HopField(
            as_id=entry.as_id,
            ingress_interface=entry.egress_interface,
            egress_interface=entry.ingress_interface,
        )
        for entry in reversed(segment.entries)
    ]
    return ForwardingPath(
        hops=tuple(hops),
        expected_latency_ms=segment.total_latency_ms(),
        expected_bandwidth_mbps=segment.bottleneck_bandwidth_mbps(),
    )
