"""Synthetic candidate-beacon workloads for the micro-benchmarks.

Figures 6 and 7 benchmark RAC processing over candidate sets Φ of sizes 1
to 4096.  The workload generator here builds such sets without running a
full simulation: it constructs a small line of ASes ending at the
benchmarked AS and originates one beacon per candidate, varying the path
length, per-hop latencies and link bandwidths deterministically so that the
selection algorithms have real work to do.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.algorithms.base import CandidateBeacon
from repro.core.beacon import Beacon, BeaconBuilder
from repro.core.databases import StoredBeacon
from repro.core.extensions import ExtensionSet
from repro.core.staticinfo import StaticInfo
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer

#: AS identifier of the AS "executing" the benchmark (never on the path).
BENCHMARK_LOCAL_AS = 999_999


def synthetic_candidate_set(
    size: int,
    origin_as: int = 1,
    seed: int = 7,
    max_hops: int = 6,
    key_store: Optional[KeyStore] = None,
    extensions: Optional[ExtensionSet] = None,
) -> List[CandidateBeacon]:
    """Build ``size`` candidate beacons originating at ``origin_as``.

    Every candidate describes a distinct path from the origin through a few
    intermediate ASes, with deterministic pseudo-random hop latencies and
    bandwidths, and a valid signature chain.

    Args:
        size: Number of candidates (|Φ|).
        origin_as: Origin AS of every candidate (RAC buckets are per origin).
        seed: Seed for the deterministic variation of paths and metrics.
        max_hops: Maximum number of AS entries per beacon.
        key_store: Key store used for signing; a private one is created when
            omitted.
        extensions: Extensions stamped on every beacon (e.g. an algorithm
            extension when benchmarking an on-demand RAC).

    Returns:
        Candidate beacons with ingress interface 1, ready to feed into an
        :class:`~repro.algorithms.base.ExecutionContext`.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    rng = random.Random(seed)
    store = key_store or KeyStore()
    candidates: List[CandidateBeacon] = []
    for index in range(size):
        beacon = _synthetic_beacon(
            index=index,
            origin_as=origin_as,
            rng=rng,
            max_hops=max_hops,
            key_store=store,
            extensions=extensions,
        )
        candidates.append(CandidateBeacon(beacon=beacon, ingress_interface=1))
    return candidates


def synthetic_stored_beacons(
    size: int,
    origin_as: int = 1,
    seed: int = 7,
    max_hops: int = 6,
    key_store: Optional[KeyStore] = None,
    extensions: Optional[ExtensionSet] = None,
) -> List[StoredBeacon]:
    """Like :func:`synthetic_candidate_set` but wrapped as stored beacons."""
    candidates = synthetic_candidate_set(
        size=size,
        origin_as=origin_as,
        seed=seed,
        max_hops=max_hops,
        key_store=key_store,
        extensions=extensions,
    )
    return [
        StoredBeacon(
            beacon=candidate.beacon,
            received_on_interface=candidate.ingress_interface or 1,
            received_at_ms=0.0,
        )
        for candidate in candidates
    ]


def _synthetic_beacon(
    index: int,
    origin_as: int,
    rng: random.Random,
    max_hops: int,
    key_store: KeyStore,
    extensions: Optional[ExtensionSet],
) -> Beacon:
    """Build one synthetic beacon with a unique path and varied metrics."""
    hop_count = 1 + (index % max_hops)
    builder = BeaconBuilder(as_id=origin_as, signer=Signer(as_id=origin_as, key_store=key_store))
    beacon = builder.originate(
        egress_interface=1 + (index % 4),
        created_at_ms=0.0,
        static_info=StaticInfo(
            link_latency_ms=rng.uniform(1.0, 30.0),
            link_bandwidth_mbps=rng.uniform(100.0, 100_000.0),
        ),
        extensions=extensions,
    )
    # Intermediate ASes get identifiers far away from real topology ranges
    # and unique per candidate so that no two beacons share a path.
    base = 1_000_000 + index * max_hops
    for hop in range(hop_count):
        as_id = base + hop
        hop_builder = BeaconBuilder(as_id=as_id, signer=Signer(as_id=as_id, key_store=key_store))
        beacon = hop_builder.extend(
            beacon,
            ingress_interface=1,
            egress_interface=2,
            static_info=StaticInfo(
                intra_latency_ms=rng.uniform(0.1, 3.0),
                link_latency_ms=rng.uniform(1.0, 40.0),
                link_bandwidth_mbps=rng.uniform(100.0, 100_000.0),
            ),
        )
    return beacon
