"""Evaluation and analysis tools.

This package turns simulation and benchmark output into the quantities the
paper reports:

* :mod:`repro.analysis.cdf` — empirical CDFs and summary statistics,
* :mod:`repro.analysis.delay_eval` — per-PoP-pair minimum propagation delay
  relative to 1SP (Figure 8a),
* :mod:`repro.analysis.disjointness_eval` — tolerable link failures of the
  registered path sets (Figure 8b),
* :mod:`repro.analysis.overhead_eval` — PCBs per interface per period
  (Figure 8c),
* :mod:`repro.analysis.workloads` — synthetic candidate-beacon workloads for
  the micro-benchmarks,
* :mod:`repro.analysis.microbench` — the RAC-versus-legacy latency and
  throughput measurements (Figures 6 and 7), and
* :mod:`repro.analysis.reporting` — plain-text rendering of tables and CDF
  series.
"""

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.delay_eval import DelayEvaluation, evaluate_delay
from repro.analysis.disjointness_eval import (
    DisjointnessEvaluation,
    evaluate_disjointness,
    tolerable_link_failures,
)
from repro.analysis.microbench import (
    LatencyBreakdown,
    ThroughputPoint,
    measure_legacy_latency,
    measure_rac_latency,
    measure_throughput,
)
from repro.analysis.overhead_eval import OverheadEvaluation, evaluate_overhead
from repro.analysis.reporting import format_cdf_table, format_table
from repro.analysis.workloads import synthetic_candidate_set, synthetic_stored_beacons

__all__ = [
    "DelayEvaluation",
    "DisjointnessEvaluation",
    "EmpiricalCDF",
    "LatencyBreakdown",
    "OverheadEvaluation",
    "ThroughputPoint",
    "evaluate_delay",
    "evaluate_disjointness",
    "evaluate_overhead",
    "format_cdf_table",
    "format_table",
    "measure_legacy_latency",
    "measure_rac_latency",
    "measure_throughput",
    "synthetic_candidate_set",
    "synthetic_stored_beacons",
    "tolerable_link_failures",
]
