"""Propagation-delay evaluation (Figure 8a).

The paper defines a point of presence (PoP) of an AS as a geolocation with
at least one inter-domain link and evaluates, per algorithm, the minimum
propagation delay between every pair of PoPs in two different ASes.  When
an algorithm discovers no inter-domain path terminating at the desired
PoPs, the intra-domain great-circle delay between the path's end PoPs and
the desired PoPs is added (paper §VIII-C).  Figure 8a then plots the CDF of
these minimum delays *relative to 1SP*.

This module computes those quantities from a finished simulation: it scans
each source AS's path service for paths registered under a given criteria
tag and evaluates the per-PoP-pair minimum delay for every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cdf import EmpiricalCDF, relative_to_baseline
from repro.core.databases import RegisteredPath
from repro.simulation.beaconing import SimulationResult
from repro.topology.geo import propagation_delay_ms
from repro.topology.pops import PointOfPresence, derive_pops


@dataclass
class DelayEvaluation:
    """Per-algorithm minimum PoP-pair delays and their ratios to a baseline."""

    baseline_tag: str
    #: PoP-pair keys in a fixed order: ((src_as, src_pop), (dst_as, dst_pop)).
    pair_keys: List[Tuple[Tuple[int, int], Tuple[int, int]]] = field(default_factory=list)
    #: tag -> list of minimum delays (aligned with pair_keys, None = no path).
    delays_ms: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    def cdf_relative_to_baseline(self, tag: str) -> EmpiricalCDF:
        """Return the CDF of ``tag``'s delays divided by the baseline's."""
        ratios = relative_to_baseline(
            self.delays_ms.get(tag, []), self.delays_ms.get(self.baseline_tag, [])
        )
        return EmpiricalCDF.from_samples(ratios)

    def median_ratio(self, tag: str) -> Optional[float]:
        """Return the median delay ratio of ``tag`` versus the baseline."""
        cdf = self.cdf_relative_to_baseline(tag)
        if cdf.sample_count == 0:
            return None
        return cdf.median

    def coverage(self, tag: str) -> float:
        """Return the fraction of PoP pairs for which ``tag`` found a path."""
        delays = self.delays_ms.get(tag, [])
        if not delays:
            return 0.0
        return sum(1 for d in delays if d is not None) / len(delays)

    def tags(self) -> Tuple[str, ...]:
        """Return the evaluated criteria tags."""
        return tuple(sorted(self.delays_ms))


def _path_end_delay_to_pops(
    path: RegisteredPath,
    source_pop: PointOfPresence,
    destination_pop: PointOfPresence,
) -> float:
    """Return the path delay adjusted to the desired source/destination PoPs.

    The registered segment runs from the *destination* AS (beacon origin) to
    the *source* AS (the registering AS).  Its first entry's egress
    interface sits at some PoP of the destination AS, its last entry's
    ingress interface at some PoP of the source AS.  If those differ from
    the desired PoPs, the intra-domain great-circle delay between them is
    added, as in the paper.
    """
    segment = path.segment
    delay = segment.total_latency_ms()

    origin_location = segment.entries[0].static_info.egress_location
    if origin_location is not None:
        delay += propagation_delay_ms(origin_location, destination_pop.location)

    terminal_location = segment.entries[-1].static_info.ingress_location
    if terminal_location is not None:
        delay += propagation_delay_ms(terminal_location, source_pop.location)
    return delay


def evaluate_delay(
    result: SimulationResult,
    tags: Sequence[str],
    baseline_tag: str = "1sp",
    as_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_pop_pairs_per_as_pair: int = 4,
) -> DelayEvaluation:
    """Evaluate per-PoP-pair minimum delays for several criteria tags.

    Args:
        result: Finished beaconing simulation.
        tags: Criteria tags (RAC identifiers) to evaluate, e.g. ``("1sp",
            "5sp", "don", "dob300")``.
        baseline_tag: Tag used as the denominator of the relative CDF.
        as_pairs: Source/destination AS pairs to evaluate; defaults to every
            ordered pair of distinct ASes.
        max_pop_pairs_per_as_pair: Cap on the number of PoP pairs evaluated
            per AS pair, to keep large evaluations tractable.

    Returns:
        A :class:`DelayEvaluation` with one delay list per tag.
    """
    topology = result.topology
    pops_by_as = derive_pops(topology)
    all_tags = list(dict.fromkeys(list(tags) + [baseline_tag]))

    if as_pairs is None:
        as_ids = topology.as_ids()
        as_pairs = [(a, b) for a in as_ids for b in as_ids if a != b]

    evaluation = DelayEvaluation(baseline_tag=baseline_tag)
    evaluation.delays_ms = {tag: [] for tag in all_tags}

    for source_as, destination_as in as_pairs:
        service = result.services.get(source_as)
        if service is None:
            continue
        paths = service.path_service.paths_to(destination_as)
        paths_by_tag: Dict[str, List[RegisteredPath]] = {tag: [] for tag in all_tags}
        for path in paths:
            for tag in all_tags:
                if tag in path.criteria_tags:
                    paths_by_tag[tag].append(path)

        pop_pairs = [
            (src_pop, dst_pop)
            for src_pop in pops_by_as.get(source_as, ())
            for dst_pop in pops_by_as.get(destination_as, ())
        ][:max_pop_pairs_per_as_pair]

        for src_pop, dst_pop in pop_pairs:
            evaluation.pair_keys.append((src_pop.key, dst_pop.key))
            for tag in all_tags:
                best: Optional[float] = None
                for path in paths_by_tag[tag]:
                    delay = _path_end_delay_to_pops(path, src_pop, dst_pop)
                    if best is None or delay < best:
                        best = delay
                evaluation.delays_ms[tag].append(best)
    return evaluation
