"""Plain-text rendering of tables and CDF series.

The benchmark harness prints the same rows and series the paper's figures
show; these helpers format them as aligned text tables so that benchmark
output is readable in a terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.cdf import EmpiricalCDF


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table.

    Args:
        headers: Column headers.
        rows: Row cell values; floats are rendered with four significant
            digits, everything else with ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [format_row(list(headers)), format_row(["-" * w for w in widths])]
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_timeseries(
    series: Sequence[Tuple[float, float]],
    value_label: str = "value",
    time_divisor: float = 1.0,
    time_label: str = "t",
    width: int = 40,
) -> str:
    """Render a (time, value) series as an aligned table with bar gauges.

    The traffic engine's goodput dip-and-recovery curves are printed with
    this: one row per sample, a ``#``-bar scaled to the series maximum, so
    a dip and its recovery are visible in plain terminal output.

    Args:
        series: ``(time, value)`` samples in time order.
        value_label: Header of the value column.
        time_divisor: Divide times by this for display (e.g. 60 000.0 to
            show minutes when times are in milliseconds).
        time_label: Header of the time column.
        width: Character width of the full-scale bar.
    """
    if not series:
        return "(empty series)"
    peak = max(value for _time, value in series)
    rows = []
    for time, value in series:
        bar = "#" * int(round(width * value / peak)) if peak > 0 else ""
        rows.append([time / time_divisor, value, bar])
    return format_table([time_label, value_label, ""], rows)


def format_cdf_table(
    cdfs: Dict[str, EmpiricalCDF],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
) -> str:
    """Render the quantiles of several CDFs side by side."""
    headers = ["series", "samples"] + [f"p{int(q * 100)}" for q in quantiles]
    rows: List[List[object]] = []
    for label in sorted(cdfs):
        cdf = cdfs[label]
        if cdf.sample_count == 0:
            rows.append([label, 0] + ["-"] * len(quantiles))
            continue
        rows.append([label, cdf.sample_count] + [cdf.quantile(q) for q in quantiles])
    return format_table(headers, rows)
