"""Disjointness evaluation: tolerable link failures (Figure 8b).

The paper measures disjointness as **tolerable link failures (TLF)**: for a
pair of ASes, the minimum number of inter-domain links that must be removed
from the discovered paths before all of them are disconnected.  With unit
capacities on the links used by the path set, that minimum cut equals the
maximum flow between the two ASes in the sub-graph induced by those links,
which is how :func:`tolerable_link_failures` computes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.cdf import EmpiricalCDF
from repro.core.beacon import Beacon
from repro.simulation.beaconing import SimulationResult
from repro.topology.entities import LinkID


def tolerable_link_failures(
    paths: Sequence[Sequence[LinkID]], source_as: int, destination_as: int
) -> int:
    """Return the TLF of a path set between two ASes.

    Args:
        paths: Each path given as its sequence of inter-domain link ids.
        source_as: One endpoint AS.
        destination_as: The other endpoint AS.

    Returns:
        The minimum number of links whose removal disconnects every path —
        equivalently the max-flow with unit link capacities over the
        sub-graph formed by the paths' links.  Zero if the set is empty or
        does not connect the two ASes.
    """
    if not paths:
        return 0
    graph = nx.MultiGraph()
    graph.add_node(source_as)
    graph.add_node(destination_as)
    for path in paths:
        for link in path:
            (as_a, _if_a), (as_b, _if_b) = link
            graph.add_edge(as_a, as_b, key=link)
    if not nx.has_path(graph, source_as, destination_as):
        return 0

    # Unit capacity per distinct inter-domain link: collapse the multigraph
    # into a simple graph whose edge capacities count parallel links.
    flow_graph = nx.Graph()
    for as_a, as_b, link in graph.edges(keys=True):
        if flow_graph.has_edge(as_a, as_b):
            flow_graph[as_a][as_b]["capacity"] += 1
        else:
            flow_graph.add_edge(as_a, as_b, capacity=1)
    value, _cut = nx.minimum_cut(flow_graph, source_as, destination_as)
    return int(value)


def beacon_paths_links(beacons: Iterable[Beacon]) -> List[Tuple[LinkID, ...]]:
    """Return the link sequences of an iterable of beacons/segments."""
    return [beacon.links() for beacon in beacons]


@dataclass
class DisjointnessEvaluation:
    """Per-algorithm TLF values over a set of AS pairs."""

    #: AS pairs in evaluation order.
    pair_keys: List[Tuple[int, int]] = field(default_factory=list)
    #: tag -> list of TLF values aligned with pair_keys.
    tlf: Dict[str, List[int]] = field(default_factory=dict)

    def cdf(self, tag: str) -> EmpiricalCDF:
        """Return the CDF of TLF values for ``tag``."""
        return EmpiricalCDF.from_samples(self.tlf.get(tag, []))

    def fraction_at_least(self, tag: str, threshold: int) -> float:
        """Return the fraction of AS pairs with TLF >= ``threshold``."""
        values = self.tlf.get(tag, [])
        if not values:
            return 0.0
        return sum(1 for value in values if value >= threshold) / len(values)

    def tags(self) -> Tuple[str, ...]:
        """Return the evaluated criteria tags."""
        return tuple(sorted(self.tlf))


def evaluate_disjointness(
    result: SimulationResult,
    tags: Sequence[str],
    as_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    extra_paths: Optional[Dict[Tuple[int, int], Dict[str, Sequence[Beacon]]]] = None,
) -> DisjointnessEvaluation:
    """Evaluate the TLF of the registered path sets of several algorithms.

    Args:
        result: Finished beaconing simulation.
        tags: Criteria tags to evaluate (e.g. ``("1sp", "5sp", "hd")``).
        as_pairs: (source, destination) AS pairs; defaults to every ordered
            pair of distinct ASes.
        extra_paths: Additional per-pair, per-tag path sets to merge in —
            used for the PD algorithm, whose paths are collected by the
            pull orchestrator rather than registered by a static RAC.

    Returns:
        A :class:`DisjointnessEvaluation` with one TLF list per tag.
    """
    topology = result.topology
    if as_pairs is None:
        as_ids = topology.as_ids()
        as_pairs = [(a, b) for a in as_ids for b in as_ids if a != b]

    evaluation = DisjointnessEvaluation()
    evaluation.tlf = {tag: [] for tag in tags}
    extra_paths = extra_paths or {}

    for source_as, destination_as in as_pairs:
        evaluation.pair_keys.append((source_as, destination_as))
        service = result.services.get(source_as)
        registered = (
            service.path_service.paths_to(destination_as) if service is not None else []
        )
        for tag in tags:
            beacons = [
                path.segment for path in registered if tag in path.criteria_tags
            ]
            extra = extra_paths.get((source_as, destination_as), {}).get(tag, ())
            beacons = list(beacons) + list(extra)
            links = beacon_paths_links(beacons)
            evaluation.tlf[tag].append(
                tolerable_link_failures(links, source_as, destination_as)
            )
    return evaluation
