"""Beaconing-overhead evaluation (Figure 8c).

The number of PCBs an algorithm sends per interface and beaconing period is
the paper's measure of message complexity.  The simulation's
:class:`~repro.simulation.collector.MetricsCollector` records every
transmission; this module turns those records into the per-configuration
CDFs of Figure 8c and into summary statistics used by the ablation
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.cdf import EmpiricalCDF
from repro.simulation.beaconing import SimulationResult
from repro.simulation.collector import MetricsCollector


@dataclass
class OverheadEvaluation:
    """Per-configuration PCB-overhead distributions.

    Attributes:
        samples: Configuration label -> per-(interface, period) PCB counts.
    """

    samples: Dict[str, List[int]] = field(default_factory=dict)

    def add(self, label: str, collector: MetricsCollector) -> None:
        """Record the overhead distribution of one simulation run."""
        self.samples[label] = collector.pcbs_per_interface_per_period()

    def add_result(self, label: str, result: SimulationResult) -> None:
        """Convenience wrapper of :meth:`add` for a finished simulation."""
        self.add(label, result.collector)

    def cdf(self, label: str) -> EmpiricalCDF:
        """Return the CDF of PCBs per interface per period for ``label``."""
        return EmpiricalCDF.from_samples(self.samples.get(label, []))

    def total(self, label: str) -> int:
        """Return the total number of PCBs sent in configuration ``label``."""
        return sum(self.samples.get(label, []))

    def mean_per_interface_period(self, label: str) -> float:
        """Return the mean PCB count per (interface, period) for ``label``."""
        values = self.samples.get(label, [])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def labels(self) -> Tuple[str, ...]:
        """Return the recorded configuration labels."""
        return tuple(sorted(self.samples))


def evaluate_overhead(
    results: Sequence[Tuple[str, SimulationResult]]
) -> OverheadEvaluation:
    """Build an :class:`OverheadEvaluation` from labelled simulation results."""
    evaluation = OverheadEvaluation()
    for label, result in results:
        evaluation.add_result(label, result)
    return evaluation
