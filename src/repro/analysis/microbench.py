"""RAC-versus-legacy micro-benchmarks (Figures 6 and 7).

Figure 6 reports, for candidate sets Φ of growing size, the processing
latency of an on-demand RAC decomposed into sandbox setup, IPC and
algorithm execution, against the latency of the legacy SCION control
service running the same 20-shortest-paths selection.  Figure 7 reports the
aggregate PCB-processing throughput as the number of RACs grows.

The functions here produce exactly those series from the synthetic
workloads of :mod:`repro.analysis.workloads`.  Throughput for ``n`` RACs is
measured by timing ``n`` independent RAC batches and, by default, modelling
them as running concurrently (the paper's RACs are separate processes,
optionally on separate machines, so their throughput adds); an optional
process-pool mode measures true parallel execution instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.algorithms.registry import encode_builtin_payload
from repro.algorithms.shortest_path import legacy_scion_algorithm
from repro.analysis.workloads import (
    BENCHMARK_LOCAL_AS,
    synthetic_stored_beacons,
)
from repro.core.algorithm_registry import AlgorithmFetcher
from repro.core.databases import IngressDatabase
from repro.core.extensions import ExtensionSet
from repro.core.ipc import IPCChannel
from repro.core.ondemand import OnDemandAlgorithmManager
from repro.core.rac import RACConfig, RoutingAlgorithmContainer
from repro.core.sandbox import SandboxRuntime
from repro.crypto.hashing import algorithm_hash


@dataclass(frozen=True)
class LatencyBreakdown:
    """One point of the Figure-6 latency series."""

    candidate_set_size: int
    setup_ms: float
    ipc_ms: float
    execution_ms: float
    legacy_ms: Optional[float] = None

    @property
    def irec_total_ms(self) -> float:
        """Return the total IREC (on-demand RAC) processing latency."""
        return self.setup_ms + self.ipc_ms + self.execution_ms

    @property
    def slowdown_vs_legacy(self) -> Optional[float]:
        """Return the IREC/legacy latency ratio, if the legacy value exists."""
        if self.legacy_ms is None or self.legacy_ms <= 0.0:
            return None
        return self.irec_total_ms / self.legacy_ms


@dataclass(frozen=True)
class ThroughputPoint:
    """One point of the Figure-7 throughput series."""

    rac_count: int
    candidate_set_size: int
    pcbs_per_second: float


# ----------------------------------------------------------------------
# workload plumbing
# ----------------------------------------------------------------------
_ON_DEMAND_ALGORITHM_ID = "legacy-20sp"

#: Modelled cost of setting up the sandboxed execution environment, in ms.
#: The paper's implementation pays this to create a Wasmtime instance and
#: instantiate the WebAssembly module before every execution; the pure-
#: Python sandbox has no comparable cost, so the analogue is modelled.  The
#: default is calibrated to the order of magnitude reported in Figure 6,
#: where environment setup dominates total latency for small candidate
#: sets.  Pass ``modelled_setup_ms=0`` to measure raw Python costs instead.
DEFAULT_MODELLED_SETUP_MS = 15.0

#: Modelled fixed cost per gRPC call between the gateway and the RAC, in
#: ms.  Marshalling costs still scale with |Φ| through the real
#: serialization the IPC channel performs.
DEFAULT_MODELLED_IPC_CALL_MS = 1.5


def _on_demand_payload() -> bytes:
    return encode_builtin_payload("20sp")


def _build_on_demand_rac(
    paths_per_origin: int = 20,
    modelled_setup_ms: float = DEFAULT_MODELLED_SETUP_MS,
    modelled_ipc_call_ms: float = DEFAULT_MODELLED_IPC_CALL_MS,
) -> RoutingAlgorithmContainer:
    """Build an on-demand RAC that serves the legacy algorithm payload locally."""
    payload = _on_demand_payload()

    def transport(_origin_as: int, _algorithm_id: str) -> bytes:
        return payload

    manager = OnDemandAlgorithmManager(fetcher=AlgorithmFetcher(transport=transport))
    config = RACConfig(
        rac_id="bench-on-demand",
        on_demand=True,
        max_paths_per_interface=paths_per_origin,
    )
    return RoutingAlgorithmContainer(
        config=config,
        on_demand_manager=manager,
        sandbox=SandboxRuntime(modelled_setup_ms=modelled_setup_ms),
        ipc=IPCChannel(per_call_latency_ms=modelled_ipc_call_ms),
    )


def _database_with_candidates(size: int, seed: int) -> IngressDatabase:
    extensions = ExtensionSet().with_algorithm(
        _ON_DEMAND_ALGORITHM_ID, algorithm_hash(_on_demand_payload())
    )
    database = IngressDatabase()
    for stored in synthetic_stored_beacons(size=size, seed=seed, extensions=extensions):
        database.insert(stored)
    return database


def _flat_intra_latency(_interface_a: int, _interface_b: int) -> float:
    return 0.0


# ----------------------------------------------------------------------
# Figure 6: latency
# ----------------------------------------------------------------------
def measure_rac_latency(
    candidate_set_size: int,
    seed: int = 7,
    modelled_setup_ms: float = DEFAULT_MODELLED_SETUP_MS,
    modelled_ipc_call_ms: float = DEFAULT_MODELLED_IPC_CALL_MS,
) -> LatencyBreakdown:
    """Measure one on-demand-RAC processing round over |Φ| candidates."""
    database = _database_with_candidates(candidate_set_size, seed)
    rac = _build_on_demand_rac(
        modelled_setup_ms=modelled_setup_ms, modelled_ipc_call_ms=modelled_ipc_call_ms
    )
    _selections, report = rac.process(
        database=database,
        egress_interfaces=(2,),
        intra_latency_ms=_flat_intra_latency,
        local_as=BENCHMARK_LOCAL_AS,
    )
    return LatencyBreakdown(
        candidate_set_size=candidate_set_size,
        setup_ms=report.setup_ms,
        ipc_ms=report.ipc_ms,
        execution_ms=report.execution_ms,
    )


def measure_legacy_latency(candidate_set_size: int, seed: int = 7) -> float:
    """Measure the legacy selection latency over |Φ| candidates (ms)."""
    from repro.algorithms.base import CandidateBeacon, ExecutionContext

    stored = synthetic_stored_beacons(size=candidate_set_size, seed=seed)
    candidates = tuple(
        CandidateBeacon(beacon=s.beacon, ingress_interface=s.received_on_interface)
        for s in stored
    )
    algorithm = legacy_scion_algorithm()
    context = ExecutionContext(
        local_as=BENCHMARK_LOCAL_AS,
        candidates=candidates,
        egress_interfaces=(2,),
        max_paths_per_interface=20,
        intra_latency_ms=_flat_intra_latency,
    )
    start = time.perf_counter()
    algorithm.execute(context)
    return (time.perf_counter() - start) * 1000.0


def latency_series(
    candidate_set_sizes: Sequence[int],
    seed: int = 7,
    modelled_setup_ms: float = DEFAULT_MODELLED_SETUP_MS,
    modelled_ipc_call_ms: float = DEFAULT_MODELLED_IPC_CALL_MS,
) -> List[LatencyBreakdown]:
    """Measure the full Figure-6 series (IREC breakdown plus legacy baseline)."""
    series = []
    for size in candidate_set_sizes:
        breakdown = measure_rac_latency(
            size,
            seed=seed,
            modelled_setup_ms=modelled_setup_ms,
            modelled_ipc_call_ms=modelled_ipc_call_ms,
        )
        legacy_ms = measure_legacy_latency(size, seed=seed)
        series.append(
            LatencyBreakdown(
                candidate_set_size=size,
                setup_ms=breakdown.setup_ms,
                ipc_ms=breakdown.ipc_ms,
                execution_ms=breakdown.execution_ms,
                legacy_ms=legacy_ms,
            )
        )
    return series


# ----------------------------------------------------------------------
# Figure 7: throughput
# ----------------------------------------------------------------------
def _one_rac_batch_seconds(candidate_set_size: int, seed: int) -> float:
    """Return the wall-clock seconds one RAC needs for one batch of |Φ|."""
    database = _database_with_candidates(candidate_set_size, seed)
    rac = _build_on_demand_rac(modelled_setup_ms=0.0, modelled_ipc_call_ms=0.0)
    start = time.perf_counter()
    rac.process(
        database=database,
        egress_interfaces=(2,),
        intra_latency_ms=_flat_intra_latency,
        local_as=BENCHMARK_LOCAL_AS,
    )
    return time.perf_counter() - start


def measure_throughput(
    rac_count: int,
    candidate_set_size: int,
    seed: int = 7,
    use_processes: bool = False,
) -> ThroughputPoint:
    """Measure aggregate PCB-processing throughput for ``rac_count`` RACs.

    With ``use_processes=False`` (default) each RAC's batch is timed
    sequentially and the aggregate throughput is the sum of the individual
    throughputs — the paper's RACs are independent processes, so their
    throughputs add until the machine saturates.  With
    ``use_processes=True`` the batches run on the shared
    :func:`repro.parallel.pool.shared_pool` and the aggregate is computed
    from the true parallel wall-clock time.  The pool is created once and
    reused across calls (and by the crypto offload pool), so a
    :func:`throughput_series` grid no longer pays a fork-and-import
    spin-up per grid point.
    """
    if rac_count < 1:
        raise ValueError(f"rac_count must be positive, got {rac_count}")
    if use_processes:
        from repro.parallel.pool import shared_pool

        # Acquire (and, if needed, grow) the executor before the clock
        # starts: pool lifecycle is not part of the measured batch time.
        executor = shared_pool().executor(min_workers=rac_count)
        start = time.perf_counter()
        futures = [
            executor.submit(_one_rac_batch_seconds, candidate_set_size, seed + i)
            for i in range(rac_count)
        ]
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - start
        total_pcbs = rac_count * candidate_set_size
        return ThroughputPoint(
            rac_count=rac_count,
            candidate_set_size=candidate_set_size,
            pcbs_per_second=total_pcbs / elapsed if elapsed > 0 else 0.0,
        )

    per_rac_seconds = [
        _one_rac_batch_seconds(candidate_set_size, seed + i) for i in range(rac_count)
    ]
    throughput = sum(
        candidate_set_size / seconds for seconds in per_rac_seconds if seconds > 0.0
    )
    return ThroughputPoint(
        rac_count=rac_count,
        candidate_set_size=candidate_set_size,
        pcbs_per_second=throughput,
    )


def throughput_series(
    rac_counts: Sequence[int],
    candidate_set_sizes: Sequence[int],
    seed: int = 7,
    use_processes: bool = False,
) -> List[ThroughputPoint]:
    """Measure the Figure-7 grid of (RAC count, |Φ|) throughput points."""
    series = []
    for size in candidate_set_sizes:
        for count in rac_counts:
            series.append(
                measure_throughput(
                    rac_count=count,
                    candidate_set_size=size,
                    seed=seed,
                    use_processes=use_processes,
                )
            )
    return series
