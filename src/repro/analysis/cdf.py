"""Empirical cumulative distribution functions.

All three panels of Figure 8 are CDFs; this module provides the small
amount of statistics needed to compute, query and compare them without
pulling in plotting dependencies.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical CDF over a finite sample."""

    values: Tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalCDF":
        """Build a CDF from raw samples (order does not matter)."""
        return cls(values=tuple(sorted(float(s) for s in samples)))

    def __post_init__(self) -> None:
        if list(self.values) != sorted(self.values):
            raise ValueError("EmpiricalCDF values must be sorted; use from_samples()")

    @property
    def sample_count(self) -> int:
        """Return the number of samples."""
        return len(self.values)

    def probability_at_or_below(self, x: float) -> float:
        """Return P(X <= x)."""
        if not self.values:
            return 0.0
        return bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (0 <= q <= 1) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            raise ValueError("cannot take a quantile of an empty CDF")
        return float(np.quantile(np.asarray(self.values), q))

    @property
    def median(self) -> float:
        """Return the median of the sample."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Return the mean of the sample."""
        if not self.values:
            raise ValueError("cannot take the mean of an empty CDF")
        return float(np.mean(np.asarray(self.values)))

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """Return (value, cumulative probability) pairs for plotting/tables.

        Down-samples evenly to at most ``max_points`` points so that tables
        over large samples stay readable.
        """
        n = len(self.values)
        if n == 0:
            return []
        indices = np.unique(np.linspace(0, n - 1, num=min(max_points, n)).astype(int))
        return [(self.values[i], (i + 1) / n) for i in indices]

    def fraction_below(self, threshold: float) -> float:
        """Alias of :meth:`probability_at_or_below` reading better in reports."""
        return self.probability_at_or_below(threshold)


def relative_to_baseline(
    values: Sequence[float], baseline: Sequence[float]
) -> List[float]:
    """Return element-wise ratios ``values[i] / baseline[i]``.

    Pairs where the baseline is zero or either entry is missing (``None`` or
    ``nan``) are skipped.  Used for the "latency relative to 1SP" axis of
    Figure 8a.
    """
    ratios: List[float] = []
    for value, base in zip(values, baseline):
        if value is None or base is None:
            continue
        value = float(value)
        base = float(base)
        if not np.isfinite(value) or not np.isfinite(base) or base == 0.0:
            continue
        ratios.append(value / base)
    return ratios
