"""Synthetic CAIDA-geo-rel-like topology generator.

The paper's simulations run on the 500 highest-degree ASes of the CAIDA
geo-rel dataset, which provides business relationships and the geographic
location of every inter-domain link.  That dataset is not redistributable,
so this module generates synthetic topologies that preserve the structural
properties the evaluation depends on:

* a heavy-tailed degree distribution with a small, densely-meshed core of
  "tier-1" ASes, a middle tier of transit ASes, and many stub ASes,
* ASes with multiple geographically-spread points of presence, so that
  interface groups and PoP-pair delay evaluations are meaningful,
* parallel inter-domain links between large AS pairs at several locations,
* Gao-Rexford business relationships (core mesh, provider-customer edges,
  lateral peering), and
* per-link latency derived from great-circle distance and bandwidth drawn
  from a tier-dependent distribution.

The generator is deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.topology.entities import ASInfo, Interface, Link, Relationship
from repro.topology.geo import WORLD_CITIES, GeoCoordinate, propagation_delay_ms
from repro.topology.graph import Topology
from repro.units import gbps


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic topology generator.

    The defaults produce a small topology suitable for unit tests; the
    benchmark harness scales ``num_ases`` and the link multipliers up to
    approximate the paper's 500-AS / 100k-link setting.

    Attributes:
        num_ases: Total number of ASes.
        num_core: Number of tier-1 (core) ASes, fully meshed among each
            other with ``core_parallel_links`` parallel links per pair.
        num_transit: Number of mid-tier transit ASes.
        core_parallel_links: Parallel links per core AS pair.
        transit_provider_count: Providers each transit AS connects to.
        stub_provider_count: Providers each stub AS connects to.
        peering_probability: Probability that two transit ASes of similar
            size establish a lateral peering link.
        max_pops_core: Maximum number of PoP cities of a core AS.
        max_pops_transit: Maximum number of PoP cities of a transit AS.
        max_pops_stub: Maximum number of PoP cities of a stub AS.
        seed: Seed of the internal random generator.
    """

    num_ases: int = 50
    num_core: int = 5
    num_transit: int = 15
    core_parallel_links: int = 2
    transit_provider_count: int = 2
    stub_provider_count: int = 2
    peering_probability: float = 0.15
    max_pops_core: int = 8
    max_pops_transit: int = 4
    max_pops_stub: int = 2
    min_bandwidth_mbps: float = 400.0
    max_bandwidth_mbps: float = gbps(100.0)
    seed: int = 7

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the parameters are inconsistent."""
        if self.num_core < 1:
            raise ConfigurationError("at least one core AS is required")
        if self.num_core + self.num_transit > self.num_ases:
            raise ConfigurationError(
                "num_core + num_transit must not exceed num_ases "
                f"({self.num_core} + {self.num_transit} > {self.num_ases})"
            )
        if not 0.0 <= self.peering_probability <= 1.0:
            raise ConfigurationError(
                f"peering_probability must be in [0, 1], got {self.peering_probability}"
            )
        if self.min_bandwidth_mbps <= 0 or self.max_bandwidth_mbps < self.min_bandwidth_mbps:
            raise ConfigurationError("invalid bandwidth range")


@dataclass
class _ASPlan:
    """Internal bookkeeping while the generator assembles an AS."""

    as_id: int
    tier: str
    pop_locations: List[GeoCoordinate]
    next_interface_id: int = 1
    info: ASInfo = field(init=False)

    def __post_init__(self) -> None:
        self.info = ASInfo(as_id=self.as_id, name=f"{self.tier}-{self.as_id}")

    def new_interface(self, location: GeoCoordinate) -> Interface:
        """Create a new interface at ``location`` and register it on the AS."""
        interface = Interface(
            as_id=self.as_id, interface_id=self.next_interface_id, location=location
        )
        self.next_interface_id += 1
        self.info.add_interface(interface)
        return interface

    def closest_pop(self, target: GeoCoordinate) -> GeoCoordinate:
        """Return the PoP location of this AS that is closest to ``target``."""
        return min(self.pop_locations, key=lambda loc: propagation_delay_ms(loc, target))


def generate_topology(config: Optional[TopologyConfig] = None) -> Topology:
    """Generate a synthetic geo-embedded inter-domain topology.

    Args:
        config: Generator parameters; defaults to :class:`TopologyConfig()`.

    Returns:
        A connected :class:`~repro.topology.graph.Topology`.
    """
    cfg = config or TopologyConfig()
    cfg.validate()
    rng = random.Random(cfg.seed)
    cities = [coord for _name, coord in WORLD_CITIES]

    plans = _plan_ases(cfg, rng, cities)
    topology = Topology()
    for plan in plans:
        topology.add_as(plan.info)

    builder = _LinkBuilder(topology=topology, rng=rng, config=cfg)
    core = [p for p in plans if p.tier == "core"]
    transit = [p for p in plans if p.tier == "transit"]
    stub = [p for p in plans if p.tier == "stub"]

    _mesh_core(core, builder, cfg)
    _attach_tier(transit, core, builder, cfg.transit_provider_count, rng)
    _peer_transit(transit, builder, cfg, rng)
    _attach_tier(stub, core + transit, builder, cfg.stub_provider_count, rng)
    return topology


# ----------------------------------------------------------------------
# internal helpers
# ----------------------------------------------------------------------
def _plan_ases(
    cfg: TopologyConfig, rng: random.Random, cities: Sequence[GeoCoordinate]
) -> List[_ASPlan]:
    """Assign every AS a tier and a set of PoP cities."""
    plans: List[_ASPlan] = []
    for as_id in range(1, cfg.num_ases + 1):
        if as_id <= cfg.num_core:
            tier, max_pops = "core", cfg.max_pops_core
        elif as_id <= cfg.num_core + cfg.num_transit:
            tier, max_pops = "transit", cfg.max_pops_transit
        else:
            tier, max_pops = "stub", cfg.max_pops_stub
        num_pops = rng.randint(1, max(1, max_pops))
        pop_locations = rng.sample(list(cities), k=min(num_pops, len(cities)))
        plans.append(_ASPlan(as_id=as_id, tier=tier, pop_locations=pop_locations))
    return plans


@dataclass
class _LinkBuilder:
    """Creates interfaces and links between planned ASes."""

    topology: Topology
    rng: random.Random
    config: TopologyConfig

    def connect(
        self,
        a: _ASPlan,
        b: _ASPlan,
        relationship: Relationship,
        location_a: Optional[GeoCoordinate] = None,
        location_b: Optional[GeoCoordinate] = None,
    ) -> Link:
        """Create a link between ``a`` and ``b`` at (near-)matching PoPs.

        For :attr:`Relationship.CUSTOMER_PROVIDER` links, ``a`` is the
        customer and ``b`` the provider (matching the :class:`Link`
        convention).
        """
        if location_a is None:
            location_a = self.rng.choice(a.pop_locations)
        if location_b is None:
            location_b = b.closest_pop(location_a)
        interface_a = a.new_interface(location_a)
        interface_b = b.new_interface(location_b)
        latency = max(0.05, propagation_delay_ms(location_a, location_b))
        bandwidth = self._bandwidth_for(a.tier, b.tier)
        link = Link(
            interface_a=interface_a.key,
            interface_b=interface_b.key,
            latency_ms=latency,
            bandwidth_mbps=bandwidth,
            relationship=relationship,
        )
        self.topology.add_link(link)
        return link

    def _bandwidth_for(self, tier_a: str, tier_b: str) -> float:
        """Draw a link bandwidth; links between larger ASes are fatter."""
        cfg = self.config
        tiers = {tier_a, tier_b}
        if tiers == {"core"}:
            low, high = cfg.max_bandwidth_mbps * 0.5, cfg.max_bandwidth_mbps
        elif "core" in tiers:
            low, high = cfg.max_bandwidth_mbps * 0.1, cfg.max_bandwidth_mbps * 0.6
        elif "stub" in tiers:
            low, high = cfg.min_bandwidth_mbps, cfg.max_bandwidth_mbps * 0.1
        else:
            low, high = cfg.max_bandwidth_mbps * 0.05, cfg.max_bandwidth_mbps * 0.3
        return self.rng.uniform(low, high)


def _mesh_core(core: List[_ASPlan], builder: _LinkBuilder, cfg: TopologyConfig) -> None:
    """Fully mesh the core ASes with parallel links at different locations."""
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            for parallel_index in range(cfg.core_parallel_links):
                location_a = a.pop_locations[parallel_index % len(a.pop_locations)]
                builder.connect(a, b, Relationship.CORE, location_a=location_a)


def _attach_tier(
    lower: List[_ASPlan],
    upper: List[_ASPlan],
    builder: _LinkBuilder,
    provider_count: int,
    rng: random.Random,
) -> None:
    """Attach every AS in ``lower`` to ``provider_count`` providers in ``upper``.

    Provider choice is degree-biased (preferential attachment) which yields
    the heavy-tailed degree distribution of the real AS graph.
    """
    for plan in lower:
        weights = [1 + builder.topology.degree_of(candidate.as_id) for candidate in upper]
        providers: List[_ASPlan] = []
        candidates = list(upper)
        candidate_weights = list(weights)
        wanted = min(provider_count, len(candidates))
        while len(providers) < wanted and candidates:
            chosen = rng.choices(candidates, weights=candidate_weights, k=1)[0]
            index = candidates.index(chosen)
            candidates.pop(index)
            candidate_weights.pop(index)
            providers.append(chosen)
        for provider in providers:
            builder.connect(plan, provider, Relationship.CUSTOMER_PROVIDER)


def _peer_transit(
    transit: List[_ASPlan], builder: _LinkBuilder, cfg: TopologyConfig, rng: random.Random
) -> None:
    """Create lateral peering links between transit ASes."""
    for i, a in enumerate(transit):
        for b in transit[i + 1:]:
            if rng.random() < cfg.peering_probability:
                builder.connect(a, b, Relationship.PEER)


def paper_scale_config(seed: int = 7) -> TopologyConfig:
    """Return a configuration approximating the paper's simulation topology.

    The paper uses the 500 highest-degree CAIDA ASes with over 100 000
    inter-domain links.  Generating (and beaconing over) the full link count
    in pure Python is possible but slow; this configuration keeps the 500
    ASes and the structural shape while remaining tractable.  The benchmark
    harness accepts any :class:`TopologyConfig`, so users with more patience
    can raise the multipliers further.
    """
    return TopologyConfig(
        num_ases=500,
        num_core=15,
        num_transit=110,
        core_parallel_links=4,
        transit_provider_count=4,
        stub_provider_count=3,
        peering_probability=0.08,
        max_pops_core=12,
        max_pops_transit=6,
        max_pops_stub=2,
        seed=seed,
    )


def small_test_config(seed: int = 7) -> TopologyConfig:
    """Return a deliberately small configuration for fast unit tests."""
    return TopologyConfig(
        num_ases=12,
        num_core=3,
        num_transit=4,
        core_parallel_links=1,
        transit_provider_count=2,
        stub_provider_count=2,
        peering_probability=0.3,
        max_pops_core=3,
        max_pops_transit=2,
        max_pops_stub=1,
        seed=seed,
    )
