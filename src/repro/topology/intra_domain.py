"""Intra-domain (inside one AS) latency models.

IREC's extended-path optimization (paper §IV-E) needs to know the latency
of the intra-AS path between the interface on which a PCB was received and
the egress interface towards which it is being optimized.  The paper's
simulation estimates these latencies from interface geolocations, exactly
as it does for inter-domain links; this module implements that model and an
explicit-matrix variant for tests and small examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import TopologyError
from repro.topology.entities import ASInfo
from repro.topology.geo import propagation_delay_ms


@dataclass
class IntraDomainModel:
    """Latency between interface pairs inside one AS.

    By default the latency between two interfaces is the fibre propagation
    delay over the great-circle distance between their locations, plus a
    constant processing overhead.  Individual pairs can be overridden with
    measured values via :meth:`set_latency`, which the figure-4 style
    examples use to construct specific sub-optimal scenarios.

    Attributes:
        as_info: The AS whose internal network is being modelled.
        processing_overhead_ms: Constant added to every geodesic estimate.
    """

    as_info: ASInfo
    processing_overhead_ms: float = 0.0
    _overrides: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def set_latency(self, interface_a: int, interface_b: int, latency_ms: float) -> None:
        """Override the latency between two local interfaces (symmetric)."""
        if latency_ms < 0.0:
            raise TopologyError(f"intra-domain latency must be non-negative, got {latency_ms}")
        self.as_info.interface(interface_a)
        self.as_info.interface(interface_b)
        self._overrides[self._key(interface_a, interface_b)] = float(latency_ms)

    def latency_ms(self, interface_a: int, interface_b: int) -> float:
        """Return the latency between two local interfaces.

        The latency between an interface and itself is zero by definition.
        """
        if interface_a == interface_b:
            return 0.0
        override = self._overrides.get(self._key(interface_a, interface_b))
        if override is not None:
            return override
        loc_a = self.as_info.interface(interface_a).location
        loc_b = self.as_info.interface(interface_b).location
        return propagation_delay_ms(loc_a, loc_b) + self.processing_overhead_ms

    def latency_from_location(self, interface_id: int, latitude: float, longitude: float) -> float:
        """Return the estimated latency from an arbitrary point to an interface.

        Used by the PoP-pair evaluation (paper §VIII-C): when no direct
        inter-domain path terminates at the desired PoP, the intra-domain
        great-circle delay between the path's end PoP and the desired PoP is
        added.
        """
        from repro.topology.geo import GeoCoordinate  # local import to avoid cycle at module load

        target = GeoCoordinate(latitude=latitude, longitude=longitude)
        location = self.as_info.interface(interface_id).location
        return propagation_delay_ms(location, target) + self.processing_overhead_ms

    @staticmethod
    def _key(interface_a: int, interface_b: int) -> Tuple[int, int]:
        return (interface_a, interface_b) if interface_a <= interface_b else (interface_b, interface_a)


@dataclass
class IntraDomainRegistry:
    """Per-AS registry of intra-domain models.

    The control service of each AS resolves its own model here; the
    simulation scenario builds one registry for the whole topology so that
    RACs can be handed topology information without a back-reference to the
    full simulation object.
    """

    models: Dict[int, IntraDomainModel] = field(default_factory=dict)
    default_processing_overhead_ms: float = 0.0

    def register(self, model: IntraDomainModel) -> None:
        """Register the model of one AS, replacing any previous one."""
        self.models[model.as_info.as_id] = model

    def model_for(self, as_info: ASInfo) -> IntraDomainModel:
        """Return (creating on demand) the model for ``as_info``."""
        model = self.models.get(as_info.as_id)
        if model is None:
            model = IntraDomainModel(
                as_info=as_info,
                processing_overhead_ms=self.default_processing_overhead_ms,
            )
            self.models[as_info.as_id] = model
        return model

    def get(self, as_id: int) -> Optional[IntraDomainModel]:
        """Return the model for ``as_id`` if one has been registered."""
        return self.models.get(as_id)
