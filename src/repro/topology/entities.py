"""Core topology entities: ASes, interfaces, links and relationships.

The data model follows SCION terminology (paper §III):

* every AS owns a set of numbered **interfaces**; an interface is the
  attachment point of exactly one inter-domain link and has a geolocation
  (the PoP where the border router sits),
* an **inter-domain link** connects one interface of AS ``a`` to one
  interface of AS ``b`` and carries static metadata — propagation latency,
  bandwidth and the business relationship under which it was established,
* paths are expressed at the granularity of (AS, ingress interface, egress
  interface) hops, which is exactly the information PCBs accumulate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import TopologyError, UnknownInterfaceError
from repro.topology.geo import GeoCoordinate

#: An interface is globally identified by the pair (AS identifier, local
#: interface identifier).
InterfaceID = Tuple[int, int]

#: A link identifier is the unordered pair of its two interface endpoints,
#: normalised so that the lexicographically smaller endpoint comes first.
LinkID = Tuple[InterfaceID, InterfaceID]


class Relationship(enum.Enum):
    """Business relationship of an inter-domain link.

    The values follow the CAIDA AS-relationship convention: a
    customer-provider link is directed (the customer pays the provider),
    while peering links are symmetric.  Core links connect tier-1 ASes.
    """

    CUSTOMER_PROVIDER = "customer-provider"
    PEER = "peer"
    CORE = "core"


@dataclass(frozen=True)
class Interface:
    """One inter-domain attachment point of an AS.

    Attributes:
        as_id: Owning AS.
        interface_id: Identifier local to the owning AS (small integer).
        location: Geolocation of the border router hosting the interface.
    """

    as_id: int
    interface_id: int
    location: GeoCoordinate

    @property
    def key(self) -> InterfaceID:
        """Return the global ``(as_id, interface_id)`` identifier."""
        return (self.as_id, self.interface_id)


@dataclass(frozen=True)
class Link:
    """An inter-domain link between two interfaces of two different ASes.

    Attributes:
        interface_a: One endpoint (``(as_id, interface_id)``).
        interface_b: The other endpoint.
        latency_ms: Propagation latency of the link in milliseconds.
        bandwidth_mbps: Capacity of the link in Mbit/s.
        relationship: Business relationship; for
            :attr:`Relationship.CUSTOMER_PROVIDER` links ``interface_a``
            belongs to the customer and ``interface_b`` to the provider.
    """

    interface_a: InterfaceID
    interface_b: InterfaceID
    latency_ms: float
    bandwidth_mbps: float
    relationship: Relationship

    def __post_init__(self) -> None:
        if self.interface_a[0] == self.interface_b[0]:
            raise TopologyError(
                f"inter-domain link endpoints must be in different ASes, "
                f"got {self.interface_a} and {self.interface_b}"
            )
        if self.latency_ms < 0.0:
            raise TopologyError(f"link latency must be non-negative, got {self.latency_ms}")
        if self.bandwidth_mbps <= 0.0:
            raise TopologyError(f"link bandwidth must be positive, got {self.bandwidth_mbps}")

    @property
    def key(self) -> LinkID:
        """Return the normalised (order-independent) link identifier.

        Memoized in the instance ``__dict__`` (invisible to dataclass
        equality/hashing): the transport resolves ``key`` on every
        delivery, so the normalisation must not repeat per message.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = normalize_link_id(self.interface_a, self.interface_b)
            self.__dict__["_key"] = cached
        return cached

    @property
    def as_pair(self) -> Tuple[int, int]:
        """Return the unordered pair of AS identifiers this link connects."""
        a, b = self.interface_a[0], self.interface_b[0]
        return (a, b) if a <= b else (b, a)

    def other_end(self, interface: InterfaceID) -> InterfaceID:
        """Return the endpoint opposite to ``interface``.

        Raises:
            TopologyError: If ``interface`` is not an endpoint of the link.
        """
        if interface == self.interface_a:
            return self.interface_b
        if interface == self.interface_b:
            return self.interface_a
        raise TopologyError(f"{interface} is not an endpoint of link {self.key}")

    def endpoint_of(self, as_id: int) -> InterfaceID:
        """Return the endpoint that belongs to ``as_id``."""
        if self.interface_a[0] == as_id:
            return self.interface_a
        if self.interface_b[0] == as_id:
            return self.interface_b
        raise TopologyError(f"AS {as_id} is not an endpoint of link {self.key}")

    def is_provider_of(self, as_id: int) -> bool:
        """Return whether the link's other end is a provider of ``as_id``."""
        return (
            self.relationship is Relationship.CUSTOMER_PROVIDER
            and self.interface_a[0] == as_id
        )

    def is_customer_of(self, as_id: int) -> bool:
        """Return whether the link's other end is a customer of ``as_id``."""
        return (
            self.relationship is Relationship.CUSTOMER_PROVIDER
            and self.interface_b[0] == as_id
        )


def normalize_link_id(a: InterfaceID, b: InterfaceID) -> LinkID:
    """Return the canonical identifier for the link between ``a`` and ``b``."""
    return (a, b) if a <= b else (b, a)


@dataclass
class ASInfo:
    """All locally-owned information about one AS.

    Attributes:
        as_id: Identifier of the AS.
        interfaces: Mapping from local interface identifier to
            :class:`Interface`.
        name: Optional human-readable name (used by examples and reports).
    """

    as_id: int
    interfaces: Dict[int, Interface] = field(default_factory=dict)
    name: Optional[str] = None

    def add_interface(self, interface: Interface) -> None:
        """Register ``interface`` on this AS.

        Raises:
            TopologyError: If the interface belongs to a different AS or its
                identifier is already taken.
        """
        if interface.as_id != self.as_id:
            raise TopologyError(
                f"interface {interface.key} cannot be added to AS {self.as_id}"
            )
        if interface.interface_id in self.interfaces:
            raise TopologyError(
                f"AS {self.as_id} already has an interface {interface.interface_id}"
            )
        self.interfaces[interface.interface_id] = interface

    def interface(self, interface_id: int) -> Interface:
        """Return the interface with local identifier ``interface_id``.

        Raises:
            UnknownInterfaceError: If no such interface exists.
        """
        try:
            return self.interfaces[interface_id]
        except KeyError:
            raise UnknownInterfaceError(self.as_id, interface_id) from None

    def interface_ids(self) -> Tuple[int, ...]:
        """Return the sorted local identifiers of all interfaces."""
        return tuple(sorted(self.interfaces))

    def __iter__(self) -> Iterator[Interface]:
        for interface_id in sorted(self.interfaces):
            yield self.interfaces[interface_id]

    def __len__(self) -> int:
        return len(self.interfaces)

    @property
    def degree(self) -> int:
        """Return the number of inter-domain interfaces (the AS degree)."""
        return len(self.interfaces)
