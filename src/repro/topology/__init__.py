"""Internet topology substrate.

The paper evaluates IREC on a topology derived from the CAIDA geo-rel
dataset: the 500 highest-degree ASes, more than 100 000 inter-domain links,
with business relationships and per-link geolocations that allow estimating
propagation delay from the great-circle distance between link endpoints.

This package provides everything the rest of the library needs from that
dataset:

* :mod:`repro.topology.geo` — geographic coordinates, great-circle
  distances and fibre propagation delays,
* :mod:`repro.topology.entities` — ASes, interfaces, inter-domain links and
  business relationships,
* :mod:`repro.topology.graph` — the :class:`Topology` container with
  neighbour, link and policy queries,
* :mod:`repro.topology.intra_domain` — intra-AS latency models between the
  interfaces of one AS,
* :mod:`repro.topology.pops` — points of presence derived from interface
  geolocations,
* :mod:`repro.topology.generator` — a synthetic generator producing
  CAIDA-geo-rel-like topologies (heavy-tailed degrees, multi-PoP ASes,
  customer/provider/peer relationships, geo-embedded links), and
* :mod:`repro.topology.caida` — a reader/writer for a simple geo-rel text
  format so that users with access to the real dataset can load it.
"""

from repro.topology.entities import (
    ASInfo,
    Interface,
    InterfaceID,
    Link,
    LinkID,
    Relationship,
)
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.geo import GeoCoordinate, great_circle_km, propagation_delay_ms
from repro.topology.graph import Topology
from repro.topology.intra_domain import IntraDomainModel
from repro.topology.pops import PointOfPresence, derive_pops
from repro.topology.validation import ValidationReport, validate_topology

__all__ = [
    "ValidationReport",
    "validate_topology",
    "ASInfo",
    "GeoCoordinate",
    "Interface",
    "InterfaceID",
    "IntraDomainModel",
    "Link",
    "LinkID",
    "PointOfPresence",
    "Relationship",
    "Topology",
    "TopologyConfig",
    "derive_pops",
    "generate_topology",
    "great_circle_km",
    "propagation_delay_ms",
]
