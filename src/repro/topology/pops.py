"""Points of presence (PoPs).

The paper defines a PoP of an AS as "a geolocation where it has at least
one inter-domain link" and evaluates the minimum propagation delay between
any pair of PoPs in two different ASes (paper §VIII-C).  This module
derives PoPs from interface geolocations by clustering interfaces that sit
at (almost) the same location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.topology.entities import InterfaceID
from repro.topology.geo import GeoCoordinate, centroid, cluster_by_distance
from repro.topology.graph import Topology

#: Interfaces closer than this are considered to be at the same PoP.  The
#: CAIDA geo-rel dataset reports link locations at city granularity, so a
#: small co-location radius is appropriate.
DEFAULT_COLOCATION_RADIUS_KM = 50.0


@dataclass(frozen=True)
class PointOfPresence:
    """A geographic presence of an AS.

    Attributes:
        as_id: Owning AS.
        pop_id: Index of the PoP within the AS (stable, deterministic).
        location: Representative location (centroid of member interfaces).
        interfaces: Member interfaces (global identifiers), sorted.
    """

    as_id: int
    pop_id: int
    location: GeoCoordinate
    interfaces: Tuple[InterfaceID, ...]

    @property
    def key(self) -> Tuple[int, int]:
        """Return the global ``(as_id, pop_id)`` identifier."""
        return (self.as_id, self.pop_id)


def derive_pops(
    topology: Topology,
    colocation_radius_km: float = DEFAULT_COLOCATION_RADIUS_KM,
) -> Dict[int, List[PointOfPresence]]:
    """Derive the PoPs of every AS in ``topology``.

    Interfaces of the same AS are clustered greedily: two interfaces belong
    to the same PoP whenever they are within ``colocation_radius_km`` of
    every other member of the PoP.

    Returns:
        Mapping from AS identifier to its list of PoPs (ordered by
        ``pop_id``).
    """
    result: Dict[int, List[PointOfPresence]] = {}
    for as_info in topology:
        labelled: List[Tuple[int, GeoCoordinate]] = [
            (interface.interface_id, interface.location) for interface in as_info
        ]
        clusters = cluster_by_distance(labelled, colocation_radius_km)
        pops: List[PointOfPresence] = []
        for pop_id, members in enumerate(clusters):
            member_ids = sorted(int(m) for m in members)
            locations = [as_info.interface(m).location for m in member_ids]
            pops.append(
                PointOfPresence(
                    as_id=as_info.as_id,
                    pop_id=pop_id,
                    location=centroid(locations),
                    interfaces=tuple((as_info.as_id, m) for m in member_ids),
                )
            )
        result[as_info.as_id] = pops
    return result


def pop_of_interface(
    pops_by_as: Dict[int, List[PointOfPresence]], interface: InterfaceID
) -> PointOfPresence:
    """Return the PoP that contains ``interface``.

    Raises:
        KeyError: If the interface does not belong to any derived PoP.
    """
    as_id = interface[0]
    for pop in pops_by_as.get(as_id, ()):
        if interface in pop.interfaces:
            return pop
    raise KeyError(f"interface {interface} does not belong to any PoP")


def pop_pairs(
    pops_by_as: Dict[int, List[PointOfPresence]],
    as_pairs: Sequence[Tuple[int, int]],
) -> List[Tuple[PointOfPresence, PointOfPresence]]:
    """Enumerate all PoP pairs for the given AS pairs.

    Used by the Figure-8a evaluation, which considers every pair of PoPs in
    two different ASes.
    """
    result: List[Tuple[PointOfPresence, PointOfPresence]] = []
    for src_as, dst_as in as_pairs:
        for src_pop in pops_by_as.get(src_as, ()):
            for dst_pop in pops_by_as.get(dst_as, ()):
                result.append((src_pop, dst_pop))
    return result
