"""Reader and writer for a geo-rel style topology exchange format.

The paper builds its simulation topology from the CAIDA AS-relationship
geolocation (geo-rel) dataset, which records, per inter-domain link, the two
ASes, their business relationship and the city where the link is located.
That dataset cannot be redistributed, so the library ships a synthetic
generator (:mod:`repro.topology.generator`).  For users who *do* have access
to suitable data, this module defines a small line-oriented text format and
converts it to and from :class:`~repro.topology.graph.Topology` objects, so
real data can be dropped in without code changes.

Format (one link per line, ``|``-separated, ``#`` starts a comment)::

    as_a|as_b|relationship|lat_a|lon_a|lat_b|lon_b|bandwidth_mbps

``relationship`` is ``p2c`` (``as_a`` is the customer of ``as_b``), ``p2p``
or ``core``.  Latency is always derived from the great-circle distance, as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.exceptions import TopologyError
from repro.topology.entities import ASInfo, Interface, Link, Relationship
from repro.topology.geo import GeoCoordinate, propagation_delay_ms
from repro.topology.graph import Topology

_RELATIONSHIP_TOKENS: Dict[str, Relationship] = {
    "p2c": Relationship.CUSTOMER_PROVIDER,
    "p2p": Relationship.PEER,
    "core": Relationship.CORE,
}
_TOKENS_BY_RELATIONSHIP = {value: key for key, value in _RELATIONSHIP_TOKENS.items()}

#: Bandwidth assumed when a record omits the optional bandwidth column.
DEFAULT_BANDWIDTH_MBPS = 10_000.0


@dataclass(frozen=True)
class GeoRelRecord:
    """One parsed line of the geo-rel exchange format."""

    as_a: int
    as_b: int
    relationship: Relationship
    location_a: GeoCoordinate
    location_b: GeoCoordinate
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS


def parse_line(line: str) -> GeoRelRecord:
    """Parse one non-comment line of the exchange format.

    Raises:
        TopologyError: If the line is malformed.
    """
    fields = [f.strip() for f in line.strip().split("|")]
    if len(fields) not in (7, 8):
        raise TopologyError(f"expected 7 or 8 fields, got {len(fields)}: {line!r}")
    try:
        as_a = int(fields[0])
        as_b = int(fields[1])
        relationship = _RELATIONSHIP_TOKENS[fields[2]]
        location_a = GeoCoordinate(float(fields[3]), float(fields[4]))
        location_b = GeoCoordinate(float(fields[5]), float(fields[6]))
        bandwidth = float(fields[7]) if len(fields) == 8 else DEFAULT_BANDWIDTH_MBPS
    except (ValueError, KeyError) as exc:
        raise TopologyError(f"malformed geo-rel line {line!r}: {exc}") from exc
    return GeoRelRecord(
        as_a=as_a,
        as_b=as_b,
        relationship=relationship,
        location_a=location_a,
        location_b=location_b,
        bandwidth_mbps=bandwidth,
    )


def parse_lines(lines: Iterable[str]) -> List[GeoRelRecord]:
    """Parse an iterable of lines, skipping blank lines and comments."""
    records = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        records.append(parse_line(stripped))
    return records


def records_to_topology(records: Iterable[GeoRelRecord]) -> Topology:
    """Build a :class:`Topology` from parsed geo-rel records.

    Every record becomes one inter-domain link with a fresh interface on
    each endpoint AS, located at the record's per-endpoint coordinates.
    Link latency is the great-circle fibre delay between the endpoints.
    """
    topology = Topology()
    next_interface: Dict[int, int] = {}

    def ensure_as(as_id: int) -> ASInfo:
        if as_id not in topology:
            topology.add_as(ASInfo(as_id=as_id))
            next_interface[as_id] = 1
        return topology.as_info(as_id)

    def new_interface(as_id: int, location: GeoCoordinate) -> Interface:
        info = ensure_as(as_id)
        interface = Interface(as_id=as_id, interface_id=next_interface[as_id], location=location)
        next_interface[as_id] += 1
        info.add_interface(interface)
        return interface

    for record in records:
        interface_a = new_interface(record.as_a, record.location_a)
        interface_b = new_interface(record.as_b, record.location_b)
        latency = max(0.05, propagation_delay_ms(record.location_a, record.location_b))
        topology.add_link(
            Link(
                interface_a=interface_a.key,
                interface_b=interface_b.key,
                latency_ms=latency,
                bandwidth_mbps=record.bandwidth_mbps,
                relationship=record.relationship,
            )
        )
    return topology


def load_topology(path: Union[str, Path]) -> Topology:
    """Load a topology from a geo-rel exchange file."""
    content = Path(path).read_text(encoding="utf-8")
    return records_to_topology(parse_lines(content.splitlines()))


def topology_to_records(topology: Topology) -> List[GeoRelRecord]:
    """Convert a topology back into geo-rel records (one per link)."""
    records = []
    for link in topology.links.values():
        location_a = topology.interface(link.interface_a).location
        location_b = topology.interface(link.interface_b).location
        records.append(
            GeoRelRecord(
                as_a=link.interface_a[0],
                as_b=link.interface_b[0],
                relationship=link.relationship,
                location_a=location_a,
                location_b=location_b,
                bandwidth_mbps=link.bandwidth_mbps,
            )
        )
    return records


def format_record(record: GeoRelRecord) -> str:
    """Format one record as an exchange-format line."""
    return "|".join(
        [
            str(record.as_a),
            str(record.as_b),
            _TOKENS_BY_RELATIONSHIP[record.relationship],
            f"{record.location_a.latitude:.4f}",
            f"{record.location_a.longitude:.4f}",
            f"{record.location_b.latitude:.4f}",
            f"{record.location_b.longitude:.4f}",
            f"{record.bandwidth_mbps:.1f}",
        ]
    )


def dump_topology(topology: Topology, path: Union[str, Path]) -> None:
    """Write ``topology`` to ``path`` in the exchange format."""
    lines = ["# geo-rel exchange format: as_a|as_b|rel|lat_a|lon_a|lat_b|lon_b|bw_mbps"]
    lines.extend(format_record(record) for record in topology_to_records(topology))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
