"""Topology consistency validation.

Generated or imported topologies feed every other subsystem, so this module
provides a single place that checks the invariants the rest of the library
assumes: every interface is attached to exactly one link, link endpoints
reference existing interfaces, latencies are consistent with the endpoint
geolocations, relationships are well-formed, and (optionally) the AS graph
is connected.  The generator tests and the CAIDA importer use it, and users
loading their own data are encouraged to run it once at startup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.topology.geo import propagation_delay_ms
from repro.topology.graph import Topology

#: Tolerated relative deviation between a link's annotated latency and the
#: great-circle estimate derived from its endpoint locations.  Real links
#: are never faster than the geodesic but may be considerably slower (fibre
#: detours), so only the lower bound is enforced strictly.
GEODESIC_SLACK = 0.25


@dataclass
class ValidationIssue:
    """One problem found during validation."""

    severity: str  # "error" or "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return f"[{self.severity}] {self.message}"


@dataclass
class ValidationReport:
    """The collected findings of one validation run."""

    issues: List[ValidationIssue] = field(default_factory=list)

    def add_error(self, message: str) -> None:
        """Record an error-level issue."""
        self.issues.append(ValidationIssue(severity="error", message=message))

    def add_warning(self, message: str) -> None:
        """Record a warning-level issue."""
        self.issues.append(ValidationIssue(severity="warning", message=message))

    @property
    def errors(self) -> List[ValidationIssue]:
        """Return only the error-level issues."""
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        """Return only the warning-level issues."""
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def is_valid(self) -> bool:
        """Return whether no error-level issues were found."""
        return not self.errors


def validate_topology(topology: Topology, require_connected: bool = True) -> ValidationReport:
    """Check the structural invariants of ``topology``.

    Args:
        topology: The topology to validate.
        require_connected: Whether a disconnected AS graph is an error
            (default) or merely a warning.

    Returns:
        A :class:`ValidationReport`; callers typically assert
        ``report.is_valid`` and log the warnings.
    """
    report = ValidationReport()

    attached = set()
    for link in topology.links.values():
        for endpoint in (link.interface_a, link.interface_b):
            as_id, interface_id = endpoint
            if as_id not in topology:
                report.add_error(f"link {link.key} references unknown AS {as_id}")
                continue
            if interface_id not in topology.as_info(as_id).interfaces:
                report.add_error(
                    f"link {link.key} references unknown interface {endpoint}"
                )
                continue
            attached.add(endpoint)

        # Latency must not undercut the geodesic propagation delay.
        location_a = topology.interface(link.interface_a).location
        location_b = topology.interface(link.interface_b).location
        geodesic = propagation_delay_ms(location_a, location_b)
        if geodesic > 0.0 and link.latency_ms < geodesic * (1.0 - GEODESIC_SLACK):
            report.add_error(
                f"link {link.key} is faster than light: {link.latency_ms:.3f} ms over a "
                f"{geodesic:.3f} ms geodesic"
            )
        if link.latency_ms > max(1.0, geodesic) * 50.0:
            report.add_warning(
                f"link {link.key} latency {link.latency_ms:.1f} ms is implausibly high "
                f"for its endpoint distance"
            )

    for as_info in topology:
        if as_info.degree == 0:
            report.add_warning(f"AS {as_info.as_id} has no interfaces")
        for interface in as_info:
            if interface.key not in attached:
                report.add_warning(
                    f"interface {interface.key} is not attached to any link"
                )

    if topology.num_ases > 1 and not topology.is_connected():
        if require_connected:
            report.add_error("the AS-level graph is not connected")
        else:
            report.add_warning("the AS-level graph is not connected")
    return report
