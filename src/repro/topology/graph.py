"""The :class:`Topology` container.

A topology owns every AS and every inter-domain link, and offers the query
surface the control plane needs: interface and link lookups, neighbour
enumeration, relationship-aware (valley-free) export checks, conversion to a
:mod:`networkx` graph for the analysis code, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.exceptions import TopologyError, UnknownASError, UnknownLinkError
from repro.topology.entities import (
    ASInfo,
    Interface,
    InterfaceID,
    Link,
    LinkID,
    Relationship,
    normalize_link_id,
)


@dataclass
class Topology:
    """An inter-domain topology of ASes and links.

    The container is mutable during construction (``add_as`` / ``add_link``)
    and is treated as immutable afterwards by the rest of the library.
    """

    ases: Dict[int, ASInfo] = field(default_factory=dict)
    links: Dict[LinkID, Link] = field(default_factory=dict)
    _links_by_interface: Dict[InterfaceID, Link] = field(default_factory=dict)
    _neighbors: Dict[int, Set[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_as(self, as_info: ASInfo) -> None:
        """Register an AS.

        Raises:
            TopologyError: If the AS identifier is already present.
        """
        if as_info.as_id in self.ases:
            raise TopologyError(f"AS {as_info.as_id} already exists in the topology")
        self.ases[as_info.as_id] = as_info
        self._neighbors.setdefault(as_info.as_id, set())

    def add_link(self, link: Link) -> None:
        """Register an inter-domain link.

        Both endpoint interfaces must already exist on their ASes and must
        not yet be attached to another link (an interface is the endpoint of
        exactly one link, as in SCION).
        """
        for endpoint in (link.interface_a, link.interface_b):
            as_id, interface_id = endpoint
            if as_id not in self.ases:
                raise UnknownASError(as_id)
            self.ases[as_id].interface(interface_id)  # raises if missing
            if endpoint in self._links_by_interface:
                raise TopologyError(f"interface {endpoint} is already attached to a link")
        if link.key in self.links:
            raise TopologyError(f"link {link.key} already exists in the topology")

        self.links[link.key] = link
        self._links_by_interface[link.interface_a] = link
        self._links_by_interface[link.interface_b] = link
        self._neighbors.setdefault(link.interface_a[0], set()).add(link.interface_b[0])
        self._neighbors.setdefault(link.interface_b[0], set()).add(link.interface_a[0])

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def as_info(self, as_id: int) -> ASInfo:
        """Return the :class:`ASInfo` of ``as_id``."""
        try:
            return self.ases[as_id]
        except KeyError:
            raise UnknownASError(as_id) from None

    def interface(self, interface: InterfaceID) -> Interface:
        """Return the :class:`Interface` object for a global identifier."""
        as_id, interface_id = interface
        return self.as_info(as_id).interface(interface_id)

    def link_of_interface(self, interface: InterfaceID) -> Link:
        """Return the link attached to ``interface``."""
        link = self._links_by_interface.get(interface)
        if link is None:
            raise UnknownLinkError(f"no link attached to interface {interface}")
        return link

    def link_between(self, a: InterfaceID, b: InterfaceID) -> Link:
        """Return the link connecting interfaces ``a`` and ``b``."""
        link = self.links.get(normalize_link_id(a, b))
        if link is None:
            raise UnknownLinkError(f"no link between {a} and {b}")
        return link

    def remote_interface(self, interface: InterfaceID) -> InterfaceID:
        """Return the interface at the far end of the link attached here."""
        return self.link_of_interface(interface).other_end(interface)

    def neighbor_of(self, interface: InterfaceID) -> int:
        """Return the AS at the far end of the link attached to ``interface``."""
        return self.remote_interface(interface)[0]

    def neighbors(self, as_id: int) -> Tuple[int, ...]:
        """Return the sorted identifiers of all neighbouring ASes."""
        if as_id not in self.ases:
            raise UnknownASError(as_id)
        return tuple(sorted(self._neighbors.get(as_id, ())))

    def interfaces_of(self, as_id: int) -> Tuple[Interface, ...]:
        """Return all interfaces of ``as_id`` in identifier order."""
        return tuple(self.as_info(as_id))

    def interfaces_towards(self, as_id: int, neighbor_as: int) -> Tuple[Interface, ...]:
        """Return the interfaces of ``as_id`` whose links lead to ``neighbor_as``."""
        result = []
        for interface in self.as_info(as_id):
            link = self._links_by_interface.get(interface.key)
            if link is not None and link.other_end(interface.key)[0] == neighbor_as:
                result.append(interface)
        return tuple(result)

    def links_of(self, as_id: int) -> Tuple[Link, ...]:
        """Return all links with one endpoint in ``as_id``."""
        result = []
        for interface in self.as_info(as_id):
            link = self._links_by_interface.get(interface.key)
            if link is not None:
                result.append(link)
        return tuple(result)

    # ------------------------------------------------------------------
    # relationships and routing policy
    # ------------------------------------------------------------------
    def relationship(self, from_as: int, to_as: int) -> Optional[Relationship]:
        """Return the relationship of any link between two ASes.

        If several parallel links exist they are assumed to share the same
        business relationship (as in the CAIDA dataset); the relationship of
        the first link found is returned.  ``None`` means the ASes are not
        adjacent.
        """
        for interface in self.as_info(from_as):
            link = self._links_by_interface.get(interface.key)
            if link is not None and link.other_end(interface.key)[0] == to_as:
                return link.relationship
        return None

    def providers_of(self, as_id: int) -> Tuple[int, ...]:
        """Return the ASes that are providers of ``as_id``."""
        result = set()
        for link in self.links_of(as_id):
            if link.is_provider_of(as_id):
                result.add(link.other_end(link.endpoint_of(as_id))[0])
        return tuple(sorted(result))

    def customers_of(self, as_id: int) -> Tuple[int, ...]:
        """Return the ASes that are customers of ``as_id``."""
        result = set()
        for link in self.links_of(as_id):
            if link.is_customer_of(as_id):
                result.add(link.other_end(link.endpoint_of(as_id))[0])
        return tuple(sorted(result))

    def peers_of(self, as_id: int) -> Tuple[int, ...]:
        """Return the ASes peering (or in core relation) with ``as_id``."""
        result = set()
        for link in self.links_of(as_id):
            if link.relationship in (Relationship.PEER, Relationship.CORE):
                result.add(link.other_end(link.endpoint_of(as_id))[0])
        return tuple(sorted(result))

    def export_allowed(self, received_from: Optional[int], via: int, to_as: int) -> bool:
        """Check the Gao-Rexford (valley-free) export rule.

        A path learned from a provider or peer may only be exported to
        customers; a path learned from a customer (or originated locally,
        ``received_from is None``) may be exported to everyone.

        Args:
            received_from: AS from which ``via`` learned the path, or
                ``None`` if ``via`` originated it.
            via: The AS making the export decision.
            to_as: The neighbour the path would be exported to.
        """
        if received_from is None:
            return True
        rel_in = self.relationship(via, received_from)
        if rel_in is None:
            raise TopologyError(f"AS {via} and AS {received_from} are not adjacent")
        learned_from_customer = (
            rel_in is Relationship.CUSTOMER_PROVIDER
            and received_from in self.customers_of(via)
        )
        if learned_from_customer:
            return True
        # Learned from a provider, peer or core neighbour: only export to
        # customers.
        return to_as in self.customers_of(via)

    # ------------------------------------------------------------------
    # conversions and statistics
    # ------------------------------------------------------------------
    def to_networkx(self, multigraph: bool = True) -> nx.Graph:
        """Convert the topology to a networkx graph.

        Args:
            multigraph: If ``True`` (default) parallel links between the
                same AS pair become parallel edges; otherwise only the
                lowest-latency link per AS pair is kept.

        Returns:
            A graph whose nodes are AS identifiers and whose edges carry
            ``latency_ms``, ``bandwidth_mbps``, ``relationship`` and
            ``link_id`` attributes.
        """
        graph: nx.Graph = nx.MultiGraph() if multigraph else nx.Graph()
        graph.add_nodes_from(self.ases)
        for link in self.links.values():
            a, b = link.interface_a[0], link.interface_b[0]
            attrs = {
                "latency_ms": link.latency_ms,
                "bandwidth_mbps": link.bandwidth_mbps,
                "relationship": link.relationship,
                "link_id": link.key,
            }
            if multigraph:
                graph.add_edge(a, b, **attrs)
            else:
                existing = graph.get_edge_data(a, b)
                if existing is None or existing["latency_ms"] > link.latency_ms:
                    graph.add_edge(a, b, **attrs)
        return graph

    def as_ids(self) -> Tuple[int, ...]:
        """Return all AS identifiers in sorted order."""
        return tuple(sorted(self.ases))

    def link_ids(self) -> Tuple[LinkID, ...]:
        """Return all link identifiers in sorted (deterministic) order.

        The dynamic-scenario generators draw failure/churn victims from
        this ordering, so seeded runs are reproducible regardless of the
        links' insertion order.
        """
        return tuple(sorted(self.links))

    def links_between(self, as_a: int, as_b: int) -> Tuple[Link, ...]:
        """Return every (parallel) link connecting two ASes, sorted by id."""
        for as_id in (as_a, as_b):
            if as_id not in self.ases:
                raise UnknownASError(as_id)
        result = [
            link
            for link in self.links.values()
            if {link.interface_a[0], link.interface_b[0]} == {as_a, as_b}
        ]
        return tuple(sorted(result, key=lambda link: link.key))

    def is_connected(self) -> bool:
        """Return whether the AS-level graph is connected."""
        if not self.ases:
            return True
        return nx.is_connected(self.to_networkx(multigraph=False))

    @property
    def num_ases(self) -> int:
        """Return the number of ASes."""
        return len(self.ases)

    @property
    def num_links(self) -> int:
        """Return the number of inter-domain links."""
        return len(self.links)

    def degree_of(self, as_id: int) -> int:
        """Return the number of inter-domain links attached to ``as_id``."""
        return len(self.links_of(as_id))

    def __iter__(self) -> Iterator[ASInfo]:
        for as_id in sorted(self.ases):
            yield self.ases[as_id]

    def __contains__(self, as_id: int) -> bool:
        return as_id in self.ases

    def summary(self) -> Dict[str, float]:
        """Return a dictionary of headline statistics for reports."""
        degrees = [self.degree_of(a) for a in self.ases] or [0]
        return {
            "ases": float(self.num_ases),
            "links": float(self.num_links),
            "min_degree": float(min(degrees)),
            "max_degree": float(max(degrees)),
            "mean_degree": float(sum(degrees)) / max(1, len(degrees)),
        }


def induced_subtopology(topology: Topology, keep: Iterable[int]) -> Topology:
    """Return the sub-topology induced by the AS set ``keep``.

    Links with at least one endpoint outside ``keep`` are dropped, and so
    are the interfaces that attached them.  The paper's evaluation prunes
    the CAIDA dataset down to the 500 highest-degree ASes with exactly this
    operation.
    """
    keep_set = set(int(a) for a in keep)
    result = Topology()
    retained_links: List[Link] = [
        link
        for link in topology.links.values()
        if link.interface_a[0] in keep_set and link.interface_b[0] in keep_set
    ]
    used_interfaces: Set[InterfaceID] = set()
    for link in retained_links:
        used_interfaces.add(link.interface_a)
        used_interfaces.add(link.interface_b)

    for as_id in sorted(keep_set):
        original = topology.as_info(as_id)
        pruned = ASInfo(as_id=as_id, name=original.name)
        for interface in original:
            if interface.key in used_interfaces:
                pruned.add_interface(interface)
        result.add_as(pruned)
    for link in retained_links:
        result.add_link(link)
    return result
