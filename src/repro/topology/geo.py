"""Geographic primitives.

The CAIDA geo-rel dataset annotates inter-domain links with the location of
the link endpoints.  The paper uses those locations to estimate per-link
propagation delay from the great-circle distance.  This module provides the
coordinate type and the distance/delay computations, plus a small catalogue
of real city coordinates used by the synthetic topology generator to place
points of presence at plausible locations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.units import fiber_delay_ms

#: Mean Earth radius in kilometres, used by the great-circle computation.
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, order=True)
class GeoCoordinate:
    """A point on the Earth's surface.

    Attributes:
        latitude: Degrees north of the equator, in ``[-90, 90]``.
        longitude: Degrees east of the prime meridian, in ``[-180, 180]``.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "GeoCoordinate") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self, other)

    def delay_ms(self, other: "GeoCoordinate") -> float:
        """Fibre propagation delay to ``other`` in milliseconds."""
        return propagation_delay_ms(self, other)


def great_circle_km(a: GeoCoordinate, b: GeoCoordinate) -> float:
    """Return the great-circle distance between two coordinates.

    Uses the haversine formula, which is numerically stable for the small
    and medium distances that dominate Internet topologies.
    """
    lat1 = math.radians(a.latitude)
    lat2 = math.radians(b.latitude)
    dlat = lat2 - lat1
    dlon = math.radians(b.longitude - a.longitude)

    sin_dlat = math.sin(dlat / 2.0)
    sin_dlon = math.sin(dlon / 2.0)
    h = sin_dlat * sin_dlat + math.cos(lat1) * math.cos(lat2) * sin_dlon * sin_dlon
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def propagation_delay_ms(a: GeoCoordinate, b: GeoCoordinate) -> float:
    """Return the estimated fibre propagation delay between two points.

    This mirrors the paper's methodology: the delay of an inter-domain link
    is estimated from the great-circle distance between the geolocations of
    its two endpoints, assuming signal propagation at two thirds of the
    speed of light.
    """
    return fiber_delay_ms(great_circle_km(a, b))


def centroid(points: Sequence[GeoCoordinate]) -> GeoCoordinate:
    """Return the (planar-approximation) centroid of a set of coordinates.

    The centroid is computed in latitude/longitude space, which is accurate
    enough for the clustering use cases in this library (interface groups
    with radii of a few hundred to a few thousand kilometres).
    """
    if not points:
        raise ValueError("cannot compute the centroid of an empty set of points")
    lat = sum(p.latitude for p in points) / len(points)
    lon = sum(p.longitude for p in points) / len(points)
    return GeoCoordinate(latitude=lat, longitude=lon)


def cluster_by_distance(
    points: Sequence[Tuple[object, GeoCoordinate]], radius_km: float
) -> List[List[object]]:
    """Greedily cluster labelled points so that intra-cluster distance is bounded.

    This is the clustering primitive behind interface groups (paper §IV-D
    and §VIII-B): the origin AS groups its interfaces so that any two
    interfaces in the same group are at most ``radius_km`` apart.

    Args:
        points: Sequence of ``(label, coordinate)`` pairs.
        radius_km: Maximum allowed distance between any two members of the
            same cluster.

    Returns:
        A list of clusters, each a list of labels, in deterministic order.
    """
    if radius_km < 0.0:
        raise ValueError(f"radius must be non-negative, got {radius_km}")

    clusters: List[List[object]] = []
    cluster_coords: List[List[GeoCoordinate]] = []
    for label, coord in points:
        placed = False
        for members, coords in zip(clusters, cluster_coords):
            if all(great_circle_km(coord, existing) <= radius_km for existing in coords):
                members.append(label)
                coords.append(coord)
                placed = True
                break
        if not placed:
            clusters.append([label])
            cluster_coords.append([coord])
    return clusters


#: A catalogue of well-known city coordinates.  The synthetic topology
#: generator samples PoP locations from this list so that distances (and
#: therefore delays) in generated topologies are Internet-plausible.
WORLD_CITIES: Tuple[Tuple[str, GeoCoordinate], ...] = (
    ("new-york", GeoCoordinate(40.7128, -74.0060)),
    ("los-angeles", GeoCoordinate(34.0522, -118.2437)),
    ("chicago", GeoCoordinate(41.8781, -87.6298)),
    ("dallas", GeoCoordinate(32.7767, -96.7970)),
    ("miami", GeoCoordinate(25.7617, -80.1918)),
    ("seattle", GeoCoordinate(47.6062, -122.3321)),
    ("toronto", GeoCoordinate(43.6532, -79.3832)),
    ("mexico-city", GeoCoordinate(19.4326, -99.1332)),
    ("sao-paulo", GeoCoordinate(-23.5505, -46.6333)),
    ("buenos-aires", GeoCoordinate(-34.6037, -58.3816)),
    ("santiago", GeoCoordinate(-33.4489, -70.6693)),
    ("bogota", GeoCoordinate(4.7110, -74.0721)),
    ("london", GeoCoordinate(51.5074, -0.1278)),
    ("paris", GeoCoordinate(48.8566, 2.3522)),
    ("frankfurt", GeoCoordinate(50.1109, 8.6821)),
    ("amsterdam", GeoCoordinate(52.3676, 4.9041)),
    ("zurich", GeoCoordinate(47.3769, 8.5417)),
    ("madrid", GeoCoordinate(40.4168, -3.7038)),
    ("milan", GeoCoordinate(45.4642, 9.1900)),
    ("stockholm", GeoCoordinate(59.3293, 18.0686)),
    ("warsaw", GeoCoordinate(52.2297, 21.0122)),
    ("vienna", GeoCoordinate(48.2082, 16.3738)),
    ("moscow", GeoCoordinate(55.7558, 37.6173)),
    ("istanbul", GeoCoordinate(41.0082, 28.9784)),
    ("dubai", GeoCoordinate(25.2048, 55.2708)),
    ("tel-aviv", GeoCoordinate(32.0853, 34.7818)),
    ("johannesburg", GeoCoordinate(-26.2041, 28.0473)),
    ("nairobi", GeoCoordinate(-1.2921, 36.8219)),
    ("lagos", GeoCoordinate(6.5244, 3.3792)),
    ("cairo", GeoCoordinate(30.0444, 31.2357)),
    ("mumbai", GeoCoordinate(19.0760, 72.8777)),
    ("delhi", GeoCoordinate(28.7041, 77.1025)),
    ("chennai", GeoCoordinate(13.0827, 80.2707)),
    ("singapore", GeoCoordinate(1.3521, 103.8198)),
    ("jakarta", GeoCoordinate(-6.2088, 106.8456)),
    ("bangkok", GeoCoordinate(13.7563, 100.5018)),
    ("hong-kong", GeoCoordinate(22.3193, 114.1694)),
    ("taipei", GeoCoordinate(25.0330, 121.5654)),
    ("tokyo", GeoCoordinate(35.6762, 139.6503)),
    ("osaka", GeoCoordinate(34.6937, 135.5023)),
    ("seoul", GeoCoordinate(37.5665, 126.9780)),
    ("shanghai", GeoCoordinate(31.2304, 121.4737)),
    ("beijing", GeoCoordinate(39.9042, 116.4074)),
    ("sydney", GeoCoordinate(-33.8688, 151.2093)),
    ("melbourne", GeoCoordinate(-37.8136, 144.9631)),
    ("auckland", GeoCoordinate(-36.8509, 174.7645)),
    ("honolulu", GeoCoordinate(21.3069, -157.8583)),
    ("anchorage", GeoCoordinate(61.2181, -149.9003)),
    ("reykjavik", GeoCoordinate(64.1466, -21.9426)),
    ("lisbon", GeoCoordinate(38.7223, -9.1393)),
)


def city_coordinates() -> List[GeoCoordinate]:
    """Return the coordinates of the built-in city catalogue."""
    return [coord for _name, coord in WORLD_CITIES]


def bounding_delay_ms(points: Iterable[GeoCoordinate]) -> float:
    """Return the largest pairwise fibre delay among ``points``.

    Useful for sanity checks and for sizing simulation horizons: no single
    propagation step can take longer than the topology's geographic extent
    allows.
    """
    pts = list(points)
    worst = 0.0
    for i, a in enumerate(pts):
        for b in pts[i + 1:]:
            worst = max(worst, propagation_delay_ms(a, b))
    return worst
