"""Measurement collection for the large-scale simulations.

The collector records every control-plane transmission: which AS sent a PCB
over which interface during which beaconing period.  Those counts are the
raw material of Figure 8c ("PCBs per interface per period") and of the
general message-complexity discussion in §VIII-C.

Dynamic scenarios additionally record dropped transmissions (PCBs lost on
failed links), revocation notifications, and — through the
:class:`ConvergenceCollector` — per-event disruption records: paths lost,
paths regained, time-to-recovery and the control-message overhead spent
converging.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import QuantileReservoir
from repro.topology.entities import InterfaceID


@dataclass
class MetricsCollector:
    """Per-interface, per-period transmission counters.

    Attributes:
        period_ms: Length of one beaconing period; transmissions are binned
            by ``floor(time / period_ms)``.
    """

    period_ms: float = 600_000.0
    _counts: Dict[Tuple[InterfaceID, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _returned: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _revocations: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _registrations: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _queries: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _query_responses: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _fetches: int = 0
    total_sent: int = 0
    total_dropped: int = 0
    total_revocations: int = 0
    revocations_dropped: int = 0
    total_registrations: int = 0
    registrations_dropped: int = 0
    total_queries: int = 0
    total_query_responses: int = 0
    queries_dropped: int = 0
    gray_dropped: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    inbox_dropped: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    inbox_marked: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    inbox_deferred: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    _queue_high_water: Dict[int, int] = field(default_factory=dict)
    # Bounded reservoir sample (was an unbounded List[float] — one entry
    # per serviced message leaked memory on long overloaded runs).  Count,
    # mean and max stay exact; p50/p99 come from the uniform sample, which
    # is the full stream until it outgrows the reservoir capacity.
    _queue_delays: QuantileReservoir = field(default_factory=QuantileReservoir)
    revocation_batches: int = 0
    revocation_batch_elements: int = 0
    revocation_batch_max: int = 0
    revocation_multi_batches: int = 0

    def record_send(self, sender_as: int, interface_id: int, time_ms: float) -> None:
        """Record one PCB transmission."""
        period = int(time_ms // self.period_ms)
        self._counts[((sender_as, interface_id), period)] += 1
        self.total_sent += 1

    def record_return(self, sender_as: int, time_ms: float) -> None:
        """Record one pull-based beacon returned to its origin."""
        period = int(time_ms // self.period_ms)
        self._returned[period] += 1

    def record_algorithm_fetch(self) -> None:
        """Record one remote algorithm payload fetch."""
        self._fetches += 1

    def record_drop(self, time_ms: float) -> None:
        """Record one PCB lost on an unavailable link (dynamic scenarios)."""
        self.total_dropped += 1

    def record_revocation(self, sender_as: int, interface_id: int, time_ms: float) -> None:
        """Record one hop-by-hop revocation message transmission.

        Revocations are real transported messages since PR 4; each
        transmission is recorded here — and *only* here, never through
        :meth:`record_send` — so :meth:`control_messages_total` counts every
        revocation exactly once.
        """
        period = int(time_ms // self.period_ms)
        self._revocations[period] += 1
        self.total_revocations += 1

    def record_revocation_drop(self, time_ms: float) -> None:
        """Record one revocation lost on an unavailable link in flight."""
        self.revocations_dropped += 1

    def record_registration(self, sender_as: int, interface_id: int, time_ms: float) -> None:
        """Record one path-registration message transmission.

        Like revocations, registrations are counted disjointly from PCB
        sends so :meth:`control_messages_total` counts each message of the
        unified fabric exactly once.
        """
        period = int(time_ms // self.period_ms)
        self._registrations[period] += 1
        self.total_registrations += 1

    def record_registration_drop(self, time_ms: float) -> None:
        """Record one path-registration message lost on an unavailable link."""
        self.registrations_dropped += 1

    def record_query(self, sender_as: int, interface_id: int, time_ms: float) -> None:
        """Record one path-query message transmission (disjoint per-kind)."""
        period = int(time_ms // self.period_ms)
        self._queries[period] += 1
        self.total_queries += 1

    def record_query_response(
        self, sender_as: int, interface_id: int, time_ms: float
    ) -> None:
        """Record one path-query-response message transmission."""
        period = int(time_ms // self.period_ms)
        self._query_responses[period] += 1
        self.total_query_responses += 1

    def record_query_drop(self, time_ms: float) -> None:
        """Record one query or response lost on an unavailable link."""
        self.queries_dropped += 1

    def record_gray_drop(self, kind: str, time_ms: float) -> None:
        """Record one message silently swallowed by a degraded link (PR 7).

        Gray-failure and flap-loss drops are counted per message kind,
        *disjoint* from the hard-failure drop counters: a gray failure
        must not perturb the loud-failure accounting (and a clean run's
        golden trace), only this dedicated ledger.
        """
        self.gray_dropped[kind] += 1

    def gray_dropped_total(self) -> int:
        """Return every message silently lost to degraded links so far."""
        return sum(self.gray_dropped.values())

    # ------------------------------------------------------------------
    # overload accounting (bounded, rate-limited inboxes — PR 6)
    # ------------------------------------------------------------------
    def record_inbox_drop(self, as_id: int, kind: str, time_ms: float) -> None:
        """Record one message tail-dropped by a full bounded inbox."""
        self.inbox_dropped[kind] += 1

    def record_inbox_mark(self, as_id: int, kind: str, time_ms: float) -> None:
        """Record one message congestion-marked instead of dropped."""
        self.inbox_marked[kind] += 1

    def record_inbox_deferral(self, as_id: int, kind: str, time_ms: float) -> None:
        """Record one message serviced later than the tick it arrived on."""
        self.inbox_deferred[kind] += 1

    def record_queue_depth(self, as_id: int, depth: int) -> None:
        """Track the per-AS inbox queue-depth high-water mark."""
        if depth > self._queue_high_water.get(as_id, 0):
            self._queue_high_water[as_id] = depth

    def record_queue_delay(self, as_id: int, delay_ms: float) -> None:
        """Record one serviced message's queueing delay."""
        self._queue_delays.observe(delay_ms)

    def record_revocation_batch(self, elements: int) -> None:
        """Record one aggregated revocation origination of ``elements`` failures.

        The beaconing driver batches every simultaneous failure an origin
        detects in one scheduler tick into a single multi-element
        ``RevocationMessage``; these counters expose how much that
        aggregation saves (a storm of N failures costs each origin one
        flood, not N).
        """
        self.revocation_batches += 1
        self.revocation_batch_elements += elements
        if elements > self.revocation_batch_max:
            self.revocation_batch_max = elements
        if elements > 1:
            self.revocation_multi_batches += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pcbs_per_interface_per_period(self) -> List[int]:
        """Return the flat list of per-(interface, period) PCB counts.

        Interfaces that sent nothing during a period do not contribute an
        entry, matching how the paper reports the distribution (the x axis
        starts at one PCB).
        """
        return sorted(self._counts.values())

    def count_for(self, interface: InterfaceID, period: int) -> int:
        """Return the transmissions of ``interface`` during ``period``."""
        return self._counts.get((interface, period), 0)

    def per_interface_totals(self) -> Dict[InterfaceID, int]:
        """Return total transmissions per interface across all periods."""
        totals: Dict[InterfaceID, int] = defaultdict(int)
        for (interface, _period), count in self._counts.items():
            totals[interface] += count
        return dict(totals)

    def periods_observed(self) -> int:
        """Return the number of distinct periods with at least one send."""
        return len({period for (_interface, period) in self._counts})

    def returned_beacons(self) -> int:
        """Return the total number of pull-based returns recorded."""
        return sum(self._returned.values())

    def algorithm_fetches(self) -> int:
        """Return the total number of remote payload fetches recorded."""
        return self._fetches

    def revocations_in_period(self, period: int) -> int:
        """Return the revocation messages sent during ``period``."""
        return self._revocations.get(period, 0)

    def control_messages_total(self) -> int:
        """Return every control-plane message sent so far.

        Sends (including ones later dropped in flight), pull returns,
        revocation messages, path registrations and path queries (with
        their responses) all count.  Each typed message's transmission is
        recorded once (the per-kind recorders are disjoint), so no message
        is double-counted; the convergence collector snapshots this to
        attribute overhead to individual events.
        """
        return (
            self.total_sent
            + self.returned_beacons()
            + self.total_revocations
            + self.total_registrations
            + self.total_queries
            + self.total_query_responses
        )

    def inbox_dropped_total(self) -> int:
        """Return messages tail-dropped by bounded inboxes, all kinds."""
        return sum(self.inbox_dropped.values())

    def inbox_marked_total(self) -> int:
        """Return messages congestion-marked by bounded inboxes, all kinds."""
        return sum(self.inbox_marked.values())

    def inbox_deferred_total(self) -> int:
        """Return messages serviced after their arrival tick, all kinds."""
        return sum(self.inbox_deferred.values())

    def queue_high_water(self, as_id: int) -> int:
        """Return the deepest inbox queue observed at ``as_id``."""
        return self._queue_high_water.get(as_id, 0)

    def queue_high_water_marks(self) -> Dict[int, int]:
        """Return the per-AS inbox queue-depth high-water marks."""
        return dict(self._queue_high_water)

    def queue_delay_stats(self) -> Dict[str, float]:
        """Return count/mean/max/p50/p99 of recorded queueing delays (ms).

        Count, mean and max are exact over the whole stream; the
        percentiles are exact until the stream outgrows the bounded
        reservoir, then a uniform-sample estimate (same index convention
        as before, so short runs are bit-identical to the unbounded
        implementation this replaced).
        """
        return self._queue_delays.stats()

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counters into this one.

        The sharded coordinator aggregates per-worker collectors with
        this: every message is recorded by exactly one shard (sends by
        the sender's, deliveries/drops by the receiver's), so summing the
        disjoint ledgers reproduces the single-process totals.  High-water
        marks take the max per AS; queue-delay quantiles merge through
        the reservoir (exact count/mean/max, sampled percentiles).
        """
        for key, value in other._counts.items():
            self._counts[key] += value
        for mine, theirs in (
            (self._returned, other._returned),
            (self._revocations, other._revocations),
            (self._registrations, other._registrations),
            (self._queries, other._queries),
            (self._query_responses, other._query_responses),
        ):
            for period, value in theirs.items():
                mine[period] += value
        self._fetches += other._fetches
        self.total_sent += other.total_sent
        self.total_dropped += other.total_dropped
        self.total_revocations += other.total_revocations
        self.revocations_dropped += other.revocations_dropped
        self.total_registrations += other.total_registrations
        self.registrations_dropped += other.registrations_dropped
        self.total_queries += other.total_queries
        self.total_query_responses += other.total_query_responses
        self.queries_dropped += other.queries_dropped
        for mine, theirs in (
            (self.gray_dropped, other.gray_dropped),
            (self.inbox_dropped, other.inbox_dropped),
            (self.inbox_marked, other.inbox_marked),
            (self.inbox_deferred, other.inbox_deferred),
        ):
            for kind, value in theirs.items():
                mine[kind] += value
        for as_id, depth in other._queue_high_water.items():
            if depth > self._queue_high_water.get(as_id, 0):
                self._queue_high_water[as_id] = depth
        self._queue_delays.merge_from(other._queue_delays)
        self.revocation_batches += other.revocation_batches
        self.revocation_batch_elements += other.revocation_batch_elements
        if other.revocation_batch_max > self.revocation_batch_max:
            self.revocation_batch_max = other.revocation_batch_max
        self.revocation_multi_batches += other.revocation_multi_batches

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()
        self._returned.clear()
        self._revocations.clear()
        self._registrations.clear()
        self._queries.clear()
        self._query_responses.clear()
        self._fetches = 0
        self.total_sent = 0
        self.total_dropped = 0
        self.total_revocations = 0
        self.revocations_dropped = 0
        self.total_registrations = 0
        self.registrations_dropped = 0
        self.total_queries = 0
        self.total_query_responses = 0
        self.queries_dropped = 0
        self.gray_dropped.clear()
        self.inbox_dropped.clear()
        self.inbox_marked.clear()
        self.inbox_deferred.clear()
        self._queue_high_water.clear()
        self._queue_delays.clear()
        self.revocation_batches = 0
        self.revocation_batch_elements = 0
        self.revocation_batch_max = 0
        self.revocation_multi_batches = 0


@dataclass
class DisruptionRecord:
    """One watched pair's disruption caused by one dynamic event.

    Attributes:
        event_label: Stable trace label of the causing timed event.
        event_time_ms: When the event fired.
        source_as: Watched source (where registered paths are probed).
        destination_as: Watched destination (the paths' origin AS).
        paths_before: Usable registered paths immediately before the event.
        paths_after: Usable registered paths immediately after the event.
        messages_at_event: Control-message snapshot when the event fired.
        recovered_at_ms: Period-end time at which the pair was observed
            recovered (usable paths back to at least ``paths_before``), or
            ``None`` while still disrupted.
        paths_at_recovery: Usable paths at the recovery observation.
        messages_at_recovery: Control-message snapshot at recovery.
    """

    event_label: str
    event_time_ms: float
    source_as: int
    destination_as: int
    paths_before: int
    paths_after: int
    messages_at_event: int
    recovered_at_ms: Optional[float] = None
    paths_at_recovery: int = 0
    messages_at_recovery: Optional[int] = None

    @property
    def pair(self) -> Tuple[int, int]:
        """Return the watched (source, destination) pair."""
        return (self.source_as, self.destination_as)

    @property
    def paths_lost(self) -> int:
        """Return how many usable paths the event destroyed."""
        return self.paths_before - self.paths_after

    @property
    def paths_regained(self) -> int:
        """Return how many usable paths reappeared by the recovery probe."""
        if self.recovered_at_ms is None:
            return 0
        return self.paths_at_recovery - self.paths_after

    @property
    def recovered(self) -> bool:
        """Return whether the disruption has healed."""
        return self.recovered_at_ms is not None

    @property
    def time_to_recovery_ms(self) -> Optional[float]:
        """Return the observed recovery latency, or ``None`` if still down."""
        if self.recovered_at_ms is None:
            return None
        return self.recovered_at_ms - self.event_time_ms

    @property
    def control_message_overhead(self) -> Optional[int]:
        """Return control messages sent network-wide during the disruption."""
        if self.messages_at_recovery is None:
            return None
        return self.messages_at_recovery - self.messages_at_event

    def trace_label(self) -> str:
        """Return the stable one-line trace representation of the record."""
        recovered = (
            f"{self.recovered_at_ms:.3f}" if self.recovered_at_ms is not None else "-"
        )
        return (
            f"disruption ({self.source_as},{self.destination_as})"
            f" by [{self.event_time_ms:.3f} {self.event_label}]"
            f" lost={self.paths_lost} regained={self.paths_regained}"
            f" recovered_at={recovered}"
        )


@dataclass
class ConvergenceCollector:
    """Tracks how watched AS pairs recover from dynamic events.

    The beaconing driver feeds it from two places: when a timeline event
    fires (with per-pair usable-path counts before and after applying it)
    and at every period end (with the current usable-path counts).  A
    disruption opens when an event destroys at least one usable path of a
    watched pair and closes at the first period-end probe at which the pair
    has recovered its pre-event path count; the time in between is the
    pair's time-to-recovery for that event.

    Every observation also appends one line to :attr:`trace`, giving a
    deterministic event/convergence log that the golden-trace regression
    test digests.
    """

    records: List[DisruptionRecord] = field(default_factory=list)
    trace: List[str] = field(default_factory=list)
    _open: Dict[Tuple[int, int], DisruptionRecord] = field(default_factory=dict)

    def on_event(
        self,
        event_label: str,
        now_ms: float,
        pair_paths: Dict[Tuple[int, int], Tuple[int, int]],
        messages_total: int,
    ) -> None:
        """Record an applied event and open disruptions it caused.

        Args:
            event_label: The event's stable trace label.
            now_ms: Time the event fired.
            pair_paths: Per watched pair, (usable paths before, after).
            messages_total: Control-message counter snapshot.
        """
        self.trace.append(f"{now_ms:.3f} event {event_label}")
        for (source_as, destination_as), (before, after) in sorted(pair_paths.items()):
            pair = (source_as, destination_as)
            if after >= before:
                continue
            open_record = self._open.get(pair)
            if open_record is None:
                record = DisruptionRecord(
                    event_label=event_label,
                    event_time_ms=now_ms,
                    source_as=source_as,
                    destination_as=destination_as,
                    paths_before=before,
                    paths_after=after,
                    messages_at_event=messages_total,
                )
                self._open[pair] = record
                self.records.append(record)
                self.trace.append(
                    f"{now_ms:.3f} disrupt ({source_as},{destination_as}) "
                    f"{before}->{after}"
                )
            else:
                # A further event disrupted an already-open record (possibly
                # after partial recovery): the record keeps its original
                # event and paths_before (recovery is still measured against
                # the pre-outage state), the low-water mark only deepens,
                # and the trace always shows the hit.
                open_record.paths_after = min(open_record.paths_after, after)
                self.trace.append(
                    f"{now_ms:.3f} deepen ({source_as},{destination_as}) "
                    f"{before}->{after}"
                )

    def on_period_end(
        self,
        now_ms: float,
        pair_paths: Dict[Tuple[int, int], int],
        messages_total: int,
        pair_registered_at: Optional[Dict[Tuple[int, int], Tuple[float, ...]]] = None,
    ) -> None:
        """Probe watched pairs at a period boundary and close healed records.

        Args:
            now_ms: Probe time (a period boundary).
            pair_paths: Current usable-path count per watched pair.
            messages_total: Control-message counter snapshot.
            pair_registered_at: Optional per-pair first-registration times
                of the currently usable paths.  A closing record is dated
                at the newest registration instead of the probe —
                sub-period recovery detection — but only when enough
                registrations post-date the event to account for every
                path the disruption took (otherwise part of the recovery
                happened silently, e.g. a link recovery re-validating a
                still-registered path, and only the probe bounds it).
        """
        for (source_as, destination_as), usable in sorted(pair_paths.items()):
            pair = (source_as, destination_as)
            self.trace.append(
                f"{now_ms:.3f} probe ({source_as},{destination_as}) paths={usable}"
            )
            record = self._open.get(pair)
            if record is not None and usable >= record.paths_before:
                recovered_at = now_ms
                if pair_registered_at is not None:
                    fresh = [
                        registered_at
                        for registered_at in pair_registered_at.get(pair, ())
                        if record.event_time_ms < registered_at < now_ms
                    ]
                    if fresh and len(fresh) >= record.paths_lost:
                        recovered_at = max(fresh)
                record.recovered_at_ms = recovered_at
                record.paths_at_recovery = usable
                record.messages_at_recovery = messages_total
                del self._open[pair]
                self.trace.append(
                    f"{recovered_at:.3f} recover ({source_as},{destination_as}) "
                    f"paths={usable} ttr={record.time_to_recovery_ms:.3f}"
                )

    def on_overload(
        self, now_ms: float, dropped: int, marked: int, deferred: int
    ) -> None:
        """Record one period's inbox-overload deltas in the trace.

        The driver calls this at a period end only when at least one delta
        is nonzero, so unlimited runs (the PR-5 default) never emit these
        lines and the golden trace is unchanged.
        """
        self.trace.append(
            f"{now_ms:.3f} overload dropped={dropped} marked={marked} "
            f"deferred={deferred}"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def current_outage_ms(self, source_as: int, destination_as: int, now_ms: float) -> float:
        """Return how long the pair has been disrupted, or 0.0 if healthy."""
        record = self._open.get((source_as, destination_as))
        if record is None:
            return 0.0
        return now_ms - record.event_time_ms

    def open_disruptions(self) -> List[DisruptionRecord]:
        """Return the disruptions that have not recovered yet."""
        return [record for record in self.records if not record.recovered]

    def recovered_records(self) -> List[DisruptionRecord]:
        """Return the disruptions that have healed, in open order."""
        return [record for record in self.records if record.recovered]

    def trace_text(self) -> str:
        """Return the full deterministic trace as one newline-joined string."""
        return "\n".join(self.trace)
