"""Measurement collection for the large-scale simulations.

The collector records every control-plane transmission: which AS sent a PCB
over which interface during which beaconing period.  Those counts are the
raw material of Figure 8c ("PCBs per interface per period") and of the
general message-complexity discussion in §VIII-C.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.entities import InterfaceID


@dataclass
class MetricsCollector:
    """Per-interface, per-period transmission counters.

    Attributes:
        period_ms: Length of one beaconing period; transmissions are binned
            by ``floor(time / period_ms)``.
    """

    period_ms: float = 600_000.0
    _counts: Dict[Tuple[InterfaceID, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _returned: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _fetches: int = 0
    total_sent: int = 0

    def record_send(self, sender_as: int, interface_id: int, time_ms: float) -> None:
        """Record one PCB transmission."""
        period = int(time_ms // self.period_ms)
        self._counts[((sender_as, interface_id), period)] += 1
        self.total_sent += 1

    def record_return(self, sender_as: int, time_ms: float) -> None:
        """Record one pull-based beacon returned to its origin."""
        period = int(time_ms // self.period_ms)
        self._returned[period] += 1

    def record_algorithm_fetch(self) -> None:
        """Record one remote algorithm payload fetch."""
        self._fetches += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pcbs_per_interface_per_period(self) -> List[int]:
        """Return the flat list of per-(interface, period) PCB counts.

        Interfaces that sent nothing during a period do not contribute an
        entry, matching how the paper reports the distribution (the x axis
        starts at one PCB).
        """
        return sorted(self._counts.values())

    def count_for(self, interface: InterfaceID, period: int) -> int:
        """Return the transmissions of ``interface`` during ``period``."""
        return self._counts.get((interface, period), 0)

    def per_interface_totals(self) -> Dict[InterfaceID, int]:
        """Return total transmissions per interface across all periods."""
        totals: Dict[InterfaceID, int] = defaultdict(int)
        for (interface, _period), count in self._counts.items():
            totals[interface] += count
        return dict(totals)

    def periods_observed(self) -> int:
        """Return the number of distinct periods with at least one send."""
        return len({period for (_interface, period) in self._counts})

    def returned_beacons(self) -> int:
        """Return the total number of pull-based returns recorded."""
        return sum(self._returned.values())

    def algorithm_fetches(self) -> int:
        """Return the total number of remote payload fetches recorded."""
        return self._fetches

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()
        self._returned.clear()
        self._fetches = 0
        self.total_sent = 0
