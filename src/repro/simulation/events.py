"""Typed scenario events and the dynamic-scenario timeline DSL.

A static :class:`~repro.simulation.scenario.ScenarioConfig` describes one
fixed deployment; real inter-domain control planes are dominated by churn
and operator activity.  This module provides the vocabulary to script that
dynamism:

* **typed events** — link failure/recovery, AS leave/join (churn), per-AS
  admission-policy swaps, RAC hot-swaps, beaconing-period changes, the
  overload family (PR 6): inbox service-rate changes and beacon-flood
  DoS bursts, and the adversarial family (PR 7): flapping links with
  per-direction loss, silent gray failures, Byzantine revocation forgery/
  replay/forwarding suppression, and mid-run topology growth,
* a **timeline** of ``(time, event)`` pairs attached to a scenario and
  executed by the beaconing driver through its discrete-event scheduler
  (so an event scheduled mid-period really interrupts propagation), and
* a small **builder DSL** (``timeline.at(t).fail_link(...)``) plus seeded
  random failure/churn generators for reproducible what-if experiments.

Every event renders to a stable one-line ``trace_label`` used by the
golden-trace regression tests: two runs of the same seeded scenario must
produce bit-for-bit identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.topology.entities import LinkID, Relationship, normalize_link_id
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenario ↔ events)
    from repro.simulation.scenario import AlgorithmSpec


def _format_link(link_id: LinkID) -> str:
    (as_a, if_a), (as_b, if_b) = link_id
    return f"{as_a}.{if_a}-{as_b}.{if_b}"


class ScenarioEvent:
    """Base class of all timed scenario events (marker + trace contract)."""

    def trace_label(self) -> str:
        """Return the stable one-line representation used in traces."""
        raise NotImplementedError


@dataclass(frozen=True)
class LinkFailure(ScenarioEvent):
    """An inter-domain link goes down.

    In-flight PCBs on the link are lost and future sends over it are
    dropped.  The link's endpoint ASes originate signed revocation
    messages that flood hop-by-hop (:mod:`repro.core.revocation`); every
    other control service withdraws beacons and registered paths crossing
    the link when the revocation *arrives* — withdrawal timing is
    topology-dependent, not instantaneous.
    """

    link_id: LinkID

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))

    def trace_label(self) -> str:
        return f"fail_link {_format_link(self.link_id)}"


@dataclass(frozen=True)
class LinkRecovery(ScenarioEvent):
    """A previously failed inter-domain link comes back up.

    Recovery is silent: paths over the link reappear once the next
    beaconing period re-propagates PCBs across it.
    """

    link_id: LinkID

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))

    def trace_label(self) -> str:
        return f"recover_link {_format_link(self.link_id)}"


@dataclass(frozen=True)
class ASLeave(ScenarioEvent):
    """An AS leaves the network (churn).

    All of the AS's links become unusable and the AS stops originating and
    processing beacons.  Its neighbours originate revocation messages, so
    every *reachable* AS withdraws state crossing it as the flood arrives;
    partitioned ASes keep stale state until it expires.
    """

    as_id: int

    def trace_label(self) -> str:
        return f"as_leave {self.as_id}"


@dataclass(frozen=True)
class ASJoin(ScenarioEvent):
    """A previously departed AS rejoins with its original links."""

    as_id: int

    def trace_label(self) -> str:
        return f"as_join {self.as_id}"


@dataclass(frozen=True)
class PolicySwap(ScenarioEvent):
    """Replace the admission policies of one AS (or of every AS).

    Attributes:
        policies: The new admission-policy callables (see
            :mod:`repro.core.policies`); replaces the previous set.
        as_ids: ASes to reconfigure; ``None`` means every IREC AS.
        label: Stable human-readable name for traces (callables have no
            deterministic repr).
    """

    policies: Tuple = ()
    as_ids: Optional[Tuple[int, ...]] = None
    label: str = "default"

    def trace_label(self) -> str:
        scope = "all" if self.as_ids is None else ",".join(str(a) for a in self.as_ids)
        return f"policy_swap {self.label} @ {scope}"


@dataclass(frozen=True)
class RACSwap(ScenarioEvent):
    """Hot-swap a routing algorithm container in one AS (or every AS).

    The RAC named ``replace_rac_id`` (default: the new spec's ``rac_id``)
    is removed and a fresh container built from ``spec`` is installed, as
    if the operator deployed a new algorithm image.
    """

    spec: "AlgorithmSpec"
    replace_rac_id: Optional[str] = None
    as_ids: Optional[Tuple[int, ...]] = None

    @property
    def target_rac_id(self) -> str:
        """Return the id of the RAC being replaced."""
        return self.replace_rac_id or self.spec.rac_id

    def trace_label(self) -> str:
        scope = "all" if self.as_ids is None else ",".join(str(a) for a in self.as_ids)
        return f"rac_swap {self.target_rac_id}->{self.spec.rac_id} @ {scope}"


@dataclass(frozen=True)
class BeaconPeriodChange(ScenarioEvent):
    """Change the beaconing period for all *subsequent* periods.

    The period already in progress finishes at its scheduled end; overhead
    bins of the metrics collector keep the scenario's initial period length.
    """

    interval_ms: float

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ConfigurationError(
                f"beaconing period must be positive, got {self.interval_ms}"
            )

    def trace_label(self) -> str:
        return f"set_period {self.interval_ms:.3f}"


@dataclass(frozen=True)
class ServiceRateChange(ScenarioEvent):
    """Change the per-tick inbox service budget of one or more ASes.

    Hot-swaps the rate limit of the targeted ASes' bounded inboxes (see
    :class:`repro.simulation.network.InboxProfile`): ``budget_per_tick``
    messages are serviced per round, the rest queues.  ``None`` restores
    the unlimited default (the whole backlog drains promptly).  This is
    the timeline handle for slow-AS stragglers and operator rate-limit
    interventions.

    Attributes:
        budget_per_tick: New per-round budget (``>= 1``), or ``None`` for
            unlimited.
        as_ids: ASes to reconfigure; ``None`` means every AS.
    """

    budget_per_tick: Optional[int] = None
    as_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.budget_per_tick is not None and self.budget_per_tick < 1:
            raise ConfigurationError(
                f"budget_per_tick must be None or >= 1, got {self.budget_per_tick}"
            )

    def trace_label(self) -> str:
        budget = "inf" if self.budget_per_tick is None else str(self.budget_per_tick)
        scope = "all" if self.as_ids is None else ",".join(str(a) for a in self.as_ids)
        return f"service_rate {budget} @ {scope}"


@dataclass(frozen=True)
class BeaconFlood(ScenarioEvent):
    """A designated AS floods a burst of beacon originations (DoS).

    The attacker AS originates ``bursts`` extra rounds of PCBs at the
    event time — on top of its regular period originations — pressuring
    every downstream inbox.  With bounded inboxes the flood manifests as
    queue growth, deferrals and drops; with the unlimited default it only
    inflates message counts.
    """

    attacker_as: int
    bursts: int = 10

    def __post_init__(self) -> None:
        if self.bursts < 1:
            raise ConfigurationError(f"bursts must be >= 1, got {self.bursts}")

    def trace_label(self) -> str:
        return f"beacon_flood {self.attacker_as} x{self.bursts}"


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {rate}")


@dataclass(frozen=True)
class LinkFlap(ScenarioEvent):
    """A link flaps: a scripted on/off schedule with per-direction loss.

    ``schedule`` holds strictly increasing offsets (ms, relative to the
    event time) at which the link toggles; the first toggle takes the
    link *down*, the second brings it back, and so on.  Each down
    transition behaves like a :class:`LinkFailure` (the endpoints
    originate revocations), each up transition like a
    :class:`LinkRecovery` — a flapping link is *loud*, unlike a gray
    failure.  An even-length schedule leaves the link up, an odd-length
    one leaves it down.

    While the flap is active (from the event time until the last toggle,
    or ``duration_ms`` when given), the link additionally drops each
    delivered message with a per-direction probability: ``loss_ab`` for
    messages travelling from the normalised link id's first endpoint
    toward its second, ``loss_ba`` for the reverse direction.  Loss draws
    come from the transport's seeded RNG, so a seeded scenario stays
    fully reproducible.

    An empty schedule with a ``duration_ms`` degrades the link (loss
    only, no toggles) for that long.
    """

    link_id: LinkID
    schedule: Tuple[float, ...] = ()
    loss_ab: float = 0.0
    loss_ba: float = 0.0
    duration_ms: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))
        object.__setattr__(self, "schedule", tuple(float(t) for t in self.schedule))
        if not self.schedule and self.duration_ms is None:
            raise ConfigurationError(
                "a LinkFlap needs a toggle schedule or a loss duration_ms"
            )
        previous = -1.0
        for offset in self.schedule:
            if offset < 0.0:
                raise ConfigurationError(
                    f"flap schedule offsets must be non-negative, got {offset}"
                )
            if offset <= previous:
                raise ConfigurationError(
                    f"flap schedule must be strictly increasing, got {self.schedule}"
                )
            previous = offset
        _check_rate("loss_ab", self.loss_ab)
        _check_rate("loss_ba", self.loss_ba)
        if self.duration_ms is not None and self.duration_ms <= 0.0:
            raise ConfigurationError(
                f"flap duration_ms must be positive, got {self.duration_ms}"
            )

    @property
    def ends_down(self) -> bool:
        """Return whether the schedule leaves the link failed."""
        return len(self.schedule) % 2 == 1

    def trace_label(self) -> str:
        return (
            f"flap_link {_format_link(self.link_id)} x{len(self.schedule)} "
            f"loss={self.loss_ab:.2f}/{self.loss_ba:.2f}"
        )


@dataclass(frozen=True)
class GrayFailure(ScenarioEvent):
    """A link starts silently dropping messages — a gray failure.

    The defining property: *no revocation is ever originated*.  The link
    still looks up to the control plane (beacons over other links keep
    advertising paths across it, registered paths linger), so only
    end-host-observed delivery quality reveals the fault.  ``drop_rate``
    is the per-message drop probability; the default ``1.0`` blackholes
    the link deterministically.
    """

    link_id: LinkID
    drop_rate: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))
        _check_rate("drop_rate", self.drop_rate)
        if self.drop_rate == 0.0:
            raise ConfigurationError("a gray failure needs a positive drop_rate")

    def trace_label(self) -> str:
        return f"gray_fail {_format_link(self.link_id)} rate={self.drop_rate:.2f}"


@dataclass(frozen=True)
class GrayRecovery(ScenarioEvent):
    """A gray-failed link silently stops dropping messages."""

    link_id: LinkID

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))

    def trace_label(self) -> str:
        return f"gray_recover {_format_link(self.link_id)}"


@dataclass(frozen=True)
class RevocationForgery(ScenarioEvent):
    """A Byzantine AS floods forged revocations claiming another origin.

    The attacker crafts :class:`~repro.core.messages.RevocationMessage`\\ s
    naming ``link_id`` as failed and ``claimed_origin`` as the origin, but
    can only sign them with *its own* key — with signature verification
    enabled every receiver rejects the forgery (``rejected_invalid``)
    without marking the key seen, so no path is ever withdrawn.  Forged
    sequences start at ``sequence_base`` (far above any honest sequence)
    so a forgery can never shadow a legitimate revocation in the dedup
    window.
    """

    attacker_as: int
    claimed_origin: int
    link_id: LinkID
    count: int = 1
    sequence_base: int = 1_000_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.attacker_as == self.claimed_origin:
            raise ConfigurationError(
                "a forgery claiming the attacker's own origin is just a lie "
                "it may tell — use a distinct claimed_origin"
            )
        if self.sequence_base < 1:
            raise ConfigurationError(
                f"sequence_base must be >= 1, got {self.sequence_base}"
            )

    def trace_label(self) -> str:
        return (
            f"forge_revocation {self.attacker_as} as-origin={self.claimed_origin} "
            f"link {_format_link(self.link_id)} x{self.count}"
        )


@dataclass(frozen=True)
class RevocationReplay(ScenarioEvent):
    """A Byzantine AS re-floods revocations it has already processed.

    The attacker takes up to ``count`` distinct messages from its own
    negative cache (deterministically ordered by ``(origin, sequence)``)
    and floods byte-identical copies on every interface.  Receivers
    inside the dedup window count them as ``duplicates`` and withdraw
    nothing; past the window the replay re-applies an already-applied
    (idempotent) withdrawal.
    """

    attacker_as: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")

    def trace_label(self) -> str:
        return f"replay_revocations {self.attacker_as} x{self.count}"


@dataclass(frozen=True)
class ForwardingSuppression(ScenarioEvent):
    """Byzantine ASes silently swallow revocation floods they should re-forward.

    The targeted control services keep *applying* revocations (the
    attacker stays plausible) but stop re-forwarding them, so ASes whose
    only flood paths cross a suppressor learn of failures late or never.
    ``suppress=False`` restores honest forwarding.
    """

    as_ids: Tuple[int, ...]
    suppress: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "as_ids", tuple(int(a) for a in self.as_ids))
        if not self.as_ids:
            raise ConfigurationError("ForwardingSuppression needs at least one AS")

    def trace_label(self) -> str:
        mode = "on" if self.suppress else "off"
        scope = ",".join(str(a) for a in self.as_ids)
        return f"suppress_forwarding {mode} @ {scope}"


@dataclass(frozen=True)
class TopologyGrowth(ScenarioEvent):
    """A brand-new AS joins mid-run, attaching to existing ASes (join churn).

    Unlike :class:`ASJoin` (which revives a departed member), this grows
    the topology: a fresh AS with one interface per attachment point is
    created, customer-provider links to each ``attach_to`` AS are added
    (the new AS is the customer), a control service is built and
    registered on the fabric, and the newcomer starts originating in the
    next beaconing period.
    """

    new_as: int
    attach_to: Tuple[int, ...]
    latency_ms: float = 10.0
    bandwidth_mbps: float = 1000.0
    location: Tuple[float, float] = (0.0, 0.0)
    relationship: Relationship = Relationship.CUSTOMER_PROVIDER

    def __post_init__(self) -> None:
        object.__setattr__(self, "attach_to", tuple(int(a) for a in self.attach_to))
        if not self.attach_to:
            raise ConfigurationError("TopologyGrowth needs at least one attachment AS")
        if len(set(self.attach_to)) != len(self.attach_to):
            raise ConfigurationError(
                f"TopologyGrowth attachment ASes must be distinct, got {self.attach_to}"
            )
        if self.new_as in self.attach_to:
            raise ConfigurationError(
                f"new AS {self.new_as} cannot attach to itself"
            )
        if self.latency_ms < 0.0:
            raise ConfigurationError(
                f"latency_ms must be non-negative, got {self.latency_ms}"
            )
        if self.bandwidth_mbps <= 0.0:
            raise ConfigurationError(
                f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}"
            )

    def trace_label(self) -> str:
        scope = ",".join(str(a) for a in self.attach_to)
        return f"grow_as {self.new_as} attach={scope}"


@dataclass(frozen=True)
class TimedEvent:
    """One scenario event pinned to an absolute simulated time."""

    time_ms: float
    event: ScenarioEvent

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError(f"event time must be non-negative, got {self.time_ms}")

    def trace_label(self) -> str:
        """Return the stable trace line of this timed event."""
        return f"{self.time_ms:.3f} {self.event.trace_label()}"


@dataclass
class ScenarioTimeline:
    """An ordered collection of timed events with a chaining builder DSL.

    Events are kept in insertion order; the beaconing driver schedules them
    on its discrete-event scheduler, which orders them by time with FIFO
    tie-breaking — so same-time events apply in the order they were added.

    Example::

        timeline = ScenarioTimeline()
        timeline.at(minutes(15)).fail_link(link).at(minutes(35)).recover_link(link)
    """

    _events: List[TimedEvent] = field(default_factory=list)

    def at(self, time_ms: float) -> "TimelineCursor":
        """Return a cursor adding events at absolute time ``time_ms``."""
        return TimelineCursor(timeline=self, time_ms=time_ms)

    def add(self, time_ms: float, event: ScenarioEvent) -> "ScenarioTimeline":
        """Append one event at ``time_ms``; return the timeline (chainable)."""
        self._events.append(TimedEvent(time_ms=time_ms, event=event))
        return self

    def extend(self, timed_events: Sequence[TimedEvent]) -> "ScenarioTimeline":
        """Append pre-built timed events (e.g. from the random generators)."""
        for timed in timed_events:
            if not isinstance(timed, TimedEvent):
                raise ConfigurationError(f"expected TimedEvent, got {timed!r}")
            self._events.append(timed)
        return self

    @property
    def events(self) -> Tuple[TimedEvent, ...]:
        """Return the timed events in insertion order."""
        return tuple(self._events)

    def validate(self, topology: Optional[Topology] = None) -> None:
        """Reject schedules that would silently no-op when executed.

        Replays the timeline in execution order (time, then insertion
        order — exactly how the scheduler fires it) and raises
        :class:`ConfigurationError` for a :class:`LinkRecovery` of a link
        that is not failed at that point, or an :class:`ASJoin` of an AS
        that is not offline.  Both were previously silent no-ops
        (``LinkState`` discards unknown keys), which hid scheduling
        mistakes like a recovery firing before its failure or a mistyped
        link id.  Negative event times are already rejected at
        :class:`TimedEvent` construction, non-positive
        :class:`ServiceRateChange` budgets at event construction.

        When ``topology`` is given, :class:`ServiceRateChange` targets and
        :class:`BeaconFlood` attackers must be member ASes — a rate limit
        or flood aimed at an unknown AS would otherwise silently do
        nothing — and the adversarial family is held to the same bar:
        :class:`LinkFlap`/:class:`GrayFailure`/:class:`GrayRecovery` must
        name known links, :class:`RevocationForgery`/:class:`RevocationReplay`
        attackers and :class:`ForwardingSuppression` targets must be known
        ASes, a :class:`GrayRecovery` needs an earlier gray failure, and a
        :class:`TopologyGrowth` must introduce a genuinely new AS attached
        to existing (or earlier-grown) ones.  Flap schedules with negative
        or non-monotonic offsets are rejected even earlier, at
        :class:`LinkFlap` construction.

        The beaconing driver calls this (with its topology) before
        scheduling the timeline; call it directly to check a hand-built
        timeline early.
        """
        failed: set = set()
        offline: set = set()
        gray: set = set()
        grown: set = set()

        def check_as(timed: TimedEvent, as_id: int, role: str) -> None:
            if topology is not None and as_id not in topology and as_id not in grown:
                raise ConfigurationError(
                    f"timeline event {timed.trace_label()!r} {role} "
                    f"unknown AS {as_id}"
                )

        def check_link(timed: TimedEvent, link_id: LinkID) -> None:
            if topology is not None and link_id not in topology.links:
                raise ConfigurationError(
                    f"timeline event {timed.trace_label()!r} targets "
                    f"unknown link {_format_link(link_id)}"
                )

        ordered = sorted(self._events, key=lambda timed: timed.time_ms)
        for timed in ordered:
            event = timed.event
            if isinstance(event, LinkFailure):
                failed.add(event.link_id)
            elif isinstance(event, LinkRecovery):
                if event.link_id not in failed:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} recovers a link "
                        "that is not failed at that time — a recovery needs an "
                        "earlier failure of the same link"
                    )
                failed.discard(event.link_id)
            elif isinstance(event, ASLeave):
                offline.add(event.as_id)
            elif isinstance(event, ASJoin):
                if event.as_id not in offline:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} rejoins an AS "
                        "that is not offline at that time — a join needs an "
                        "earlier leave of the same AS"
                    )
                offline.discard(event.as_id)
            elif isinstance(event, ServiceRateChange):
                if event.budget_per_tick is not None and event.budget_per_tick < 1:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} sets a "
                        f"non-positive budget {event.budget_per_tick}"
                    )
                if event.as_ids is not None:
                    for as_id in event.as_ids:
                        check_as(timed, as_id, "targets")
            elif isinstance(event, BeaconFlood):
                check_as(timed, event.attacker_as, "floods from")
            elif isinstance(event, LinkFlap):
                check_link(timed, event.link_id)
                # Net effect on the replayed link state: an odd-length
                # schedule leaves the link failed.  Sub-toggle interleaving
                # with other events is not modelled here.
                if event.ends_down:
                    failed.add(event.link_id)
                else:
                    failed.discard(event.link_id)
            elif isinstance(event, GrayFailure):
                check_link(timed, event.link_id)
                gray.add(event.link_id)
            elif isinstance(event, GrayRecovery):
                check_link(timed, event.link_id)
                if event.link_id not in gray:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} clears a gray "
                        "failure that is not active at that time — a gray "
                        "recovery needs an earlier gray failure of the same link"
                    )
                gray.discard(event.link_id)
            elif isinstance(event, RevocationForgery):
                check_as(timed, event.attacker_as, "forges from")
                check_as(timed, event.claimed_origin, "claims origin of")
                check_link(timed, event.link_id)
            elif isinstance(event, RevocationReplay):
                check_as(timed, event.attacker_as, "replays from")
            elif isinstance(event, ForwardingSuppression):
                for as_id in event.as_ids:
                    check_as(timed, as_id, "suppresses at")
            elif isinstance(event, TopologyGrowth):
                if (topology is not None and event.new_as in topology) or (
                    event.new_as in grown
                ):
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} grows an AS "
                        f"that already exists — growth must introduce a new AS"
                    )
                for as_id in event.attach_to:
                    check_as(timed, as_id, "attaches to")
                grown.add(event.new_as)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


@dataclass
class TimelineCursor:
    """Builder cursor of :class:`ScenarioTimeline` pinned to one time."""

    timeline: ScenarioTimeline
    time_ms: float

    def at(self, time_ms: float) -> "TimelineCursor":
        """Move the cursor to a different absolute time."""
        return TimelineCursor(timeline=self.timeline, time_ms=time_ms)

    def _add(self, event: ScenarioEvent) -> "TimelineCursor":
        self.timeline.add(self.time_ms, event)
        return self

    def fail_link(self, link_id: LinkID) -> "TimelineCursor":
        """Fail an inter-domain link."""
        return self._add(LinkFailure(link_id=link_id))

    def recover_link(self, link_id: LinkID) -> "TimelineCursor":
        """Recover a previously failed link."""
        return self._add(LinkRecovery(link_id=link_id))

    def as_leave(self, as_id: int) -> "TimelineCursor":
        """Remove an AS from the network (churn)."""
        return self._add(ASLeave(as_id=as_id))

    def as_join(self, as_id: int) -> "TimelineCursor":
        """Bring a previously departed AS back."""
        return self._add(ASJoin(as_id=as_id))

    def swap_policies(
        self,
        policies: Sequence,
        as_ids: Optional[Sequence[int]] = None,
        label: str = "default",
    ) -> "TimelineCursor":
        """Replace admission policies at ``as_ids`` (default: everywhere)."""
        return self._add(
            PolicySwap(
                policies=tuple(policies),
                as_ids=tuple(as_ids) if as_ids is not None else None,
                label=label,
            )
        )

    def swap_rac(
        self,
        spec: "AlgorithmSpec",
        replace_rac_id: Optional[str] = None,
        as_ids: Optional[Sequence[int]] = None,
    ) -> "TimelineCursor":
        """Hot-swap a RAC at ``as_ids`` (default: every IREC AS)."""
        return self._add(
            RACSwap(
                spec=spec,
                replace_rac_id=replace_rac_id,
                as_ids=tuple(as_ids) if as_ids is not None else None,
            )
        )

    def set_beacon_period(self, interval_ms: float) -> "TimelineCursor":
        """Change the beaconing period for subsequent periods."""
        return self._add(BeaconPeriodChange(interval_ms=interval_ms))

    def set_service_rate(
        self,
        budget_per_tick: Optional[int],
        as_ids: Optional[Sequence[int]] = None,
    ) -> "TimelineCursor":
        """Change the inbox service budget at ``as_ids`` (default: all)."""
        return self._add(
            ServiceRateChange(
                budget_per_tick=budget_per_tick,
                as_ids=tuple(as_ids) if as_ids is not None else None,
            )
        )

    def flood_beacons(self, attacker_as: int, bursts: int = 10) -> "TimelineCursor":
        """Flood ``bursts`` extra origination rounds from ``attacker_as``."""
        return self._add(BeaconFlood(attacker_as=attacker_as, bursts=bursts))

    def slow_as(self, as_id: int, budget_per_tick: int = 1) -> "TimelineCursor":
        """Turn one AS into a straggler with a tiny service budget."""
        return self._add(
            ServiceRateChange(budget_per_tick=budget_per_tick, as_ids=(as_id,))
        )

    def flap_link(
        self,
        link_id: LinkID,
        schedule: Sequence[float] = (),
        loss_ab: float = 0.0,
        loss_ba: float = 0.0,
        duration_ms: Optional[float] = None,
    ) -> "TimelineCursor":
        """Flap a link on a toggle schedule with per-direction loss."""
        return self._add(
            LinkFlap(
                link_id=link_id,
                schedule=tuple(schedule),
                loss_ab=loss_ab,
                loss_ba=loss_ba,
                duration_ms=duration_ms,
            )
        )

    def gray_fail(self, link_id: LinkID, drop_rate: float = 1.0) -> "TimelineCursor":
        """Silently gray-fail a link (no revocations ever originate)."""
        return self._add(GrayFailure(link_id=link_id, drop_rate=drop_rate))

    def gray_recover(self, link_id: LinkID) -> "TimelineCursor":
        """Silently clear a gray failure."""
        return self._add(GrayRecovery(link_id=link_id))

    def forge_revocation(
        self,
        attacker_as: int,
        claimed_origin: int,
        link_id: LinkID,
        count: int = 1,
    ) -> "TimelineCursor":
        """Flood forged revocations claiming another AS as origin."""
        return self._add(
            RevocationForgery(
                attacker_as=attacker_as,
                claimed_origin=claimed_origin,
                link_id=link_id,
                count=count,
            )
        )

    def replay_revocations(self, attacker_as: int, count: int = 1) -> "TimelineCursor":
        """Re-flood already-processed revocations from ``attacker_as``."""
        return self._add(RevocationReplay(attacker_as=attacker_as, count=count))

    def suppress_forwarding(
        self, as_ids: Sequence[int], suppress: bool = True
    ) -> "TimelineCursor":
        """Make ``as_ids`` swallow revocation floods instead of re-forwarding."""
        return self._add(
            ForwardingSuppression(as_ids=tuple(as_ids), suppress=suppress)
        )

    def grow_as(
        self,
        new_as: int,
        attach_to: Sequence[int],
        latency_ms: float = 10.0,
        bandwidth_mbps: float = 1000.0,
        location: Tuple[float, float] = (0.0, 0.0),
    ) -> "TimelineCursor":
        """Grow the topology: a brand-new AS attaches to existing ones."""
        return self._add(
            TopologyGrowth(
                new_as=new_as,
                attach_to=tuple(attach_to),
                latency_ms=latency_ms,
                bandwidth_mbps=bandwidth_mbps,
                location=location,
            )
        )


# ----------------------------------------------------------------------
# seeded random event generators
# ----------------------------------------------------------------------
def random_link_failures(
    topology: Topology,
    count: int,
    rng: random.Random,
    start_ms: float,
    spacing_ms: float,
    recovery_after_ms: Optional[float] = None,
    candidates: Optional[Sequence[LinkID]] = None,
) -> List[TimedEvent]:
    """Generate ``count`` failures of distinct random links.

    Failures fire at ``start_ms, start_ms + spacing_ms, ...``; when
    ``recovery_after_ms`` is given, each link recovers that long after its
    failure.  Candidate links default to every link and are drawn in
    sorted order, so a seeded ``rng`` makes the schedule fully
    reproducible; restrict ``candidates`` (e.g. to the links of one AS) to
    aim the failures.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if candidates is not None:
        pool = sorted(normalize_link_id(*link) for link in candidates)
    else:
        pool = list(topology.link_ids())
    chosen = rng.sample(pool, k=min(count, len(pool)))
    events: List[TimedEvent] = []
    for index, link in enumerate(chosen):
        fail_at = start_ms + index * spacing_ms
        events.append(TimedEvent(time_ms=fail_at, event=LinkFailure(link_id=link)))
        if recovery_after_ms is not None:
            events.append(
                TimedEvent(
                    time_ms=fail_at + recovery_after_ms,
                    event=LinkRecovery(link_id=link),
                )
            )
    return events


def revocation_storm(
    topology: Topology,
    count: int,
    rng: random.Random,
    at_ms: float,
    recovery_after_ms: Optional[float] = None,
    candidates: Optional[Sequence[LinkID]] = None,
) -> List[TimedEvent]:
    """Generate a revocation storm: ``count`` links fail *simultaneously*.

    Every failure fires at the same ``at_ms``, so the driver's
    per-originator aggregation batches co-owned failures into
    multi-element revocations and every inbox sees the storm as one
    burst.  With bounded inboxes the burst exceeds per-tick budgets and
    withdrawal times spread out load-dependently; with the unlimited
    default the storm converges within the tick.
    """
    return random_link_failures(
        topology,
        count,
        rng,
        start_ms=at_ms,
        spacing_ms=0.0,
        recovery_after_ms=recovery_after_ms,
        candidates=candidates,
    )


def slow_as_stragglers(
    as_ids: Sequence[int],
    budget_per_tick: int,
    start_ms: float,
    duration_ms: Optional[float] = None,
) -> List[TimedEvent]:
    """Generate straggler events: the given ASes slow to a tiny budget.

    Each AS's inbox budget drops to ``budget_per_tick`` at ``start_ms``;
    when ``duration_ms`` is given the unlimited default is restored that
    much later (the accumulated backlog then drains promptly).
    """
    targets = tuple(int(a) for a in as_ids)
    events: List[TimedEvent] = [
        TimedEvent(
            time_ms=start_ms,
            event=ServiceRateChange(budget_per_tick=budget_per_tick, as_ids=targets),
        )
    ]
    if duration_ms is not None:
        events.append(
            TimedEvent(
                time_ms=start_ms + duration_ms,
                event=ServiceRateChange(budget_per_tick=None, as_ids=targets),
            )
        )
    return events


def beacon_flood_dos(
    attacker_as: int,
    start_ms: float,
    bursts: int = 10,
    waves: int = 1,
    spacing_ms: float = 0.0,
) -> List[TimedEvent]:
    """Generate a beacon-flood DoS: ``waves`` bursts from one attacker.

    Each wave fires ``bursts`` extra origination rounds; waves are spaced
    ``spacing_ms`` apart (0 collapses them into one same-time volley).
    """
    if waves < 1:
        raise ConfigurationError(f"waves must be >= 1, got {waves}")
    return [
        TimedEvent(
            time_ms=start_ms + index * spacing_ms,
            event=BeaconFlood(attacker_as=attacker_as, bursts=bursts),
        )
        for index in range(waves)
    ]


def random_churn(
    topology: Topology,
    count: int,
    rng: random.Random,
    start_ms: float,
    spacing_ms: float,
    downtime_ms: Optional[float] = None,
    candidates: Optional[Sequence[int]] = None,
) -> List[TimedEvent]:
    """Generate leave (and optional rejoin) events for random ASes.

    Args:
        topology: Topology the ASes are drawn from.
        count: Number of distinct ASes to churn.
        rng: Seeded random generator (determinism is the caller's contract).
        start_ms: Time of the first leave.
        spacing_ms: Gap between consecutive leaves.
        downtime_ms: When given, each AS rejoins that long after leaving.
        candidates: Restrict the draw (e.g. to stub ASes so the topology
            stays connected); defaults to every AS.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    pool = sorted(int(a) for a in (candidates if candidates is not None else topology.as_ids()))
    chosen = rng.sample(pool, k=min(count, len(pool)))
    events: List[TimedEvent] = []
    for index, as_id in enumerate(chosen):
        leave_at = start_ms + index * spacing_ms
        events.append(TimedEvent(time_ms=leave_at, event=ASLeave(as_id=as_id)))
        if downtime_ms is not None:
            events.append(
                TimedEvent(time_ms=leave_at + downtime_ms, event=ASJoin(as_id=as_id))
            )
    return events


def flapping_links(
    topology: Topology,
    count: int,
    rng: random.Random,
    start_ms: float,
    cycles: int = 3,
    mean_down_ms: float = 30_000.0,
    mean_up_ms: float = 60_000.0,
    loss_rate: float = 0.0,
    candidates: Optional[Sequence[LinkID]] = None,
) -> List[TimedEvent]:
    """Generate seeded link flaps: random links toggle down/up repeatedly.

    Each chosen link flaps ``cycles`` times; phase lengths are drawn
    uniformly from ``[0.5, 1.5] ×`` the respective mean, so a seeded
    ``rng`` makes the whole schedule reproducible.  Every schedule has an
    even number of toggles — the link always ends up.  ``loss_rate`` is
    applied symmetrically in both directions while the flap is active.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    if candidates is not None:
        pool = sorted(normalize_link_id(*link) for link in candidates)
    else:
        pool = list(topology.link_ids())
    chosen = rng.sample(pool, k=min(count, len(pool)))
    events: List[TimedEvent] = []
    for link in chosen:
        schedule: List[float] = []
        offset = 0.0
        for _cycle in range(cycles):
            schedule.append(offset)
            offset += mean_down_ms * rng.uniform(0.5, 1.5)
            schedule.append(offset)
            offset += mean_up_ms * rng.uniform(0.5, 1.5)
        events.append(
            TimedEvent(
                time_ms=start_ms,
                event=LinkFlap(
                    link_id=link,
                    schedule=tuple(schedule),
                    loss_ab=loss_rate,
                    loss_ba=loss_rate,
                ),
            )
        )
    return events


def gray_failures(
    topology: Topology,
    count: int,
    rng: random.Random,
    at_ms: float,
    drop_rate: float = 1.0,
    duration_ms: Optional[float] = None,
    candidates: Optional[Sequence[LinkID]] = None,
) -> List[TimedEvent]:
    """Generate silent gray failures of random links (plus optional recovery).

    No revocation ever originates for these links; the control plane
    stays blind and only end-host delivery quality degrades.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if candidates is not None:
        pool = sorted(normalize_link_id(*link) for link in candidates)
    else:
        pool = list(topology.link_ids())
    chosen = rng.sample(pool, k=min(count, len(pool)))
    events: List[TimedEvent] = []
    for link in chosen:
        events.append(
            TimedEvent(time_ms=at_ms, event=GrayFailure(link_id=link, drop_rate=drop_rate))
        )
        if duration_ms is not None:
            events.append(
                TimedEvent(time_ms=at_ms + duration_ms, event=GrayRecovery(link_id=link))
            )
    return events


def byzantine_attack(
    attacker_as: int,
    claimed_origin: int,
    link_id: LinkID,
    at_ms: float,
    forgeries: int = 3,
    replays: int = 0,
    suppress: bool = False,
) -> List[TimedEvent]:
    """Generate one Byzantine AS's attack schedule.

    At ``at_ms`` the attacker floods ``forgeries`` forged revocations
    claiming ``claimed_origin``; when ``replays > 0`` it also re-floods
    that many cached revocations, and ``suppress=True`` additionally
    turns it into a forwarding suppressor from the same instant.
    """
    events: List[TimedEvent] = []
    if suppress:
        events.append(
            TimedEvent(
                time_ms=at_ms,
                event=ForwardingSuppression(as_ids=(attacker_as,)),
            )
        )
    if forgeries > 0:
        events.append(
            TimedEvent(
                time_ms=at_ms,
                event=RevocationForgery(
                    attacker_as=attacker_as,
                    claimed_origin=claimed_origin,
                    link_id=link_id,
                    count=forgeries,
                ),
            )
        )
    if replays > 0:
        events.append(
            TimedEvent(
                time_ms=at_ms,
                event=RevocationReplay(attacker_as=attacker_as, count=replays),
            )
        )
    if not events:
        raise ConfigurationError(
            "a Byzantine attack needs forgeries, replays or suppression"
        )
    return events


def growth_churn(
    topology: Topology,
    count: int,
    rng: random.Random,
    start_ms: float,
    spacing_ms: float,
    attach_degree: int = 2,
    latency_ms: float = 10.0,
    bandwidth_mbps: float = 1000.0,
) -> List[TimedEvent]:
    """Generate join churn that *grows* the topology with brand-new ASes.

    New AS identifiers continue past the current maximum; each newcomer
    attaches to ``attach_degree`` random existing ASes (seeded draw, so
    the schedule is reproducible).
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if attach_degree < 1:
        raise ConfigurationError(f"attach_degree must be >= 1, got {attach_degree}")
    pool = list(topology.as_ids())
    next_id = (max(pool) if pool else 0) + 1
    events: List[TimedEvent] = []
    for index in range(count):
        attach = tuple(rng.sample(pool, k=min(attach_degree, len(pool))))
        events.append(
            TimedEvent(
                time_ms=start_ms + index * spacing_ms,
                event=TopologyGrowth(
                    new_as=next_id + index,
                    attach_to=attach,
                    latency_ms=latency_ms,
                    bandwidth_mbps=bandwidth_mbps,
                ),
            )
        )
    return events
