"""Typed scenario events and the dynamic-scenario timeline DSL.

A static :class:`~repro.simulation.scenario.ScenarioConfig` describes one
fixed deployment; real inter-domain control planes are dominated by churn
and operator activity.  This module provides the vocabulary to script that
dynamism:

* **typed events** — link failure/recovery, AS leave/join (churn), per-AS
  admission-policy swaps, RAC hot-swaps, beaconing-period changes, and
  the overload family (PR 6): inbox service-rate changes and beacon-flood
  DoS bursts,
* a **timeline** of ``(time, event)`` pairs attached to a scenario and
  executed by the beaconing driver through its discrete-event scheduler
  (so an event scheduled mid-period really interrupts propagation), and
* a small **builder DSL** (``timeline.at(t).fail_link(...)``) plus seeded
  random failure/churn generators for reproducible what-if experiments.

Every event renders to a stable one-line ``trace_label`` used by the
golden-trace regression tests: two runs of the same seeded scenario must
produce bit-for-bit identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.topology.entities import LinkID, normalize_link_id
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenario ↔ events)
    from repro.simulation.scenario import AlgorithmSpec


def _format_link(link_id: LinkID) -> str:
    (as_a, if_a), (as_b, if_b) = link_id
    return f"{as_a}.{if_a}-{as_b}.{if_b}"


class ScenarioEvent:
    """Base class of all timed scenario events (marker + trace contract)."""

    def trace_label(self) -> str:
        """Return the stable one-line representation used in traces."""
        raise NotImplementedError


@dataclass(frozen=True)
class LinkFailure(ScenarioEvent):
    """An inter-domain link goes down.

    In-flight PCBs on the link are lost and future sends over it are
    dropped.  The link's endpoint ASes originate signed revocation
    messages that flood hop-by-hop (:mod:`repro.core.revocation`); every
    other control service withdraws beacons and registered paths crossing
    the link when the revocation *arrives* — withdrawal timing is
    topology-dependent, not instantaneous.
    """

    link_id: LinkID

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))

    def trace_label(self) -> str:
        return f"fail_link {_format_link(self.link_id)}"


@dataclass(frozen=True)
class LinkRecovery(ScenarioEvent):
    """A previously failed inter-domain link comes back up.

    Recovery is silent: paths over the link reappear once the next
    beaconing period re-propagates PCBs across it.
    """

    link_id: LinkID

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_id", normalize_link_id(*self.link_id))

    def trace_label(self) -> str:
        return f"recover_link {_format_link(self.link_id)}"


@dataclass(frozen=True)
class ASLeave(ScenarioEvent):
    """An AS leaves the network (churn).

    All of the AS's links become unusable and the AS stops originating and
    processing beacons.  Its neighbours originate revocation messages, so
    every *reachable* AS withdraws state crossing it as the flood arrives;
    partitioned ASes keep stale state until it expires.
    """

    as_id: int

    def trace_label(self) -> str:
        return f"as_leave {self.as_id}"


@dataclass(frozen=True)
class ASJoin(ScenarioEvent):
    """A previously departed AS rejoins with its original links."""

    as_id: int

    def trace_label(self) -> str:
        return f"as_join {self.as_id}"


@dataclass(frozen=True)
class PolicySwap(ScenarioEvent):
    """Replace the admission policies of one AS (or of every AS).

    Attributes:
        policies: The new admission-policy callables (see
            :mod:`repro.core.policies`); replaces the previous set.
        as_ids: ASes to reconfigure; ``None`` means every IREC AS.
        label: Stable human-readable name for traces (callables have no
            deterministic repr).
    """

    policies: Tuple = ()
    as_ids: Optional[Tuple[int, ...]] = None
    label: str = "default"

    def trace_label(self) -> str:
        scope = "all" if self.as_ids is None else ",".join(str(a) for a in self.as_ids)
        return f"policy_swap {self.label} @ {scope}"


@dataclass(frozen=True)
class RACSwap(ScenarioEvent):
    """Hot-swap a routing algorithm container in one AS (or every AS).

    The RAC named ``replace_rac_id`` (default: the new spec's ``rac_id``)
    is removed and a fresh container built from ``spec`` is installed, as
    if the operator deployed a new algorithm image.
    """

    spec: "AlgorithmSpec"
    replace_rac_id: Optional[str] = None
    as_ids: Optional[Tuple[int, ...]] = None

    @property
    def target_rac_id(self) -> str:
        """Return the id of the RAC being replaced."""
        return self.replace_rac_id or self.spec.rac_id

    def trace_label(self) -> str:
        scope = "all" if self.as_ids is None else ",".join(str(a) for a in self.as_ids)
        return f"rac_swap {self.target_rac_id}->{self.spec.rac_id} @ {scope}"


@dataclass(frozen=True)
class BeaconPeriodChange(ScenarioEvent):
    """Change the beaconing period for all *subsequent* periods.

    The period already in progress finishes at its scheduled end; overhead
    bins of the metrics collector keep the scenario's initial period length.
    """

    interval_ms: float

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ConfigurationError(
                f"beaconing period must be positive, got {self.interval_ms}"
            )

    def trace_label(self) -> str:
        return f"set_period {self.interval_ms:.3f}"


@dataclass(frozen=True)
class ServiceRateChange(ScenarioEvent):
    """Change the per-tick inbox service budget of one or more ASes.

    Hot-swaps the rate limit of the targeted ASes' bounded inboxes (see
    :class:`repro.simulation.network.InboxProfile`): ``budget_per_tick``
    messages are serviced per round, the rest queues.  ``None`` restores
    the unlimited default (the whole backlog drains promptly).  This is
    the timeline handle for slow-AS stragglers and operator rate-limit
    interventions.

    Attributes:
        budget_per_tick: New per-round budget (``>= 1``), or ``None`` for
            unlimited.
        as_ids: ASes to reconfigure; ``None`` means every AS.
    """

    budget_per_tick: Optional[int] = None
    as_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.budget_per_tick is not None and self.budget_per_tick < 1:
            raise ConfigurationError(
                f"budget_per_tick must be None or >= 1, got {self.budget_per_tick}"
            )

    def trace_label(self) -> str:
        budget = "inf" if self.budget_per_tick is None else str(self.budget_per_tick)
        scope = "all" if self.as_ids is None else ",".join(str(a) for a in self.as_ids)
        return f"service_rate {budget} @ {scope}"


@dataclass(frozen=True)
class BeaconFlood(ScenarioEvent):
    """A designated AS floods a burst of beacon originations (DoS).

    The attacker AS originates ``bursts`` extra rounds of PCBs at the
    event time — on top of its regular period originations — pressuring
    every downstream inbox.  With bounded inboxes the flood manifests as
    queue growth, deferrals and drops; with the unlimited default it only
    inflates message counts.
    """

    attacker_as: int
    bursts: int = 10

    def __post_init__(self) -> None:
        if self.bursts < 1:
            raise ConfigurationError(f"bursts must be >= 1, got {self.bursts}")

    def trace_label(self) -> str:
        return f"beacon_flood {self.attacker_as} x{self.bursts}"


@dataclass(frozen=True)
class TimedEvent:
    """One scenario event pinned to an absolute simulated time."""

    time_ms: float
    event: ScenarioEvent

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError(f"event time must be non-negative, got {self.time_ms}")

    def trace_label(self) -> str:
        """Return the stable trace line of this timed event."""
        return f"{self.time_ms:.3f} {self.event.trace_label()}"


@dataclass
class ScenarioTimeline:
    """An ordered collection of timed events with a chaining builder DSL.

    Events are kept in insertion order; the beaconing driver schedules them
    on its discrete-event scheduler, which orders them by time with FIFO
    tie-breaking — so same-time events apply in the order they were added.

    Example::

        timeline = ScenarioTimeline()
        timeline.at(minutes(15)).fail_link(link).at(minutes(35)).recover_link(link)
    """

    _events: List[TimedEvent] = field(default_factory=list)

    def at(self, time_ms: float) -> "TimelineCursor":
        """Return a cursor adding events at absolute time ``time_ms``."""
        return TimelineCursor(timeline=self, time_ms=time_ms)

    def add(self, time_ms: float, event: ScenarioEvent) -> "ScenarioTimeline":
        """Append one event at ``time_ms``; return the timeline (chainable)."""
        self._events.append(TimedEvent(time_ms=time_ms, event=event))
        return self

    def extend(self, timed_events: Sequence[TimedEvent]) -> "ScenarioTimeline":
        """Append pre-built timed events (e.g. from the random generators)."""
        for timed in timed_events:
            if not isinstance(timed, TimedEvent):
                raise ConfigurationError(f"expected TimedEvent, got {timed!r}")
            self._events.append(timed)
        return self

    @property
    def events(self) -> Tuple[TimedEvent, ...]:
        """Return the timed events in insertion order."""
        return tuple(self._events)

    def validate(self, topology: Optional[Topology] = None) -> None:
        """Reject schedules that would silently no-op when executed.

        Replays the timeline in execution order (time, then insertion
        order — exactly how the scheduler fires it) and raises
        :class:`ConfigurationError` for a :class:`LinkRecovery` of a link
        that is not failed at that point, or an :class:`ASJoin` of an AS
        that is not offline.  Both were previously silent no-ops
        (``LinkState`` discards unknown keys), which hid scheduling
        mistakes like a recovery firing before its failure or a mistyped
        link id.  Negative event times are already rejected at
        :class:`TimedEvent` construction, non-positive
        :class:`ServiceRateChange` budgets at event construction.

        When ``topology`` is given, :class:`ServiceRateChange` targets and
        :class:`BeaconFlood` attackers must be member ASes — a rate limit
        or flood aimed at an unknown AS would otherwise silently do
        nothing.

        The beaconing driver calls this (with its topology) before
        scheduling the timeline; call it directly to check a hand-built
        timeline early.
        """
        failed: set = set()
        offline: set = set()
        ordered = sorted(self._events, key=lambda timed: timed.time_ms)
        for timed in ordered:
            event = timed.event
            if isinstance(event, LinkFailure):
                failed.add(event.link_id)
            elif isinstance(event, LinkRecovery):
                if event.link_id not in failed:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} recovers a link "
                        "that is not failed at that time — a recovery needs an "
                        "earlier failure of the same link"
                    )
                failed.discard(event.link_id)
            elif isinstance(event, ASLeave):
                offline.add(event.as_id)
            elif isinstance(event, ASJoin):
                if event.as_id not in offline:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} rejoins an AS "
                        "that is not offline at that time — a join needs an "
                        "earlier leave of the same AS"
                    )
                offline.discard(event.as_id)
            elif isinstance(event, ServiceRateChange):
                if event.budget_per_tick is not None and event.budget_per_tick < 1:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} sets a "
                        f"non-positive budget {event.budget_per_tick}"
                    )
                if topology is not None and event.as_ids is not None:
                    for as_id in event.as_ids:
                        if as_id not in topology:
                            raise ConfigurationError(
                                f"timeline event {timed.trace_label()!r} targets "
                                f"unknown AS {as_id}"
                            )
            elif isinstance(event, BeaconFlood):
                if topology is not None and event.attacker_as not in topology:
                    raise ConfigurationError(
                        f"timeline event {timed.trace_label()!r} floods from "
                        f"unknown AS {event.attacker_as}"
                    )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


@dataclass
class TimelineCursor:
    """Builder cursor of :class:`ScenarioTimeline` pinned to one time."""

    timeline: ScenarioTimeline
    time_ms: float

    def at(self, time_ms: float) -> "TimelineCursor":
        """Move the cursor to a different absolute time."""
        return TimelineCursor(timeline=self.timeline, time_ms=time_ms)

    def _add(self, event: ScenarioEvent) -> "TimelineCursor":
        self.timeline.add(self.time_ms, event)
        return self

    def fail_link(self, link_id: LinkID) -> "TimelineCursor":
        """Fail an inter-domain link."""
        return self._add(LinkFailure(link_id=link_id))

    def recover_link(self, link_id: LinkID) -> "TimelineCursor":
        """Recover a previously failed link."""
        return self._add(LinkRecovery(link_id=link_id))

    def as_leave(self, as_id: int) -> "TimelineCursor":
        """Remove an AS from the network (churn)."""
        return self._add(ASLeave(as_id=as_id))

    def as_join(self, as_id: int) -> "TimelineCursor":
        """Bring a previously departed AS back."""
        return self._add(ASJoin(as_id=as_id))

    def swap_policies(
        self,
        policies: Sequence,
        as_ids: Optional[Sequence[int]] = None,
        label: str = "default",
    ) -> "TimelineCursor":
        """Replace admission policies at ``as_ids`` (default: everywhere)."""
        return self._add(
            PolicySwap(
                policies=tuple(policies),
                as_ids=tuple(as_ids) if as_ids is not None else None,
                label=label,
            )
        )

    def swap_rac(
        self,
        spec: "AlgorithmSpec",
        replace_rac_id: Optional[str] = None,
        as_ids: Optional[Sequence[int]] = None,
    ) -> "TimelineCursor":
        """Hot-swap a RAC at ``as_ids`` (default: every IREC AS)."""
        return self._add(
            RACSwap(
                spec=spec,
                replace_rac_id=replace_rac_id,
                as_ids=tuple(as_ids) if as_ids is not None else None,
            )
        )

    def set_beacon_period(self, interval_ms: float) -> "TimelineCursor":
        """Change the beaconing period for subsequent periods."""
        return self._add(BeaconPeriodChange(interval_ms=interval_ms))

    def set_service_rate(
        self,
        budget_per_tick: Optional[int],
        as_ids: Optional[Sequence[int]] = None,
    ) -> "TimelineCursor":
        """Change the inbox service budget at ``as_ids`` (default: all)."""
        return self._add(
            ServiceRateChange(
                budget_per_tick=budget_per_tick,
                as_ids=tuple(as_ids) if as_ids is not None else None,
            )
        )

    def flood_beacons(self, attacker_as: int, bursts: int = 10) -> "TimelineCursor":
        """Flood ``bursts`` extra origination rounds from ``attacker_as``."""
        return self._add(BeaconFlood(attacker_as=attacker_as, bursts=bursts))

    def slow_as(self, as_id: int, budget_per_tick: int = 1) -> "TimelineCursor":
        """Turn one AS into a straggler with a tiny service budget."""
        return self._add(
            ServiceRateChange(budget_per_tick=budget_per_tick, as_ids=(as_id,))
        )


# ----------------------------------------------------------------------
# seeded random event generators
# ----------------------------------------------------------------------
def random_link_failures(
    topology: Topology,
    count: int,
    rng: random.Random,
    start_ms: float,
    spacing_ms: float,
    recovery_after_ms: Optional[float] = None,
    candidates: Optional[Sequence[LinkID]] = None,
) -> List[TimedEvent]:
    """Generate ``count`` failures of distinct random links.

    Failures fire at ``start_ms, start_ms + spacing_ms, ...``; when
    ``recovery_after_ms`` is given, each link recovers that long after its
    failure.  Candidate links default to every link and are drawn in
    sorted order, so a seeded ``rng`` makes the schedule fully
    reproducible; restrict ``candidates`` (e.g. to the links of one AS) to
    aim the failures.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if candidates is not None:
        pool = sorted(normalize_link_id(*link) for link in candidates)
    else:
        pool = list(topology.link_ids())
    chosen = rng.sample(pool, k=min(count, len(pool)))
    events: List[TimedEvent] = []
    for index, link in enumerate(chosen):
        fail_at = start_ms + index * spacing_ms
        events.append(TimedEvent(time_ms=fail_at, event=LinkFailure(link_id=link)))
        if recovery_after_ms is not None:
            events.append(
                TimedEvent(
                    time_ms=fail_at + recovery_after_ms,
                    event=LinkRecovery(link_id=link),
                )
            )
    return events


def revocation_storm(
    topology: Topology,
    count: int,
    rng: random.Random,
    at_ms: float,
    recovery_after_ms: Optional[float] = None,
    candidates: Optional[Sequence[LinkID]] = None,
) -> List[TimedEvent]:
    """Generate a revocation storm: ``count`` links fail *simultaneously*.

    Every failure fires at the same ``at_ms``, so the driver's
    per-originator aggregation batches co-owned failures into
    multi-element revocations and every inbox sees the storm as one
    burst.  With bounded inboxes the burst exceeds per-tick budgets and
    withdrawal times spread out load-dependently; with the unlimited
    default the storm converges within the tick.
    """
    return random_link_failures(
        topology,
        count,
        rng,
        start_ms=at_ms,
        spacing_ms=0.0,
        recovery_after_ms=recovery_after_ms,
        candidates=candidates,
    )


def slow_as_stragglers(
    as_ids: Sequence[int],
    budget_per_tick: int,
    start_ms: float,
    duration_ms: Optional[float] = None,
) -> List[TimedEvent]:
    """Generate straggler events: the given ASes slow to a tiny budget.

    Each AS's inbox budget drops to ``budget_per_tick`` at ``start_ms``;
    when ``duration_ms`` is given the unlimited default is restored that
    much later (the accumulated backlog then drains promptly).
    """
    targets = tuple(int(a) for a in as_ids)
    events: List[TimedEvent] = [
        TimedEvent(
            time_ms=start_ms,
            event=ServiceRateChange(budget_per_tick=budget_per_tick, as_ids=targets),
        )
    ]
    if duration_ms is not None:
        events.append(
            TimedEvent(
                time_ms=start_ms + duration_ms,
                event=ServiceRateChange(budget_per_tick=None, as_ids=targets),
            )
        )
    return events


def beacon_flood_dos(
    attacker_as: int,
    start_ms: float,
    bursts: int = 10,
    waves: int = 1,
    spacing_ms: float = 0.0,
) -> List[TimedEvent]:
    """Generate a beacon-flood DoS: ``waves`` bursts from one attacker.

    Each wave fires ``bursts`` extra origination rounds; waves are spaced
    ``spacing_ms`` apart (0 collapses them into one same-time volley).
    """
    if waves < 1:
        raise ConfigurationError(f"waves must be >= 1, got {waves}")
    return [
        TimedEvent(
            time_ms=start_ms + index * spacing_ms,
            event=BeaconFlood(attacker_as=attacker_as, bursts=bursts),
        )
        for index in range(waves)
    ]


def random_churn(
    topology: Topology,
    count: int,
    rng: random.Random,
    start_ms: float,
    spacing_ms: float,
    downtime_ms: Optional[float] = None,
    candidates: Optional[Sequence[int]] = None,
) -> List[TimedEvent]:
    """Generate leave (and optional rejoin) events for random ASes.

    Args:
        topology: Topology the ASes are drawn from.
        count: Number of distinct ASes to churn.
        rng: Seeded random generator (determinism is the caller's contract).
        start_ms: Time of the first leave.
        spacing_ms: Gap between consecutive leaves.
        downtime_ms: When given, each AS rejoins that long after leaving.
        candidates: Restrict the draw (e.g. to stub ASes so the topology
            stays connected); defaults to every AS.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    pool = sorted(int(a) for a in (candidates if candidates is not None else topology.as_ids()))
    chosen = rng.sample(pool, k=min(count, len(pool)))
    events: List[TimedEvent] = []
    for index, as_id in enumerate(chosen):
        leave_at = start_ms + index * spacing_ms
        events.append(TimedEvent(time_ms=leave_at, event=ASLeave(as_id=as_id)))
        if downtime_ms is not None:
            events.append(
                TimedEvent(time_ms=leave_at + downtime_ms, event=ASJoin(as_id=as_id))
            )
    return events
