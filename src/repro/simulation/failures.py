"""Link-failure injection.

The disjointness evaluation (Figure 8b) argues that a path set with a high
tolerable-link-failure count keeps the pair connected under failures.  This
module closes the loop: it removes concrete links from a topology, checks
which registered paths survive, and verifies the TLF prediction empirically
— the failure-injection counterpart used by tests and the disjointness
example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.beacon import Beacon
from repro.exceptions import SimulationError
from repro.topology.entities import LinkID, normalize_link_id
from repro.topology.graph import Topology


@dataclass
class LinkFailureInjector:
    """Tracks a set of failed inter-domain links."""

    topology: Topology
    _failed: Set[LinkID] = field(default_factory=set)

    def fail_link(self, link_id: LinkID) -> None:
        """Mark one link as failed.

        Raises:
            SimulationError: If the link does not exist in the topology.
        """
        normalised = normalize_link_id(*link_id)
        if normalised not in self.topology.links:
            raise SimulationError(f"cannot fail unknown link {link_id}")
        self._failed.add(normalised)

    def fail_random_links(self, count: int, rng: Optional[random.Random] = None) -> List[LinkID]:
        """Fail ``count`` uniformly chosen distinct links; return them."""
        if count < 0:
            raise SimulationError(f"count must be non-negative, got {count}")
        rng = rng or random.Random(0)
        candidates = [link for link in sorted(self.topology.links) if link not in self._failed]
        chosen = rng.sample(candidates, k=min(count, len(candidates)))
        for link in chosen:
            self._failed.add(link)
        return chosen

    def restore_all(self) -> None:
        """Clear every failure."""
        self._failed.clear()

    @property
    def failed_links(self) -> Set[LinkID]:
        """Return the currently failed links."""
        return set(self._failed)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def path_survives(self, path_links: Iterable[LinkID]) -> bool:
        """Return whether a path avoiding every failed link."""
        return not any(normalize_link_id(*link) in self._failed for link in path_links)

    def surviving_paths(self, segments: Sequence[Beacon]) -> List[Beacon]:
        """Return the segments whose links all survived."""
        return [segment for segment in segments if self.path_survives(segment.links())]

    def pair_still_connected(self, segments: Sequence[Beacon]) -> bool:
        """Return whether at least one of the segments survives the failures."""
        return bool(self.surviving_paths(segments))


def minimum_failures_to_disconnect(
    segments: Sequence[Beacon], source_as: int, destination_as: int
) -> int:
    """Empirical counterpart of the TLF metric.

    Convenience wrapper re-exporting the min-cut computation of
    :func:`repro.analysis.disjointness_eval.tolerable_link_failures` on
    beacon segments, so failure-injection tests can compare "predicted TLF"
    with "failures actually needed to disconnect".
    """
    from repro.analysis.disjointness_eval import tolerable_link_failures

    return tolerable_link_failures([s.links() for s in segments], source_as, destination_as)
