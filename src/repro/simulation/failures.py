"""Link-failure injection.

The disjointness evaluation (Figure 8b) argues that a path set with a high
tolerable-link-failure count keeps the pair connected under failures.  This
module closes the loop: it removes concrete links from a topology, checks
which registered paths survive, and verifies the TLF prediction empirically
— the failure-injection counterpart used by tests and the disjointness
example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.beacon import Beacon
from repro.exceptions import SimulationError
from repro.topology.entities import LinkID, normalize_link_id
from repro.topology.graph import Topology


@dataclass
class LinkState:
    """Live availability of links and ASes during a dynamic simulation.

    One instance is shared between the beaconing driver (which mutates it
    when timeline events fire) and the simulated transport (which consults
    it on every send *and* every delivery, so a link failing mid-flight
    loses the PCBs currently on it).

    A link is available only if it is not failed and both endpoint ASes
    are online; an offline AS implicitly takes all of its links down.

    Beyond hard failures, a link can be *degraded* (PR 7): gray-failed
    links silently drop messages with ``gray_links[key]`` probability,
    and flapping links carry per-direction loss rates keyed by
    ``(link key, receiving AS)``.  Degradation is deliberately invisible
    to :meth:`impaired`, :meth:`link_available` and
    :meth:`path_available` — the control plane must keep treating the
    link as up (no revocations, stale paths linger); only the transport's
    delivery dice and end-host-observed quality reveal it.
    """

    failed_links: Set[LinkID] = field(default_factory=set)
    offline_ases: Set[int] = field(default_factory=set)
    gray_links: Dict[LinkID, float] = field(default_factory=dict)
    link_loss: Dict[Tuple[LinkID, int], float] = field(default_factory=dict)

    def fail_link(self, link_id: LinkID) -> None:
        """Mark one link as failed."""
        self.failed_links.add(normalize_link_id(*link_id))

    def restore_link(self, link_id: LinkID) -> None:
        """Bring one link back up (no-op if it was not failed)."""
        self.failed_links.discard(normalize_link_id(*link_id))

    def set_as_offline(self, as_id: int) -> None:
        """Take an AS (and implicitly all of its links) offline."""
        self.offline_ases.add(int(as_id))

    def set_as_online(self, as_id: int) -> None:
        """Bring an AS back online (its non-failed links become usable)."""
        self.offline_ases.discard(int(as_id))

    def is_as_up(self, as_id: int) -> bool:
        """Return whether ``as_id`` is online."""
        return int(as_id) not in self.offline_ases

    def impaired(self) -> bool:
        """Return whether anything is currently failed or offline.

        The transport's delivery fast path uses this to skip the per-hop
        path check entirely while the network is healthy, keeping static
        simulations at their original per-delivery cost.
        """
        return bool(self.failed_links or self.offline_ases)

    def is_link_up(self, link_id: LinkID) -> bool:
        """Return whether the link itself (ignoring its ASes) is up."""
        return normalize_link_id(*link_id) not in self.failed_links

    def link_available(self, link_id: LinkID) -> bool:
        """Return whether traffic can traverse ``link_id`` right now."""
        return self.link_key_available(normalize_link_id(*link_id))

    def link_key_available(self, key: LinkID) -> bool:
        """:meth:`link_available` for an already-normalised key.

        The transport's per-delivery fast path: link objects expose
        normalised keys, so re-normalising per message would only burn
        cycles during floods.
        """
        if key in self.failed_links:
            return False
        (as_a, _if_a), (as_b, _if_b) = key
        return as_a not in self.offline_ases and as_b not in self.offline_ases

    def path_available(self, path_links: Iterable[LinkID]) -> bool:
        """Return whether every link of a path is currently available.

        Gray failures and flap loss do *not* count: a degraded path is
        still "available" to the control plane by design.
        """
        return all(self.link_available(link) for link in path_links)

    # ------------------------------------------------------------------
    # silent degradation (gray failures, flap loss)
    # ------------------------------------------------------------------
    def set_gray(self, link_id: LinkID, drop_rate: float) -> None:
        """Gray-fail a link: drop each message with ``drop_rate`` probability."""
        if not 0.0 < drop_rate <= 1.0:
            raise SimulationError(
                f"gray drop rate must be within (0, 1], got {drop_rate}"
            )
        self.gray_links[normalize_link_id(*link_id)] = drop_rate

    def clear_gray(self, link_id: LinkID) -> None:
        """Silently clear a gray failure (no-op if the link was healthy)."""
        self.gray_links.pop(normalize_link_id(*link_id), None)

    def set_link_loss(self, link_id: LinkID, toward_as: int, rate: float) -> None:
        """Set the directional loss rate for messages arriving at ``toward_as``."""
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(f"loss rate must be within [0, 1], got {rate}")
        key = (normalize_link_id(*link_id), int(toward_as))
        if rate == 0.0:
            self.link_loss.pop(key, None)
        else:
            self.link_loss[key] = rate

    def clear_link_loss(self, link_id: LinkID) -> None:
        """Clear both directions' loss rates of one link."""
        normalised = normalize_link_id(*link_id)
        (as_a, _), (as_b, _) = normalised
        self.link_loss.pop((normalised, as_a), None)
        self.link_loss.pop((normalised, as_b), None)

    def degraded(self) -> bool:
        """Return whether any link silently drops messages right now.

        The transport's delivery fast path: while no link is degraded
        (the overwhelmingly common case) deliveries skip the loss dice
        entirely.
        """
        return bool(self.gray_links or self.link_loss)

    def gray_rate(self, key: LinkID) -> float:
        """Return the gray drop rate of an already-normalised link key."""
        return self.gray_links.get(key, 0.0)

    def silent_loss(self, key: LinkID) -> float:
        """Return the worst-direction silent-drop probability of one link.

        The end-host-observed quality proxy used by closed-loop demand: a
        host measuring loss on its own traffic observes (in expectation)
        the configured drop probability of the direction it sends over;
        taking the worse direction makes the estimate conservative.
        """
        (as_a, _if_a), (as_b, _if_b) = key
        return max(self.drop_probability(key, as_a), self.drop_probability(key, as_b))

    def drop_probability(self, key: LinkID, toward_as: int) -> float:
        """Return the combined silent-drop probability of one delivery.

        Gray drops and directional flap loss are independent events; the
        combined probability composes them (``1 - (1-g)(1-l)``).
        """
        rate = self.gray_links.get(key, 0.0)
        directional = self.link_loss.get((key, toward_as))
        if directional:
            rate = 1.0 - (1.0 - rate) * (1.0 - directional)
        return rate


@dataclass
class LinkFailureInjector:
    """Topology-validated front end for failing inter-domain links.

    The actual failed-link bookkeeping lives in a :class:`LinkState` —
    pass the state of a running :class:`BeaconingSimulation` to drive its
    live availability, or keep the default for standalone post-hoc
    survivability analysis (the Figure-8b usage).
    """

    topology: Topology
    state: LinkState = field(default_factory=LinkState)

    def fail_link(self, link_id: LinkID) -> None:
        """Mark one link as failed.

        Raises:
            SimulationError: If the link does not exist in the topology.
        """
        normalised = normalize_link_id(*link_id)
        if normalised not in self.topology.links:
            raise SimulationError(f"cannot fail unknown link {link_id}")
        self.state.fail_link(normalised)

    def restore_link(self, link_id: LinkID) -> None:
        """Clear the failure of one link (no-op if it was not failed)."""
        self.state.restore_link(link_id)

    def fail_random_links(self, count: int, rng: Optional[random.Random] = None) -> List[LinkID]:
        """Fail ``count`` uniformly chosen distinct links; return them."""
        if count < 0:
            raise SimulationError(f"count must be non-negative, got {count}")
        rng = rng or random.Random(0)
        candidates = [
            link for link in sorted(self.topology.links) if link not in self.state.failed_links
        ]
        chosen = rng.sample(candidates, k=min(count, len(candidates)))
        for link in chosen:
            self.state.fail_link(link)
        return chosen

    def restore_all(self) -> None:
        """Clear every failure."""
        self.state.failed_links.clear()

    @property
    def failed_links(self) -> Set[LinkID]:
        """Return the currently failed links."""
        return set(self.state.failed_links)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def path_survives(self, path_links: Iterable[LinkID]) -> bool:
        """Return whether a path avoids every failed link."""
        return all(self.state.is_link_up(link) for link in path_links)

    def surviving_paths(self, segments: Sequence[Beacon]) -> List[Beacon]:
        """Return the segments whose links all survived."""
        return [segment for segment in segments if self.path_survives(segment.links())]

    def pair_still_connected(self, segments: Sequence[Beacon]) -> bool:
        """Return whether at least one of the segments survives the failures."""
        return bool(self.surviving_paths(segments))


def minimum_failures_to_disconnect(
    segments: Sequence[Beacon], source_as: int, destination_as: int
) -> int:
    """Empirical counterpart of the TLF metric.

    Convenience wrapper re-exporting the min-cut computation of
    :func:`repro.analysis.disjointness_eval.tolerable_link_failures` on
    beacon segments, so failure-injection tests can compare "predicted TLF"
    with "failures actually needed to disconnect".
    """
    from repro.analysis.disjointness_eval import tolerable_link_failures

    return tolerable_link_failures([s.links() for s in segments], source_as, destination_as)
