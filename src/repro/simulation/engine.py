"""A deterministic discrete-event scheduler.

The scheduler is intentionally minimal: events are ``(time, callback)``
pairs processed in time order, with a monotonically increasing sequence
number breaking ties so that runs are bit-for-bit reproducible.  The
beaconing driver uses it to deliver PCBs with link delays and to trigger
periodic origination and RAC rounds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.obs import spans as _spans

#: An event callback receives the current simulated time in milliseconds.
EventCallback = Callable[[float], None]


class _ScheduledEvent:
    """One queued ``(time, callback)`` pair.

    A plain slotted class with a hand-written ``__lt__``: heap pushes and
    pops compare events millions of times per simulation, and the
    dataclass-generated comparison (which builds field tuples per call)
    showed up prominently in flood profiles.  Ordering is (time, sequence)
    with sequence unique, exactly as before.
    """

    __slots__ = ("time_ms", "sequence", "callback", "cancelled")

    def __init__(self, time_ms: float, sequence: int, callback: EventCallback) -> None:
        self.time_ms = time_ms
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        if self.time_ms != other.time_ms:
            return self.time_ms < other.time_ms
        return self.sequence < other.sequence


@dataclass
class EventScheduler:
    """Priority-queue based discrete-event scheduler."""

    now_ms: float = 0.0
    _queue: List[_ScheduledEvent] = field(default_factory=list)
    _sequence: "itertools.count" = field(default_factory=lambda: itertools.count())
    processed_events: int = 0

    def schedule_at(self, time_ms: float, callback: EventCallback) -> _ScheduledEvent:
        """Schedule ``callback`` at absolute time ``time_ms``.

        Raises:
            SimulationError: If the time lies in the past.
        """
        if time_ms < self.now_ms:
            raise SimulationError(
                f"cannot schedule an event at {time_ms} ms; current time is {self.now_ms} ms"
            )
        event = _ScheduledEvent(time_ms=time_ms, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay_ms: float, callback: EventCallback) -> _ScheduledEvent:
        """Schedule ``callback`` after ``delay_ms`` milliseconds.

        Raises:
            SimulationError: If the delay is negative.
        """
        if delay_ms < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay_ms}")
        return self.schedule_at(self.now_ms + delay_ms, callback)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        event.cancelled = True

    def run_until(self, horizon_ms: float) -> int:
        """Process events up to and including ``horizon_ms``.

        Returns:
            The number of events processed.  The current time advances to
            ``horizon_ms`` even if the queue drains earlier.
        """
        frame = _spans.push("scheduler.dispatch") if _spans.ENABLED else None
        try:
            processed = 0
            while self._queue and self._queue[0].time_ms <= horizon_ms:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now_ms = event.time_ms
                event.callback(self.now_ms)
                processed += 1
                self.processed_events += 1
            self.now_ms = max(self.now_ms, horizon_ms)
            return processed
        finally:
            if frame is not None:
                _spans.pop(frame)

    def run_window(self, horizon_ms: float, inclusive: bool = True) -> int:
        """Process events up to ``horizon_ms``; exclusive windows stop short.

        ``inclusive=True`` behaves exactly like :meth:`run_until`.  With
        ``inclusive=False`` only events *strictly before* the horizon are
        processed — the conservative-lookahead window of the sharded
        simulation, which must leave events at the window boundary for
        the next window (cross-shard imports may still land exactly on
        it).  Either way the clock advances to ``horizon_ms``.
        """
        frame = _spans.push("scheduler.dispatch") if _spans.ENABLED else None
        try:
            processed = 0
            queue = self._queue
            while queue and (
                queue[0].time_ms <= horizon_ms
                if inclusive
                else queue[0].time_ms < horizon_ms
            ):
                event = heapq.heappop(queue)
                if event.cancelled:
                    continue
                self.now_ms = event.time_ms
                event.callback(self.now_ms)
                processed += 1
                self.processed_events += 1
            self.now_ms = max(self.now_ms, horizon_ms)
            return processed
        finally:
            if frame is not None:
                _spans.pop(frame)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Process every pending event (bounded by ``max_events``).

        Raises:
            SimulationError: If the bound is hit, which usually indicates a
                runaway event loop.
        """
        frame = _spans.push("scheduler.dispatch") if _spans.ENABLED else None
        try:
            processed = 0
            while self._queue:
                if processed >= max_events:
                    raise SimulationError(f"exceeded the limit of {max_events} events")
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now_ms = event.time_ms
                event.callback(self.now_ms)
                processed += 1
                self.processed_events += 1
            return processed
        finally:
            if frame is not None:
                _spans.pop(frame)

    @property
    def pending(self) -> int:
        """Return the number of pending (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def queue_size(self) -> int:
        """Return the heap size, cancelled entries included.

        O(1), unlike :attr:`pending` — the right shape for a registry
        gauge polled at every snapshot.
        """
        return len(self._queue)

    def peek_next_time(self) -> Optional[float]:
        """Return the time of the next pending event, if any."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time_ms
        return None

    def next_event_time(self) -> Optional[float]:
        """Return the next pending event time; O(1) amortized.

        Unlike :meth:`peek_next_time` (which sorts a snapshot), this
        lazily pops cancelled entries off the heap head — safe, since a
        cancelled event would be skipped by the run loops anyway.  The
        sharded coordinator polls this after every window, so it must
        not cost O(n log n) per call.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0].time_ms if queue else None
