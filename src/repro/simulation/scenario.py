"""Scenario configuration for the large-scale simulations.

A scenario describes which algorithms run in which ASes, how origin ASes
group their interfaces, how long a beaconing period lasts and how many
periods to simulate.  The module also provides the paper's algorithm
suite — 1SP, 5SP, HD, DON, DOB300, DOB2000 plus an on-demand RAC — as
ready-made :class:`AlgorithmSpec` lists (paper §VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RoutingAlgorithm
from repro.algorithms.delay import DelayOptimizationAlgorithm
from repro.algorithms.disjointness import HeuristicDisjointnessAlgorithm
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.interface_groups import (
    GeographicGroupingPolicy,
    InterfaceGroupingPolicy,
    SingleGroupPolicy,
)
from repro.core.revocation import DEFAULT_DEDUP_WINDOW_MS
from repro.exceptions import ConfigurationError
from repro.simulation.events import ScenarioTimeline, TimelineCursor
from repro.simulation.network import InboxProfile
from repro.units import minutes

#: A factory producing a fresh algorithm instance per AS (RACs must not
#: share algorithm state across ASes).
AlgorithmFactory = Callable[[], RoutingAlgorithm]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One RAC to deploy in every (or selected) ASes of the scenario.

    Attributes:
        rac_id: Container identifier and criteria tag (e.g. ``"1sp"``).
        factory: Creates the per-AS algorithm instance.
        max_paths_per_interface: Per-interface selection limit of the RAC.
        registration_limit: Per-(criteria, origin, group) registration limit.
        use_interface_groups: Whether the RAC buckets by interface group.
        use_targets: Whether the RAC processes pull-based buckets.
        on_demand: Whether this is an on-demand RAC (``factory`` is ignored).
    """

    rac_id: str
    factory: Optional[AlgorithmFactory] = None
    max_paths_per_interface: int = 20
    registration_limit: int = 20
    use_interface_groups: bool = True
    use_targets: bool = True
    on_demand: bool = False

    def __post_init__(self) -> None:
        if not self.on_demand and self.factory is None:
            raise ConfigurationError(f"static RAC spec {self.rac_id!r} needs a factory")


@dataclass
class ScenarioConfig:
    """Everything needed to run one beaconing simulation.

    Attributes:
        algorithms: The RACs deployed in every IREC AS.
        grouping_policy: Interface-grouping policy of origin ASes.
        propagation_interval_ms: Beaconing period (10 simulated minutes in
            the paper).
        periods: Number of beaconing periods to simulate.
        verify_signatures: Whether ingress gateways verify signature chains
            (disable for large topologies to keep runtime reasonable).
        legacy_ases: ASes that run the legacy SCION control service instead
            of IREC (used by the backward-compatibility experiment).
        processing_delay_ms: Per-hop control-plane processing delay.  Also
            the per-hop processing cost of revocation messages: one
            revocation hop takes ``link latency + processing_delay_ms``.
        timeline: Timed dynamic events (failures, churn, policy/RAC swaps,
            period changes) applied by the beaconing driver while the
            simulation runs; see :mod:`repro.simulation.events`.
        revocation_dedup_window_ms: How long every control service
            remembers processed revocation ``(origin, sequence)`` keys;
            duplicates inside the window are dropped without re-applying
            or re-forwarding (see :mod:`repro.core.revocation`).
        inbox_batch_size: Maximum messages the transport fabric hands to a
            control service per inbox drain.  ``None`` (the default)
            drains everything pending at a scheduler tick — the batched
            fast path; ``1`` forces per-message delivery, the behavioural
            reference of the dispatch-equivalence tests.
        inbox_profile: Default bounded-inbox profile applied to every AS
            (service budget, capacity, overflow policy, service interval);
            ``None`` keeps the PR-5 unlimited fabric.  See
            :class:`repro.simulation.network.InboxProfile`.
        inbox_profiles: Per-AS profile overrides (AS id → profile); an AS
            listed here ignores ``inbox_profile``.
        loss_seed: Seed of the transport's silent-loss RNG (gray failures,
            flap loss).  Degraded scenarios reroll deterministically under
            the same seed; healthy scenarios never touch the RNG.
        register_down_segments: When enabled, every IREC AS announces the
            paths it registers back along the segment as
            ``register_at_origin`` path-registration messages, so origin
            (core) ASes learn down-segments on message arrival.  Off by
            default: the extra fabric traffic would change pinned traces.
    """

    algorithms: Tuple[AlgorithmSpec, ...]
    grouping_policy: InterfaceGroupingPolicy = field(default_factory=SingleGroupPolicy)
    propagation_interval_ms: float = minutes(10)
    periods: int = 4
    verify_signatures: bool = True
    legacy_ases: Tuple[int, ...] = ()
    processing_delay_ms: float = 1.0
    timeline: ScenarioTimeline = field(default_factory=ScenarioTimeline)
    revocation_dedup_window_ms: float = DEFAULT_DEDUP_WINDOW_MS
    inbox_batch_size: Optional[int] = None
    inbox_profile: Optional[InboxProfile] = None
    inbox_profiles: Dict[int, InboxProfile] = field(default_factory=dict)
    loss_seed: int = 0
    register_down_segments: bool = False

    def __post_init__(self) -> None:
        if not self.algorithms and not self.legacy_ases:
            raise ConfigurationError("a scenario needs at least one algorithm or legacy AS")
        if self.periods < 1:
            raise ConfigurationError(f"periods must be positive, got {self.periods}")
        if self.propagation_interval_ms <= 0:
            raise ConfigurationError(
                f"propagation interval must be positive, got {self.propagation_interval_ms}"
            )
        if self.inbox_batch_size is not None and self.inbox_batch_size < 1:
            raise ConfigurationError(
                f"inbox_batch_size must be None or >= 1, got {self.inbox_batch_size}"
            )

    def at(self, time_ms: float) -> TimelineCursor:
        """Add dynamic events at ``time_ms`` via the timeline builder DSL.

        Example::

            scenario.at(minutes(15)).fail_link(link).at(minutes(35)).recover_link(link)
        """
        return self.timeline.at(time_ms)


# ----------------------------------------------------------------------
# the paper's algorithm suite
# ----------------------------------------------------------------------
def one_shortest_path_spec(registration_limit: int = 20) -> AlgorithmSpec:
    """1SP: propagate the single shortest path per origin on every interface."""
    return AlgorithmSpec(
        rac_id="1sp",
        factory=lambda: KShortestPathAlgorithm(k=1),
        registration_limit=registration_limit,
        use_interface_groups=False,
    )


def five_shortest_paths_spec(registration_limit: int = 20) -> AlgorithmSpec:
    """5SP: propagate the five shortest paths per origin on every interface."""
    return AlgorithmSpec(
        rac_id="5sp",
        factory=lambda: KShortestPathAlgorithm(k=5),
        registration_limit=registration_limit,
        use_interface_groups=False,
    )


def heuristic_disjointness_spec(registration_limit: int = 20) -> AlgorithmSpec:
    """HD: heuristically optimize inter-domain link disjointness."""
    return AlgorithmSpec(
        rac_id="hd",
        factory=lambda: HeuristicDisjointnessAlgorithm(paths_per_interface=5),
        registration_limit=registration_limit,
        use_interface_groups=False,
    )


def delay_optimization_spec(
    extended_paths: bool, rac_id: Optional[str] = None, registration_limit: int = 20
) -> AlgorithmSpec:
    """DO: delay optimization on received (DON) or extended (DOB) paths."""
    identifier = rac_id or ("dob" if extended_paths else "don")
    return AlgorithmSpec(
        rac_id=identifier,
        factory=lambda: DelayOptimizationAlgorithm(
            paths_per_interface=3, use_extended_paths=extended_paths
        ),
        registration_limit=registration_limit,
        use_interface_groups=extended_paths,
    )


def on_demand_spec(registration_limit: int = 20) -> AlgorithmSpec:
    """The on-demand RAC used by pull-based disjointness."""
    return AlgorithmSpec(rac_id="on-demand", on_demand=True, registration_limit=registration_limit)


def paper_algorithm_suite(registration_limit: int = 20) -> Tuple[AlgorithmSpec, ...]:
    """Return the paper's per-AS deployment: four static RACs + one on-demand RAC.

    The DO static RAC is instantiated in its DON flavour here; the DOB
    variants additionally need a geographic grouping policy on the scenario
    (see :func:`dob_scenario`).
    """
    return (
        one_shortest_path_spec(registration_limit),
        five_shortest_paths_spec(registration_limit),
        heuristic_disjointness_spec(registration_limit),
        delay_optimization_spec(extended_paths=False, registration_limit=registration_limit),
        on_demand_spec(registration_limit),
    )


def don_scenario(periods: int = 4, verify_signatures: bool = False) -> ScenarioConfig:
    """Scenario with 1SP, 5SP and DON (no interface groups)."""
    return ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            five_shortest_paths_spec(),
            delay_optimization_spec(extended_paths=False),
        ),
        grouping_policy=SingleGroupPolicy(),
        periods=periods,
        verify_signatures=verify_signatures,
    )


def dob_scenario(
    radius_km: float, periods: int = 4, verify_signatures: bool = False
) -> ScenarioConfig:
    """Scenario with 1SP, 5SP and DOB with a geographic grouping radius.

    ``radius_km = 300`` and ``radius_km = 2000`` reproduce the paper's
    DOB300 and DOB2000 configurations.
    """
    return ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            five_shortest_paths_spec(),
            delay_optimization_spec(extended_paths=True, rac_id=f"dob{int(radius_km)}"),
        ),
        grouping_policy=GeographicGroupingPolicy(radius_km=radius_km),
        periods=periods,
        verify_signatures=verify_signatures,
    )


def disjointness_scenario(periods: int = 4, verify_signatures: bool = False) -> ScenarioConfig:
    """Scenario with 1SP, 5SP, HD and an on-demand RAC (for PD)."""
    return ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            five_shortest_paths_spec(),
            heuristic_disjointness_spec(),
            on_demand_spec(),
        ),
        grouping_policy=SingleGroupPolicy(),
        periods=periods,
        verify_signatures=verify_signatures,
    )
