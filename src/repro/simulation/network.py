"""The simulated control-plane transport: a routed message fabric.

Implements :class:`repro.core.transport.ControlPlaneTransport` on top of
the discrete-event scheduler as **one** generic delivery path for every
typed control message (:mod:`repro.core.messages`): PCBs, revocations and
path registrations sent over a link all flow through
:meth:`SimulatedTransport.send_message`, which applies per-hop latency
(link propagation + processing overhead), :class:`LinkState` loss at both
send and delivery time, and per-kind metrics uniformly — where the
pre-fabric transport kept one hand-rolled copy of that logic per message
type.

Silent degradation (PR 7): on top of the loud availability checks, a
delivery rolls a seeded die against the link's gray-failure and
per-direction flap loss rates (:meth:`LinkState.drop_probability`).  A
losing roll drops the message *silently* — the control plane never learns
about it (no revocation originates), only the ``gray_dropped`` metric and
end-host-observed quality reveal the fault.  The ``loss_seed`` field pins
the dice, keeping degraded runs deterministic.

Delivered messages are not handed to the receiving control service one by
one: they land in a **per-AS inbox** that is drained in batches at the
scheduler tick they arrived on.  Every entry of a drained batch therefore
shares its arrival timestamp, so database state and withdrawal
(``applied_at``) timestamps are bit-identical to per-message delivery
(``batch_size=1``) — pinned by the dispatch-equivalence property tests —
while the batch lets the control service amortize work across messages
(e.g. one admission per duplicate beacon group, see
:func:`repro.core.control_service.dispatch_batch`).

Returned pull beacons travel back to their origin with the accumulated
latency of the path they describe, and algorithm fetches cost one round
trip over that same path; both predate the fabric and keep their
path-travel (not link-routed) delivery.

Overload (PR 6): every inbox can additionally carry an
:class:`InboxProfile` — a per-service-round message **budget**, a bounded
**capacity** with a tail-drop or ECN-style mark overflow policy, and a
**service interval** — turning the previously infinite-rate control plane
into a queueing system: messages beyond the budget are deferred to later
service rounds (their handlers run at the *service* time, so withdrawal
``applied_at`` timestamps become load-dependent), revocations preempt
queued PCBs/registrations, and the collector records drops, marks,
deferrals, per-AS queue-depth high-water marks and the queueing-delay
distribution.  The default profile (no budget, no capacity) takes exactly
the pre-overload code path, which is what keeps the PR-5 golden traces
bit-identical.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.beacon import Beacon
from repro.core.messages import ControlMessage, PCBMessage, PullReturnMessage
from repro.obs import spans as _spans
from repro.exceptions import (
    AlgorithmError,
    ConfigurationError,
    SimulationError,
    UnknownASError,
)
from repro.simulation.collector import MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import LinkState
from repro.topology.graph import Topology


@dataclass(frozen=True)
class InboxProfile:
    """Service-rate model and bounds of one per-AS control-plane inbox.

    The default profile (all fields at their defaults) is the infinite
    service rate + unbounded queue the fabric always had; any deviation
    switches the inbox onto the queueing path.

    Attributes:
        budget_per_tick: Maximum messages serviced per service round.
            ``None`` (the default) services everything at the arrival
            tick — the PR-5 behaviour.  With a finite budget, surplus
            messages carry over to the next round ``service_interval_ms``
            later, so their handlers (and ``applied_at`` withdrawal
            timestamps) run at the time they were actually serviced.
        capacity: Maximum queued messages (pending + deferred).  ``None``
            is unbounded; with a bound, deliveries into a full queue hit
            :attr:`overflow_policy`.
        overflow_policy: ``"drop"`` tail-drops the arriving message;
            ``"mark"`` delivers it anyway but stamps it congestion-marked
            (ECN-style) and counts the mark.
        service_interval_ms: Gap between service rounds while a backlog
            exists — the time one unit of queueing delay costs.
        kind_costs: Optional per-message-kind budget costs.  ``None``
            (the default) charges every message one unit of
            ``budget_per_tick`` — the PR 6 behaviour, bit-identical.
            With a table (e.g. ``{"revocation": 4, "path_query": 2}``),
            servicing a message of that kind consumes that many budget
            units, so a round fits fewer expensive messages; kinds
            absent from the table cost 1.  A service round always
            services at least one message even if its cost exceeds the
            whole budget (progress guarantee).
    """

    budget_per_tick: Optional[int] = None
    capacity: Optional[int] = None
    overflow_policy: str = "drop"
    service_interval_ms: float = 1.0
    kind_costs: Optional[Mapping[str, int]] = None

    def __post_init__(self) -> None:
        if self.kind_costs is not None:
            for kind, cost in self.kind_costs.items():
                if not isinstance(cost, int) or cost < 1:
                    raise ConfigurationError(
                        f"kind_costs[{kind!r}] must be an integer >= 1, got {cost!r}"
                    )
            # Freeze a private copy so later caller-side mutation cannot
            # desynchronize inboxes that already adopted this profile.
            object.__setattr__(self, "kind_costs", dict(self.kind_costs))
        if self.budget_per_tick is not None and self.budget_per_tick < 1:
            raise ConfigurationError(
                f"budget_per_tick must be None or >= 1, got {self.budget_per_tick}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be None or >= 1, got {self.capacity}"
            )
        if self.overflow_policy not in ("drop", "mark"):
            raise ConfigurationError(
                f"overflow_policy must be 'drop' or 'mark', got {self.overflow_policy!r}"
            )
        if self.service_interval_ms <= 0:
            raise ConfigurationError(
                f"service_interval_ms must be positive, got {self.service_interval_ms}"
            )

    @property
    def limited(self) -> bool:
        """Return whether this profile deviates from the unlimited default."""
        return self.budget_per_tick is not None or self.capacity is not None


class _Inbox:
    """One AS's pending delivered-but-undrained messages.

    A plain slotted class on the delivery fast path: every message pays
    one append here, and floods push millions of them.  The queue-model
    fields default to the unlimited profile; the delivery and drain fast
    paths branch on :attr:`limited` / :attr:`budget` exactly once, so the
    default configuration costs one attribute check over PR 5.
    """

    __slots__ = (
        "entries",
        "drain_scheduled",
        "draining",
        "limited",
        "budget",
        "capacity",
        "mark_overflow",
        "service_interval_ms",
        "kind_costs",
        "arrivals",
        "deferred",
    )

    def __init__(self) -> None:
        #: (message, arrival_interface) in arrival order.
        self.entries: List[Tuple[ControlMessage, int]] = []
        #: Whether a drain/service event is already queued for this inbox.
        self.drain_scheduled = False
        #: Re-entrancy guard for synchronous (immediate) drains.
        self.draining = False
        #: Whether any queue bound applies (single fast-path branch flag).
        self.limited = False
        #: Messages serviced per round (``None``: everything, at arrival).
        self.budget: Optional[int] = None
        #: Maximum queued messages (``None``: unbounded).
        self.capacity: Optional[int] = None
        #: Overflow policy: ``True`` marks-and-delivers, ``False`` drops.
        self.mark_overflow = False
        #: Gap between service rounds while a backlog exists.
        self.service_interval_ms = 1.0
        #: Per-kind budget costs (``None``: every message costs 1).
        self.kind_costs: Optional[Mapping[str, int]] = None
        #: Arrival times parallel to :attr:`entries` (finite budget only).
        self.arrivals: List[float] = []
        #: (message, interface, arrival_ms) carried over from earlier
        #: service rounds, in service priority order.
        self.deferred: List[Tuple[ControlMessage, int, float]] = []

    def apply_profile(self, profile: InboxProfile) -> None:
        """Adopt ``profile``'s queue model (hot-swappable mid-run)."""
        self.budget = profile.budget_per_tick
        self.capacity = profile.capacity
        self.mark_overflow = profile.overflow_policy == "mark"
        self.service_interval_ms = profile.service_interval_ms
        self.kind_costs = profile.kind_costs
        self.limited = profile.limited

    def queued(self) -> int:
        """Return how many messages are waiting (pending + deferred)."""
        return len(self.entries) + len(self.deferred)


@dataclass
class SimulatedTransport:
    """Scheduler-driven message fabric between control services.

    Attributes:
        topology: The global topology (used to resolve links and delays).
        scheduler: The discrete-event scheduler driving delivery.
        collector: Transmission counters for the overhead evaluation.
        processing_delay_ms: Fixed per-hop control-plane processing delay
            added to the link propagation delay.
        deliver_immediately: When set, messages are delivered and
            dispatched synchronously instead of being scheduled; used by
            tests that do not care about timing.
        link_state: Live link/AS availability (dynamic scenarios).  Checked
            both when a message is sent and when it would be delivered, so
            a link failing mid-flight loses the messages currently on it.
            When ``None`` every link is always available (static
            scenarios).
        batch_size: Maximum messages handed to a control service per inbox
            drain.  ``None`` (the default) drains everything pending at
            the tick; ``1`` is per-message delivery, the behavioural
            reference the equivalence tests compare against.
        inbox_profile: Default :class:`InboxProfile` applied to every
            registered AS's inbox.  ``None`` keeps the unlimited default.
        inbox_profiles: Per-AS profile overrides (AS id → profile).
        exporter: Shard hook.  ``None`` (the default) keeps the
            single-process fabric: every AS must be registered locally
            and sends fail fast on unknown receivers.  In a shard
            worker, sends whose receiving AS is not registered here are
            handed to this callback as ``(delivery_time_ms, remote_as,
            remote_interface, link_key, message)`` after the sender-side
            metrics and availability checks ran; the owning shard
            replays the receiver side via :meth:`inject_import`.
    """

    topology: Topology
    scheduler: EventScheduler
    collector: MetricsCollector = field(default_factory=MetricsCollector)
    processing_delay_ms: float = 1.0
    deliver_immediately: bool = False
    link_state: Optional[LinkState] = None
    batch_size: Optional[int] = None
    inbox_profile: Optional[InboxProfile] = None
    inbox_profiles: Dict[int, InboxProfile] = field(default_factory=dict)
    loss_seed: int = 0
    exporter: Optional[Callable[[tuple], None]] = None
    services: Dict[int, object] = field(default_factory=dict)
    _inboxes: Dict[int, _Inbox] = field(default_factory=dict)
    _sequence: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    #: (sender_as, egress_interface) → (link key, link latency, remote AS,
    #: remote interface, remote inbox).  The topology's link set only
    #: changes when a new AS registers (growth churn), which clears this
    #: cache, so egress resolution is memoized — the flood fast path pays
    #: one dict hit instead of a link lookup + endpoint resolution per
    #: message.
    _routes: Dict[Tuple[int, int], tuple] = field(default_factory=dict)
    #: Pre-bound per-AS drain callbacks (no per-tick lambda allocation).
    _drain_callbacks: Dict[int, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._loss_rng = random.Random(self.loss_seed)
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be None or >= 1, got {self.batch_size}"
            )
        for profile in (self.inbox_profile, *self.inbox_profiles.values()):
            if (
                profile is not None
                and profile.budget_per_tick is not None
                and self.deliver_immediately
            ):
                raise ConfigurationError(
                    "finite inbox budgets need the scheduler to pace service "
                    "rounds; they are incompatible with deliver_immediately"
                )

    def register(self, service: object) -> None:
        """Register a control service under its AS identifier."""
        as_id = service.as_id
        self.services[as_id] = service
        inbox = _Inbox()
        profile = self.inbox_profiles.get(as_id, self.inbox_profile)
        if profile is not None:
            inbox.apply_profile(profile)
        self._inboxes[as_id] = inbox
        self._drain_callbacks[as_id] = (
            lambda now_ms, _as_id=as_id: self._drain(_as_id, now_ms)
        )
        self._routes.clear()  # routes close over inboxes; rebuild lazily

    def configure_inbox(self, as_id: int, profile: InboxProfile) -> None:
        """Hot-swap the queue model of ``as_id``'s inbox mid-run.

        Backbone of the :class:`~repro.simulation.events.ServiceRateChange`
        timeline event.  Switching to an infinite service rate re-queues
        any deferred backlog for a prompt unlimited drain (the slow AS
        caught up); switching to a finite one starts deferring from the
        next service round on.
        """
        inbox = self._inboxes.get(as_id)
        if inbox is None:
            raise UnknownASError(as_id)
        if profile.budget_per_tick is not None and self.deliver_immediately:
            raise ConfigurationError(
                "finite inbox budgets are incompatible with deliver_immediately"
            )
        inbox.apply_profile(profile)
        if inbox.budget is None:
            inbox.arrivals = []
            if inbox.deferred:
                inbox.entries[0:0] = [
                    (message, interface) for message, interface, _arrival in inbox.deferred
                ]
                inbox.deferred = []
            if inbox.entries:
                # Schedule a prompt drain even if a service round is
                # already pending: that round sits a full (stale) service
                # interval out, and a duplicate drain of an empty inbox
                # is a no-op.
                inbox.drain_scheduled = True
                self.scheduler.schedule_at(
                    self.scheduler.now_ms, self._drain_callbacks[as_id]
                )

    def set_inbox_budget(self, as_id: int, budget_per_tick: Optional[int]) -> None:
        """Change only the service-rate budget of ``as_id``'s inbox."""
        inbox = self._inboxes.get(as_id)
        if inbox is None:
            raise UnknownASError(as_id)
        self.configure_inbox(
            as_id,
            InboxProfile(
                budget_per_tick=budget_per_tick,
                capacity=inbox.capacity,
                overflow_policy="mark" if inbox.mark_overflow else "drop",
                service_interval_ms=inbox.service_interval_ms,
                kind_costs=inbox.kind_costs,
            ),
        )

    def service_of(self, as_id: int) -> object:
        """Return the registered control service of ``as_id``."""
        service = self.services.get(as_id)
        if service is None:
            raise UnknownASError(as_id)
        return service

    # ------------------------------------------------------------------
    # the routed fabric
    # ------------------------------------------------------------------
    def _route(self, sender_as: int, egress_interface: int) -> tuple:
        """Resolve (and memoize) the egress endpoint's delivery route."""
        endpoint = (sender_as, egress_interface)
        route = self._routes.get(endpoint)
        if route is None:
            link = self.topology.link_of_interface(endpoint)
            remote_as, remote_interface = link.other_end(endpoint)
            if remote_as in self._inboxes or self.exporter is None:
                self.service_of(remote_as)  # fail fast on unknown receivers
                inbox = self._inboxes[remote_as]
            else:
                # Cross-shard receiver: delivery (and its checks) happen in
                # the owning worker; a ``None`` inbox marks the export path.
                inbox = None
            route = (
                link.key,
                link.latency_ms,
                remote_as,
                remote_interface,
                inbox,
            )
            self._routes[endpoint] = route
        return route

    def send_message(
        self, sender_as: int, egress_interface: int, message: ControlMessage
    ) -> None:
        """Deliver ``message`` to the AS at the far end of the egress link.

        The one delivery path every link-routed message type shares:
        resolve the link, record the transmission (by message kind), drop
        if the link is unavailable now or at delivery time (PCBs
        additionally require their own advertised path to still be up —
        a beacon crossing a link that failed while it was in flight must
        not re-poison the databases the revocation flood just purged),
        pay ``link latency + processing delay``, and enqueue into the
        receiver's inbox for the batched drain at the arrival tick.
        """
        frame = _spans.push("fabric.send") if _spans.ENABLED else None
        try:
            self._send_message(sender_as, egress_interface, message)
        finally:
            if frame is not None:
                _spans.pop(frame)

    def _send_message(
        self, sender_as: int, egress_interface: int, message: ControlMessage
    ) -> None:
        route = self._routes.get((sender_as, egress_interface))
        if route is None:
            route = self._route(sender_as, egress_interface)
        link_key, latency_ms, remote_as, remote_interface, inbox = route
        kind = message.kind
        now_ms = self.scheduler.now_ms
        if kind == "pcb":
            self.collector.record_send(sender_as, egress_interface, now_ms)
        elif kind == "revocation":
            self.collector.record_revocation(sender_as, egress_interface, now_ms)
        elif kind == "path_registration":
            self.collector.record_registration(sender_as, egress_interface, now_ms)
        elif kind == "path_query":
            self.collector.record_query(sender_as, egress_interface, now_ms)
        elif kind == "path_query_response":
            self.collector.record_query_response(sender_as, egress_interface, now_ms)
        else:
            # An unknown kind must fail loudly: silently mis-binning it
            # would corrupt the overhead accounting (Figure 8c) without
            # any error.  A new message type adds its recorder here.
            raise SimulationError(
                f"message kind {kind!r} has no metrics recorder; "
                "register it in SimulatedTransport.send_message"
            )

        if (
            self.link_state is not None
            and self.link_state.impaired()
            and not self.link_state.link_key_available(link_key)
        ):
            self._record_drop(message, now_ms)
            return

        if inbox is None:
            # Cross-shard send: the sender side (metrics, send-time
            # availability) ran above; serialize the receiver side out to
            # the shard that owns the remote AS.
            self.exporter(
                (
                    now_ms + latency_ms + self.processing_delay_ms,
                    remote_as,
                    remote_interface,
                    link_key,
                    message,
                )
            )
            return

        deliver = partial(
            self._deliver,
            message,
            remote_as,
            remote_interface,
            link_key,
            inbox,
            message.needs_hop_tracking(),
        )
        if self.deliver_immediately:
            deliver(now_ms + latency_ms + self.processing_delay_ms)
        else:
            self.scheduler.schedule_in(
                latency_ms + self.processing_delay_ms, deliver
            )

    def _deliver(
        self,
        message: ControlMessage,
        remote_as: int,
        interface: int,
        link_key: tuple,
        inbox: _Inbox,
        track: bool,
        now_ms: float,
    ) -> None:
        """Receiver side of one delivery (the scheduled fabric callback).

        Shared verbatim between local sends (scheduled by
        :meth:`_send_message`) and cross-shard imports (scheduled by
        :meth:`inject_import`), so a message crossing a shard boundary
        passes exactly the checks it would have passed in one process.
        """
        if self.link_state is not None and self.link_state.impaired():
            if not self.link_state.link_key_available(link_key):
                self._record_drop(message, now_ms)
                return
            if isinstance(message, PCBMessage) and not self.link_state.path_available(
                message.beacon.links()
            ):
                self._record_drop(message, now_ms)
                return
        if self.link_state is not None and self.link_state.degraded():
            # Silent degradation (gray failure / flap loss): the drop
            # is invisible to availability checks — no revocation, no
            # loud drop counter — only the gray-drop metric records it.
            rate = self.link_state.drop_probability(link_key, remote_as)
            if rate > 0.0 and (rate >= 1.0 or self._loss_rng.random() < rate):
                self.collector.record_gray_drop(message.kind, now_ms)
                return
        if track:
            message = message.with_hop(remote_as)
        if inbox.limited:
            # Queue model: bounded capacity (tail-drop or ECN mark at
            # delivery) and queue-depth high-water tracking.  The
            # unlimited default never enters this branch, keeping the
            # PR-5 fast path at one flag check per delivery.
            depth = len(inbox.entries) + len(inbox.deferred)
            if inbox.capacity is not None and depth >= inbox.capacity:
                if inbox.mark_overflow:
                    self.collector.record_inbox_mark(remote_as, message.kind, now_ms)
                    message = message.with_congestion_mark()
                else:
                    self.collector.record_inbox_drop(remote_as, message.kind, now_ms)
                    return
            self.collector.record_queue_depth(remote_as, depth + 1)
            if inbox.budget is not None:
                inbox.arrivals.append(now_ms)
        inbox.entries.append((message, interface))
        if self.deliver_immediately:
            # Synchronous mode: drain right away unless a drain higher
            # up the call stack is already consuming this inbox.
            if not inbox.draining:
                self._drain(remote_as, now_ms)
        elif not inbox.drain_scheduled:
            inbox.drain_scheduled = True
            self.scheduler.schedule_at(now_ms, self._drain_callbacks[remote_as])

    def inject_import(
        self,
        delivery_ms: float,
        remote_as: int,
        remote_interface: int,
        link_key: tuple,
        message: ControlMessage,
    ) -> None:
        """Schedule a cross-shard import for local receiver-side delivery.

        The sending shard already recorded the transmission and passed
        the send-time availability check; this schedules the same
        :meth:`_deliver` callback a local send would have, at the
        precomputed delivery time.
        """
        inbox = self._inboxes.get(remote_as)
        if inbox is None:
            raise UnknownASError(remote_as)
        self.scheduler.schedule_at(
            delivery_ms,
            partial(
                self._deliver,
                message,
                remote_as,
                remote_interface,
                link_key,
                inbox,
                message.needs_hop_tracking(),
            ),
        )

    def _drain(self, as_id: int, now_ms: float) -> None:
        """Hand the inbox's pending messages to the control service.

        Drains run at the same scheduler tick the messages arrived on —
        the drain event is scheduled at the arrival timestamp, and
        messages arriving at a later tick schedule their own drain — so
        every entry of a batch shares ``now_ms`` with its per-message
        delivery time.  With a finite :attr:`batch_size` the handler is
        invoked repeatedly with at most that many entries per call, still
        within this tick.
        """
        inbox = self._inboxes[as_id]
        inbox.drain_scheduled = False
        if inbox.draining:
            return
        if _spans.ENABLED:
            frame = _spans.push("fabric.drain")
            try:
                self._drain_inbox(as_id, inbox, now_ms)
            finally:
                _spans.pop(frame)
        else:
            self._drain_inbox(as_id, inbox, now_ms)

    def _drain_inbox(self, as_id: int, inbox: _Inbox, now_ms: float) -> None:
        if inbox.budget is not None:
            self._drain_limited(as_id, inbox, now_ms)
            return
        if not inbox.entries:
            return
        service = self.services[as_id]
        inbox.draining = True
        try:
            entries = inbox.entries
            if self.batch_size is None and not self.deliver_immediately:
                # Scheduled-mode fast path: handlers cannot enqueue into
                # this inbox synchronously, so one swap hands over the
                # whole tick's batch without re-checking the list.
                inbox.entries = []
                service.on_message_batch(entries, now_ms)
                return
            while inbox.entries:
                if self.batch_size is None:
                    batch, inbox.entries = inbox.entries, []
                else:
                    batch = inbox.entries[: self.batch_size]
                    del inbox.entries[: self.batch_size]
                service.on_message_batch(batch, now_ms)
        finally:
            inbox.draining = False

    def _drain_limited(self, as_id: int, inbox: _Inbox, now_ms: float) -> None:
        """Service round for a rate-limited inbox.

        At most ``budget`` messages are handed to the control service per
        round; the remainder carries over as the deferred backlog and a
        follow-up round is scheduled ``service_interval_ms`` later.  When
        the pending queue exceeds the budget, revocations are serviced
        before queued PCBs/registrations (stable within each class).
        Every message serviced later than it arrived counts as deferred
        and contributes its queueing delay to the collector.
        """
        if inbox.entries:
            fresh = inbox.entries
            inbox.entries = []
            arrivals = inbox.arrivals
            inbox.arrivals = []
            # Arrivals can be shorter than entries after a hot swap from
            # unlimited to limited mid-tick; pad with "now".
            for index, (message, interface) in enumerate(fresh):
                arrival = arrivals[index] if index < len(arrivals) else now_ms
                inbox.deferred.append((message, interface, arrival))
        pending = inbox.deferred
        if not pending:
            return
        budget = inbox.budget
        kind_costs = inbox.kind_costs
        if kind_costs is not None and budget is not None:
            # Weighted service round: each message consumes its kind's
            # cost from the budget (absent kinds cost 1, so the all-ones
            # table reduces provably to ``pending[:budget]`` below).
            total_cost = sum(kind_costs.get(item[0].kind, 1) for item in pending)
            if total_cost > budget:
                urgent = [item for item in pending if item[0].kind == "revocation"]
                if urgent and len(urgent) != len(pending):
                    bulk = [item for item in pending if item[0].kind != "revocation"]
                    pending = urgent + bulk
                batch3 = []
                spent = 0
                for item in pending:
                    cost = kind_costs.get(item[0].kind, 1)
                    # Progress guarantee: the round always services at
                    # least one message, even one costing more than the
                    # whole budget — a stuck inbox would never drain.
                    if batch3 and spent + cost > budget:
                        break
                    batch3.append(item)
                    spent += cost
                inbox.deferred = pending[len(batch3) :]
            else:
                batch3 = pending
                inbox.deferred = []
        elif budget is not None and len(pending) > budget:
            urgent = [item for item in pending if item[0].kind == "revocation"]
            if urgent and len(urgent) != len(pending):
                bulk = [item for item in pending if item[0].kind != "revocation"]
                pending = urgent + bulk
            batch3 = pending[:budget]
            inbox.deferred = pending[budget:]
        else:
            batch3 = pending
            inbox.deferred = []
        collector = self.collector
        entries: List[Tuple[ControlMessage, int]] = []
        for message, interface, arrival in batch3:
            delay = now_ms - arrival
            if delay > 0:
                collector.record_queue_delay(as_id, delay)
                collector.record_inbox_deferral(as_id, message.kind, now_ms)
            entries.append((message, interface))
        service = self.services[as_id]
        inbox.draining = True
        try:
            service.on_message_batch(entries, now_ms)
        finally:
            inbox.draining = False
        if (inbox.deferred or inbox.entries) and not inbox.drain_scheduled:
            inbox.drain_scheduled = True
            self.scheduler.schedule_in(
                inbox.service_interval_ms, self._drain_callbacks[as_id]
            )

    def pending_messages(self, as_id: int) -> int:
        """Return how many delivered messages await draining at ``as_id``."""
        inbox = self._inboxes.get(as_id)
        if inbox is None:
            return 0
        return len(inbox.entries) + len(inbox.deferred)

    def queue_backlog_ms(self, as_id: int) -> float:
        """Estimated queueing delay a message arriving now would incur.

        Rounds of backlog ahead of the new arrival times the service
        interval; zero for unlimited inboxes or unknown ASes.  Used by
        the traffic engine as its per-flow queue-delay provider.
        """
        inbox = self._inboxes.get(as_id)
        if inbox is None or inbox.budget is None:
            return 0.0
        backlog = len(inbox.entries) + len(inbox.deferred)
        if not backlog:
            return 0.0
        return (backlog // inbox.budget) * inbox.service_interval_ms

    # ------------------------------------------------------------------
    # per-kind metrics routing
    # ------------------------------------------------------------------
    def _record_drop(self, message: ControlMessage, now_ms: float) -> None:
        if message.kind == "revocation":
            self.collector.record_revocation_drop(now_ms)
        elif message.kind == "pcb":
            self.collector.record_drop(now_ms)
        elif message.kind == "path_registration":
            self.collector.record_registration_drop(now_ms)
        elif message.kind in ("path_query", "path_query_response"):
            self.collector.record_query_drop(now_ms)
        else:  # unreachable: send_message rejected the kind already
            raise SimulationError(f"message kind {message.kind!r} has no drop recorder")

    # ------------------------------------------------------------------
    # ControlPlaneTransport compatibility wrappers
    # ------------------------------------------------------------------
    def send_beacon(self, sender_as: int, egress_interface: int, beacon: Beacon) -> None:
        """Frame ``beacon`` as a :class:`PCBMessage` and send it."""
        self.send_message(
            sender_as,
            egress_interface,
            PCBMessage(
                origin_as=beacon.origin_as,
                sequence=next(self._sequence),
                created_at_ms=self.scheduler.now_ms,
                beacon=beacon,
            ),
        )

    def send_revocation(self, sender_as: int, egress_interface: int, revocation) -> None:
        """Send a revocation message (already a typed control message)."""
        self.send_message(sender_as, egress_interface, revocation)

    # ------------------------------------------------------------------
    # path-travel deliveries (not link-routed)
    # ------------------------------------------------------------------
    def return_beacon_to_origin(self, sender_as: int, beacon: Beacon) -> None:
        """Return a terminated pull beacon to its origin over the beacon's path.

        Back-compat shim over the typed fabric: the beacon is framed as a
        :class:`PullReturnMessage` and delivered through the origin's
        ``on_message`` dispatch.  Unlike link-routed messages it travels
        the beacon's full reverse path in one step (latency = the
        beacon's end-to-end propagation delay) and bypasses the inbox —
        the exact accounting and timing of the historical side channel.
        """
        now_ms = self.scheduler.now_ms
        origin = self.service_of(beacon.origin_as)
        self.collector.record_return(sender_as, now_ms)
        delay_ms = beacon.total_latency_ms() + self.processing_delay_ms
        message = PullReturnMessage(
            origin_as=sender_as,
            sequence=next(self._sequence),
            created_at_ms=now_ms,
            beacon=beacon,
        )

        def deliver(now_ms: float, _origin=origin, _message=message):
            # The return travels over the beacon's own path; it is lost if
            # any of those links is unavailable when it would arrive.
            if (
                self.link_state is not None
                and self.link_state.impaired()
                and not self.link_state.path_available(_message.beacon.links())
            ):
                self.collector.record_drop(now_ms)
                return
            _origin.on_message(_message, on_interface=-1, now_ms=now_ms)

        if self.deliver_immediately:
            deliver(now_ms + delay_ms)
        else:
            self.scheduler.schedule_in(delay_ms, deliver)

    def fetch_algorithm(self, requester_as: int, origin_as: int, algorithm_id: str) -> bytes:
        """Fetch an on-demand payload from the origin AS's control service.

        The fetch is synchronous (the RAC blocks on it), but the collector
        records it so benchmarks can report fetch counts and the caching
        behaviour.
        """
        origin = self.service_of(origin_as)
        if self.link_state is not None and not self.link_state.is_as_up(origin_as):
            # AlgorithmError (not SimulationError) so the RAC round records
            # a failed bucket and the simulation continues — an unreachable
            # origin must not abort the whole run.
            raise AlgorithmError(
                f"AS {origin_as} is offline and cannot serve algorithm {algorithm_id!r}"
            )
        self.collector.record_algorithm_fetch()
        serve = getattr(origin, "serve_algorithm", None)
        if serve is None:
            raise SimulationError(f"AS {origin_as} cannot serve on-demand algorithms")
        return serve(algorithm_id)
